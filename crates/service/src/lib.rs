//! `routed`: qubit routing as a service.
//!
//! A daemon that serves the workspace's whole router line-up — SATMAP's
//! MaxSAT relaxations, the constraint baselines, the heuristics — over a
//! line-delimited JSON protocol on TCP, built on `std::net` and threads
//! (no async runtime, no serde: the wire layer is hand-rolled and
//! strict). The interesting parts:
//!
//! * **[`wire`]** — the protocol: one request line in, one response row
//!   out, with typed errors mapping into
//!   [`circuit::RouteError::InvalidRequest`].
//! * **[`server`]** — the [`Daemon`]: a bounded work queue feeding a
//!   worker pool, O(1) admission control ([`satmap::encoding_estimate`]
//!   before any encoding is paid for, shed as
//!   [`circuit::RouteError::Overloaded`]), dispatch through a shared
//!   [`routers::RouteSupervisor`] (retries, degradation, panic
//!   isolation) and [`routers::RouteCache`] (memoization + LRU
//!   eviction), server-assigned request ids with per-request abort
//!   handles ([`sat::CancelRegistry`]), `stats` introspection and
//!   graceful `drain`.
//! * **[`client`]** — a blocking [`ServiceClient`] that demultiplexes
//!   completion-ordered outcome rows.
//! * **[`catalog`]** — the device names the wire accepts.
//!
//! Two binaries ship with the crate: `routed` (the daemon) and
//! `routed-client` (submit request files, print rows — the CI loopback
//! e2e driver).
//!
//! # Examples
//!
//! ```
//! use service::{Daemon, DaemonConfig, ServiceClient, Submission};
//!
//! let daemon: Daemon = Daemon::bind(DaemonConfig {
//!     workers: Some(2),
//!     ..DaemonConfig::default()
//! })?;
//!
//! let mut c = circuit::Circuit::new(2);
//! c.cx(0, 1);
//! let line = service::wire::route_line("sabre", "linear:2", &c, &[]);
//!
//! let mut client = ServiceClient::connect(daemon.local_addr())?;
//! let id = client.submit_route(&line)?.id();
//! let row = client.wait(id)?;
//! assert!(row.contains("\"solved\":true"));
//!
//! client.drain()?;
//! daemon.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod client;
pub mod queue;
pub mod server;
pub mod stats;
pub mod wire;

pub use client::{ServiceClient, Submission};
pub use server::{worker_pool_width, Daemon, DaemonConfig};
pub use stats::{ServiceStats, StatsSnapshot};

//! The bounded work queue between the accept loop and the worker pool.
//!
//! Push never blocks — a full queue is an *admission* signal, not a place
//! to park a client thread — while pop blocks until work arrives or the
//! queue is closed. Closing is how drain works: producers are refused
//! from then on, consumers drain what is already queued and then see
//! `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// A Mutex+Condvar MPMC queue with a hard capacity.
///
/// # Examples
///
/// ```
/// use service::queue::BoundedQueue;
/// let q = BoundedQueue::new(1);
/// assert!(q.try_push(1).is_ok());
/// assert_eq!(q.try_push(2), Err(2)); // full: the item comes back
/// assert_eq!(q.pop(), Some(1));
/// q.close();
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A worker that panicked between lock and unlock poisons the
        // mutex; the queue state itself is always consistent (every
        // mutation is a single VecDeque call), so recover and continue.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    #[allow(clippy::missing_errors_doc)]
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= inner.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. `None` means closed *and* drained — the consumer's signal to
    /// exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = match self.ready.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Refuses all future pushes and wakes every blocked consumer.
    /// Already-queued items still drain.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (not the ones already on workers).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push('a').is_ok());
        assert!(q.try_push('b').is_ok());
        assert_eq!(q.try_push('c'), Err('c'));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some('a'));
        assert!(q.try_push('c').is_ok());
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), Some('c'));
        assert!(q.is_empty());
    }

    #[test]
    fn close_refuses_producers_and_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(2), "closed queues refuse pushes");
        assert_eq!(q.pop(), Some(1), "queued items still drain");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        q.try_push(7).unwrap();
        q.close();
        let mut got: Vec<Option<i32>> = consumers
            .into_iter()
            .map(|h| h.join().expect("consumer must not panic"))
            .collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }
}

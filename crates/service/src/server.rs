//! The `routed` daemon: accept loop, worker pool, admission control,
//! per-request abort, drain.
//!
//! # Anatomy
//!
//! ```text
//! TCP accept loop ─► one reader thread per connection
//!                      │  parse line (wire) ── error row on bad JSON
//!                      │  route: resolve router, validate, estimate
//!                      │    ├─ reject (InvalidRequest row)
//!                      │    ├─ shed   (Overloaded row; estimate or full queue)
//!                      │    └─ admit  (ack row with the server-assigned id)
//!                      ▼
//!            BoundedQueue<Job> ─► worker pool (N threads)
//!                                   cache.lookup ─► supervisor.route ─► cache.admit
//!                                   outcome row ─► the job's connection
//! ```
//!
//! Everything is `std::net` + threads: the daemon serves a handful of
//! long-lived clients doing CPU-bound solves, so a blocking reader thread
//! per connection costs nothing that matters and keeps the crate free of
//! an async runtime.
//!
//! # Admission control
//!
//! A `route` line is admitted, rejected, or shed *before* any encode or
//! solve work, in O(request size): unknown routers and impossible
//! circuits bounce as `InvalidRequest`; budgeted requests to
//! encoding-based routers ([`routers::ENCODING_ROUTERS`]) whose
//! [`satmap::encoding_estimate`] — multiplied by the worker count the
//! dispatch plan would clone the formula across
//! ([`satmap::planned_width`]) — exceeds the policy's admission limit are
//! shed as [`RouteError::Overloaded`], as is everything when the work
//! queue is full or the daemon is draining. Shedding at the door is the
//! service-level choice: under overload the daemon answers cheaply and
//! keeps latency bounded instead of queueing heuristic-degraded answers.
//!
//! # Abort and drain
//!
//! Every admitted request gets a server-assigned id (acked to the client)
//! and a [`sat::CancelToken`] registered in a [`sat::CancelRegistry`];
//! `abort <id>` fires the token from any connection. The supervisor
//! notices between solver checkpoints and answers
//! [`RouteError::Cancelled`] without burning retries or fallback work.
//! `drain` stops admissions, lets queued and in-flight work finish,
//! reports, and shuts the daemon down.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use circuit::{escape_json, Parallelism, RouteError, RouteOutcome, RouteRequest};
use routers::{RouteCache, RoutePolicy, RouteSupervisor, RouterRegistry, StandardBackend};
use sat::{CancelRegistry, SatBackend, SolverTelemetry};

use crate::queue::BoundedQueue;
use crate::stats::ServiceStats;
use crate::wire::{self, Request, RouteCommand, WireError};

/// Construction knobs for a [`Daemon`].
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free one (read it back with
    /// [`Daemon::local_addr`]).
    pub addr: String,
    /// Worker-pool width; `None` sizes it with [`worker_pool_width`] from
    /// the machine and the expected per-request parallelism hint.
    pub workers: Option<usize>,
    /// Work-queue capacity; a full queue sheds.
    pub queue_capacity: usize,
    /// Retry/escalation/admission policy for the shared supervisor.
    pub policy: RoutePolicy,
    /// Route-cache memo capacity (see [`routers::RouteCache`]).
    pub outcome_capacity: usize,
    /// Route-cache warm-start session capacity.
    pub session_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            workers: None,
            queue_capacity: 64,
            policy: RoutePolicy::default(),
            outcome_capacity: routers::DEFAULT_OUTCOME_CAPACITY,
            session_capacity: routers::DEFAULT_SESSION_CAPACITY,
        }
    }
}

/// Sizes the worker pool: the machine's cores divided by the widest
/// worker plan the dispatcher can resolve under the expected per-request
/// hint ([`satmap::plan_ceiling`]) — a request racing a width-4 plan
/// already owns 4 cores. The dispatcher only narrows from that ceiling
/// as instances get easier, so the pool never oversubscribes. Clamped to
/// at least 1.
pub fn worker_pool_width(per_request_hint: Parallelism) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let per_request = satmap::plan_ceiling(per_request_hint, circuit::SearchStrategy::default());
    (cores / per_request.max(1)).max(1)
}

/// One admitted unit of work: the decoded command, the server-assigned
/// id (already stamped into the spec), and the connection to answer on.
struct Job {
    id: u64,
    command: RouteCommand,
    writer: LineWriter,
}

/// A connection's write half, shared between its reader thread (acks,
/// stats) and whichever worker finishes its jobs. Rows are written as
/// one locked `write_all` each, so concurrent writers interleave whole
/// lines, never bytes.
type LineWriter = Arc<Mutex<TcpStream>>;

fn write_line(writer: &LineWriter, row: &str) {
    let mut line = String::with_capacity(row.len() + 1);
    line.push_str(row);
    line.push('\n');
    let mut stream = match writer.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    // A vanished client is not a daemon error; drop the row.
    let _ = stream.write_all(line.as_bytes());
}

struct Shared<B: SatBackend + Default + Send + 'static> {
    supervisor: RouteSupervisor<B>,
    cache: RouteCache,
    queue: BoundedQueue<Job>,
    stats: ServiceStats,
    cancels: CancelRegistry,
    next_id: AtomicU64,
    draining: AtomicBool,
    shutdown: AtomicBool,
    workers: usize,
}

/// A running routing daemon. Generic over the SAT backend its SATMAP
/// solves run on — the default is the registry's standard portfolio
/// stack; chaos tests substitute a fault-injecting one.
///
/// # Examples
///
/// ```
/// use service::{Daemon, DaemonConfig, ServiceClient};
///
/// let daemon: Daemon = Daemon::bind(DaemonConfig {
///     workers: Some(1),
///     ..DaemonConfig::default()
/// })?;
/// let mut client = ServiceClient::connect(daemon.local_addr())?;
///
/// let mut c = circuit::Circuit::new(2);
/// c.cx(0, 1);
/// let line = service::wire::route_line("sabre", "linear:2", &c, &[]);
/// let id = client.submit_route(&line)?.id();
/// let row = client.wait(id)?;
/// assert!(row.contains("\"solved\":true"));
///
/// client.drain()?;
/// daemon.join();
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Daemon<B: SatBackend + Default + Send + 'static = StandardBackend> {
    shared: Arc<Shared<B>>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl<B: SatBackend + Default + Send + 'static> Daemon<B> {
    /// Binds the listener, spawns the worker pool and the accept loop,
    /// and returns the running daemon.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn bind(config: DaemonConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // Size for dispatched requests, not the serial default: clients
        // may ask for `Auto`, and the supervisor's plan escalation widens
        // serial retries to `Auto` too, so the honest per-request
        // occupancy is the dispatcher's `Auto` ceiling.
        let worker_count = config
            .workers
            .unwrap_or_else(|| worker_pool_width(Parallelism::Auto))
            .max(1);
        let shared = Arc::new(Shared {
            supervisor: RouteSupervisor::with_registry_and_policy(
                RouterRegistry::standard(),
                config.policy,
            ),
            cache: RouteCache::with_capacities(
                RouterRegistry::standard(),
                config.outcome_capacity,
                config.session_capacity,
            ),
            queue: BoundedQueue::new(config.queue_capacity),
            stats: ServiceStats::default(),
            cancels: CancelRegistry::default(),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            workers: worker_count,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("routed-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("routed-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawning the accept thread")
        };
        Ok(Daemon {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The address the daemon actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Programmatic drain: stop admitting, finish queued and in-flight
    /// work, release the accept loop and the workers. The client-side
    /// `drain` verb does exactly this (plus a report row). Idempotent.
    pub fn drain(&self) {
        drain_and_release(&self.shared);
    }

    /// Waits for the accept loop and every worker to exit — i.e. until
    /// someone drains the daemon (a client's `drain` verb or
    /// [`Daemon::drain`]).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn drain_and_release<B: SatBackend + Default + Send + 'static>(shared: &Shared<B>) {
    shared.draining.store(true, Ordering::SeqCst);
    shared.queue.close();
    while !shared.queue.is_empty() || shared.stats.in_flight() > 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    shared.shutdown.store(true, Ordering::SeqCst);
}

fn accept_loop<B: SatBackend + Default + Send + 'static>(
    listener: &TcpListener,
    shared: &Arc<Shared<B>>,
) {
    // Nonblocking + poll so the loop can notice shutdown without a
    // connection arriving. 5ms is imperceptible next to a solve.
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("routed-conn".into())
                    .spawn(move || serve_connection(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_connection<B: SatBackend + Default + Send + 'static>(
    shared: &Arc<Shared<B>>,
    stream: TcpStream,
) {
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let _ = stream.set_nodelay(true);
    let writer: LineWriter = Arc::new(Mutex::new(stream));
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match wire::parse_request(&line) {
            Err(e) => write_line(&writer, &error_row(&e)),
            Ok(Request::Route(command)) => handle_route(shared, *command, &writer),
            Ok(Request::Abort { request_id }) => {
                let aborted = shared.cancels.cancel(request_id);
                if aborted {
                    shared.stats.abort_hit();
                }
                write_line(
                    &writer,
                    &format!(
                        "{{\"type\":\"abort\",\"request_id\":{request_id},\"aborted\":{aborted}}}"
                    ),
                );
            }
            Ok(Request::Stats) => write_line(&writer, &stats_row(shared)),
            Ok(Request::Drain) => {
                drain_and_release(shared);
                write_line(
                    &writer,
                    &format!(
                        "{{\"type\":\"drain\",\"completed\":{},\"shed\":{}}}",
                        shared.stats.completed(),
                        shared.stats.shed()
                    ),
                );
                break;
            }
        }
    }
}

fn handle_route<B: SatBackend + Default + Send + 'static>(
    shared: &Arc<Shared<B>>,
    mut command: RouteCommand,
    writer: &LineWriter,
) {
    shared.stats.route_received();
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    command.spec.request_id = Some(id);

    // Door checks, all O(request size): router name, request validity,
    // predicted encoding size. No solver work has been paid for yet.
    if let Err(unknown) = shared.cache.registry().canonical(&command.router) {
        shared.stats.route_rejected();
        write_line(
            writer,
            &door_row(
                &command.router,
                id,
                RouteError::InvalidRequest(unknown.to_string()),
            ),
        );
        return;
    }
    let request = RouteRequest::with_spec(&command.circuit, &command.graph, command.spec.clone());
    if let Err(e) = request.validate() {
        shared.stats.route_rejected();
        write_line(writer, &door_row(&command.router, id, e));
        return;
    }
    if shared.draining.load(Ordering::SeqCst) {
        shared.stats.route_shed();
        write_line(
            writer,
            &door_row(
                &command.router,
                id,
                RouteError::Overloaded("daemon is draining".into()),
            ),
        );
        return;
    }
    if let Some(why) = admission_verdict(shared, &command) {
        shared.stats.route_shed();
        write_line(
            writer,
            &door_row(&command.router, id, RouteError::Overloaded(why)),
        );
        return;
    }
    drop(request);

    // Admitted: attach the abort handle, then enqueue. The ack is written
    // under the connection's write lock *before* the queue push so no
    // worker can emit the outcome row first.
    let (budget, token) = command.spec.budget.cancellable();
    command.spec.budget = budget;
    shared.cancels.insert(id, token);
    let job = Job {
        id,
        command,
        writer: Arc::clone(writer),
    };
    {
        let mut stream = match writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match shared.queue.try_push(job) {
            Ok(()) => {
                shared.stats.route_admitted();
                let _ = stream
                    .write_all(format!("{{\"type\":\"ack\",\"request_id\":{id}}}\n").as_bytes());
            }
            Err(job) => {
                shared.cancels.complete(id);
                shared.stats.route_shed();
                let row = door_row(
                    &job.command.router,
                    id,
                    RouteError::Overloaded("work queue is full".into()),
                );
                let _ = stream.write_all(format!("{row}\n").as_bytes());
            }
        }
    }
}

/// The admission estimate, mirroring the supervisor's rule: only
/// budgeted requests to encoding-based routers can be shed, and only
/// when the O(1) size proxy — the encoding estimate times the worker
/// count the dispatch plan would clone it across — would blow the limit.
fn admission_verdict<B: SatBackend + Default + Send + 'static>(
    shared: &Shared<B>,
    command: &RouteCommand,
) -> Option<String> {
    let canonical = shared.cache.registry().canonical(&command.router).ok()?;
    if !routers::ENCODING_ROUTERS.contains(&canonical) || !command.spec.budget.is_limited() {
        return None;
    }
    let swaps_per_gap = command.spec.swaps_per_gap.unwrap_or(1);
    let estimate = satmap::encoding_estimate(&command.circuit, &command.graph, swaps_per_gap);
    let width = satmap::planned_width(
        &command.circuit,
        &command.graph,
        command.spec.parallelism,
        command.spec.strategy,
        swaps_per_gap,
    );
    let limit = shared.supervisor.policy().admission_limit;
    (estimate.saturating_mul(width) > limit).then(|| {
        format!(
            "encoding estimate {estimate} x planned width {width} exceeds \
             the admission limit {limit}"
        )
    })
}

fn worker_loop<B: SatBackend + Default + Send + 'static>(shared: &Arc<Shared<B>>) {
    while let Some(job) = shared.queue.pop() {
        shared.stats.enter_flight();
        let outcome = serve_job(shared, &job);
        shared.cancels.complete(job.id);
        // Settle the accounting before publishing the row: a client that
        // has seen its outcome must find it reflected in `stats`.
        shared.stats.finish_flight(&outcome);
        write_line(&job.writer, &outcome_row(&outcome));
    }
}

fn serve_job<B: SatBackend + Default + Send + 'static>(
    shared: &Shared<B>,
    job: &Job,
) -> RouteOutcome {
    let command = &job.command;
    let request = RouteRequest::with_spec(&command.circuit, &command.graph, command.spec.clone());
    // Identical earlier answer? Serve it without solving (re-stamped with
    // this request's id by lookup).
    match shared.cache.lookup(&command.router, &request) {
        Ok(Some(hit)) => return hit,
        Ok(None) => {}
        Err(unknown) => {
            return failure_outcome(
                &command.router,
                job.id,
                RouteError::InvalidRequest(unknown.to_string()),
            )
        }
    }
    // The supervisor owns retries, degradation, and per-attempt panic
    // isolation; this outer boundary only guards daemon-level bugs so a
    // worker thread can never die.
    let served = catch_unwind(AssertUnwindSafe(|| {
        shared.supervisor.route(&command.router, &request)
    }));
    match served {
        Ok(Ok(outcome)) => {
            let _ = shared.cache.admit(&command.router, &request, &outcome);
            outcome
        }
        Ok(Err(unknown)) => failure_outcome(
            &command.router,
            job.id,
            RouteError::InvalidRequest(unknown.to_string()),
        ),
        Err(panic) => {
            let why = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".into());
            failure_outcome(&command.router, job.id, RouteError::Internal(why))
        }
    }
}

fn failure_outcome(router: &str, id: u64, error: RouteError) -> RouteOutcome {
    RouteOutcome::new(router, Err(error), SolverTelemetry::new(), Duration::ZERO)
        .with_request_id(Some(id))
}

/// A door verdict (reject/shed) rendered as a full outcome row, so
/// clients parse exactly one response shape for every served request.
fn door_row(router: &str, id: u64, error: RouteError) -> String {
    outcome_row(&failure_outcome(router, id, error))
}

/// Reframes a [`RouteOutcome::to_json`] row as a typed response line by
/// splicing `"type":"outcome"` in front of its first field.
fn outcome_row(outcome: &RouteOutcome) -> String {
    let row = outcome.to_json();
    format!("{{\"type\":\"outcome\",{}", &row[1..])
}

fn error_row(e: &WireError) -> String {
    format!(
        "{{\"type\":\"error\",\"error\":\"{}\"}}",
        escape_json(&e.to_string())
    )
}

fn stats_row<B: SatBackend + Default + Send + 'static>(shared: &Shared<B>) -> String {
    shared.stats.snapshot().to_json(
        shared.queue.len(),
        shared.workers,
        shared.draining.load(Ordering::SeqCst),
        &shared.cache.stats(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_pool_width_is_positive_and_inversely_scales() {
        let serial = worker_pool_width(Parallelism::Serial);
        assert!(serial >= 1);
        let wide = worker_pool_width(Parallelism::Width(usize::MAX / 2));
        assert_eq!(wide, 1, "huge per-request hints clamp the pool to 1");
        assert!(worker_pool_width(Parallelism::Width(2)) <= serial);
    }

    #[test]
    fn outcome_row_is_typed_and_parses() {
        let row = door_row("satmap", 3, RouteError::Overloaded("queue".into()));
        let v = crate::wire::parse_json(&row).expect("row must parse");
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("outcome"));
        assert_eq!(v.get("request_id").and_then(|n| n.as_u64()), Some(3));
        assert_eq!(v.get("solved").and_then(|b| b.as_bool()), Some(false));
        assert!(v
            .get("error")
            .and_then(|e| e.as_str())
            .unwrap()
            .contains("shed"));
    }

    #[test]
    fn wire_error_rows_escape() {
        let row = error_row(&WireError::new("bad \"quote\""));
        assert!(crate::wire::parse_json(&row).is_ok(), "{row}");
    }
}

//! Device names the wire protocol accepts.
//!
//! Circuits travel over the wire as gate lists or OpenQASM 2.0 source,
//! but device graphs do not:
//! clients name a topology and the daemon builds it from
//! [`arch::devices`]. The grammar covers the paper's devices plus the
//! parameterized families the test suite sweeps:
//!
//! ```text
//! tokyo | tokyo-minus | tokyo-plus
//! linear:<n> | ring:<n> | grid:<r>x<c> | heavy-hex:<cells>
//! ```

use arch::ConnectivityGraph;

use crate::wire::WireError;

/// The accepted device-name grammar, for error messages and docs.
pub const DEVICE_GRAMMAR: &str =
    "tokyo | tokyo-minus | tokyo-plus | linear:<n> | ring:<n> | grid:<r>x<c> | heavy-hex:<cells>";

/// Builds the connectivity graph a wire request named.
///
/// # Errors
///
/// [`WireError`] quoting [`DEVICE_GRAMMAR`] when the name (or a numeric
/// parameter) does not parse.
///
/// # Examples
///
/// ```
/// use service::catalog::device;
/// assert_eq!(device("tokyo").unwrap().num_qubits(), 20);
/// assert_eq!(device("grid:2x3").unwrap().num_qubits(), 6);
/// assert!(device("sycamore").is_err());
/// ```
pub fn device(name: &str) -> Result<ConnectivityGraph, WireError> {
    let unknown = || {
        WireError::new(format!(
            "unknown device '{name}' (grammar: {DEVICE_GRAMMAR})"
        ))
    };
    match name {
        "tokyo" => return Ok(arch::devices::tokyo()),
        "tokyo-minus" => return Ok(arch::devices::tokyo_minus()),
        "tokyo-plus" => return Ok(arch::devices::tokyo_plus()),
        _ => {}
    }
    let (family, params) = name.split_once(':').ok_or_else(unknown)?;
    let positive = |text: &str| -> Result<usize, WireError> {
        match text.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(WireError::new(format!(
                "device parameter '{text}' in '{name}' must be a positive integer"
            ))),
        }
    };
    match family {
        "linear" => Ok(arch::devices::linear(positive(params)?)),
        "ring" => Ok(arch::devices::ring(positive(params)?)),
        "grid" => {
            let (rows, cols) = params.split_once('x').ok_or_else(unknown)?;
            Ok(arch::devices::grid(positive(rows)?, positive(cols)?))
        }
        "heavy-hex" => Ok(arch::devices::heavy_hex(positive(params)?)),
        _ => Err(unknown()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_devices_build() {
        assert_eq!(device("tokyo").unwrap().num_qubits(), 20);
        assert!(device("tokyo-minus").unwrap().num_edges() < device("tokyo").unwrap().num_edges());
        assert!(device("tokyo-plus").unwrap().num_edges() > device("tokyo").unwrap().num_edges());
        assert_eq!(device("linear:5").unwrap().num_qubits(), 5);
        assert_eq!(device("ring:6").unwrap().num_edges(), 6);
        assert_eq!(device("grid:3x4").unwrap().num_qubits(), 12);
        assert!(device("heavy-hex:2").unwrap().num_qubits() > 0);
    }

    #[test]
    fn bad_names_fail_with_the_grammar() {
        for bad in [
            "sycamore",
            "linear",
            "linear:0",
            "linear:-3",
            "linear:abc",
            "grid:3",
            "grid:0x4",
            "hex:2",
            "",
        ] {
            let err = device(bad).unwrap_err();
            assert!(
                err.to_string().contains("grammar") || err.to_string().contains("positive integer"),
                "{bad:?} -> {err}"
            );
        }
    }
}

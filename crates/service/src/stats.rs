//! Daemon-level counters behind the `stats` verb.
//!
//! Every `route` line lands in exactly one of three buckets at the door —
//! `rejected` (typed invalid request), `shed` (admission control or a
//! full queue said no), or `admitted` — and every admitted request is
//! eventually `completed` (as `solved` or `failed`; aborted requests
//! complete with a typed [`circuit::RouteError::Cancelled`] failure). The
//! reconciliation invariants tests assert after a drain:
//!
//! ```text
//! received  == rejected + shed + admitted
//! admitted  == completed + in_flight + queued     (after drain: == completed)
//! completed == solved + failed
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use circuit::RouteOutcome;
use routers::CacheStats;

/// Monotonic daemon counters plus the in-flight gauge. All relaxed
/// atomics: the counters order nothing, they only count.
#[derive(Debug, Default)]
pub struct ServiceStats {
    received: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    solved: AtomicU64,
    failed: AtomicU64,
    aborted: AtomicU64,
    worker_panics: AtomicU64,
    in_flight: AtomicU64,
}

impl ServiceStats {
    /// Counts a parsed `route` line.
    pub fn route_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request bounced at the door with a typed
    /// `InvalidRequest` (unknown router, impossible circuit).
    pub fn route_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request shed by admission control, a full queue, or a
    /// draining daemon.
    pub fn route_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request accepted onto the work queue.
    pub fn route_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an `abort` verb that found (and cancelled) a live handle.
    pub fn abort_hit(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a worker picking a job up.
    pub fn enter_flight(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the job done and folds its outcome into the counters.
    pub fn finish_flight(&self, outcome: &RouteOutcome) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if outcome.solved() {
            self.solved.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.worker_panics
            .fetch_add(outcome.telemetry().worker_panics, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently being served by a worker.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Requests that finished (solved or failed).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests shed at the door.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            solved: self.solved.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
        }
    }
}

/// One consistent-enough reading of the daemon's counters (each field is
/// individually atomic; the set is only exact when the daemon is quiet,
/// which is when the tests reconcile it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `route` lines parsed.
    pub received: u64,
    /// Bounced at the door as invalid.
    pub rejected: u64,
    /// Shed by admission control / full queue / draining.
    pub shed: u64,
    /// Accepted onto the work queue.
    pub admitted: u64,
    /// Finished (solved + failed).
    pub completed: u64,
    /// Finished with a routed circuit.
    pub solved: u64,
    /// Finished with a typed error (including `Cancelled`).
    pub failed: u64,
    /// `abort` verbs that hit a live request.
    pub aborted: u64,
    /// Worker panics absorbed across all served requests.
    pub worker_panics: u64,
    /// Currently on a worker.
    pub in_flight: u64,
}

impl StatsSnapshot {
    /// Renders the `stats` response row, folding in the queue depth, the
    /// worker-pool width, the drain flag, and the route cache's counters.
    pub fn to_json(
        &self,
        queue_depth: usize,
        workers: usize,
        draining: bool,
        cache: &CacheStats,
    ) -> String {
        format!(
            concat!(
                "{{\"type\":\"stats\",\"received\":{},\"rejected\":{},\"shed\":{},",
                "\"admitted\":{},\"completed\":{},\"solved\":{},\"failed\":{},",
                "\"aborted\":{},\"worker_panics\":{},\"in_flight\":{},",
                "\"queue_depth\":{},\"workers\":{},\"draining\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4},",
                "\"cache_outcomes\":{},\"cache_sessions\":{},\"cache_evictions\":{}}}"
            ),
            self.received,
            self.rejected,
            self.shed,
            self.admitted,
            self.completed,
            self.solved,
            self.failed,
            self.aborted,
            self.worker_panics,
            self.in_flight,
            queue_depth,
            workers,
            draining,
            cache.hits,
            cache.misses,
            cache.hit_rate(),
            cache.outcomes,
            cache.sessions,
            cache.outcome_evictions + cache.session_evictions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::RouteError;
    use sat::SolverTelemetry;
    use std::time::Duration;

    #[test]
    fn counters_reconcile() {
        let stats = ServiceStats::default();
        for _ in 0..5 {
            stats.route_received();
        }
        stats.route_rejected();
        stats.route_shed();
        for _ in 0..3 {
            stats.route_admitted();
        }
        let solved = RouteOutcome::new(
            "satmap",
            Ok(circuit::RoutedCircuit::new(vec![0], vec![])),
            SolverTelemetry {
                worker_panics: 2,
                ..SolverTelemetry::default()
            },
            Duration::ZERO,
        );
        let failed = RouteOutcome::new(
            "satmap",
            Err(RouteError::Cancelled),
            SolverTelemetry::new(),
            Duration::ZERO,
        );
        for outcome in [&solved, &solved, &failed] {
            stats.enter_flight();
            stats.finish_flight(outcome);
        }
        let s = stats.snapshot();
        assert_eq!(s.received, s.rejected + s.shed + s.admitted);
        assert_eq!(s.admitted, s.completed);
        assert_eq!(s.completed, s.solved + s.failed);
        assert_eq!((s.solved, s.failed), (2, 1));
        assert_eq!(s.worker_panics, 4);
        assert_eq!(s.in_flight, 0);
    }

    #[test]
    fn stats_row_is_valid_json_with_every_field() {
        let stats = ServiceStats::default();
        stats.route_received();
        let row = stats
            .snapshot()
            .to_json(3, 4, false, &routers::CacheStats::default());
        let v = crate::wire::parse_json(&row).expect("stats row must parse");
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("stats"));
        assert_eq!(v.get("received").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(v.get("queue_depth").and_then(|n| n.as_u64()), Some(3));
        assert_eq!(v.get("workers").and_then(|n| n.as_u64()), Some(4));
        assert_eq!(v.get("draining").and_then(|b| b.as_bool()), Some(false));
        for key in ["cache_hits", "cache_hit_rate", "worker_panics", "aborted"] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
    }
}

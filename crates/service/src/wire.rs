//! The `routed` wire protocol: line-delimited JSON, hand-parsed.
//!
//! One request is one line, one response is one line. The daemon speaks
//! four verbs:
//!
//! ```text
//! {"verb":"route","router":"satmap","device":"tokyo",
//!  "circuit":[["h",0],["cx",0,1],["rzz",1,2,0.25]],
//!  "qubits":3,"budget_ms":2000,"parallelism":"serial",
//!  "strategy":"linear","slicing":"default","swaps_per_gap":1}
//! {"verb":"abort","request_id":7}
//! {"verb":"stats"}
//! {"verb":"drain"}
//! ```
//!
//! Gates are `[mnemonic, operands..., param?]` arrays using the OpenQASM
//! mnemonics the circuit IR round-trips through ([`OneQubitKind`] /
//! [`TwoQubitKind`]); parameterized kinds (`rx`, `ry`, `rz`, `rzz`)
//! require the trailing angle, the rest forbid it. `qubits` is optional —
//! omitted, the width is inferred as the highest operand plus one. The
//! only objective over the wire is swap-count (the paper's main mode);
//! fidelity routing needs a noise model and stays a library-level call.
//!
//! A `route` line may carry an OpenQASM 2.0 program instead of a gate
//! list: `"qasm":"OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n"`. Exactly
//! one of `circuit` / `qasm` is required, and `qubits` is rejected next
//! to `qasm` — the program's `qreg` declaration already fixes the width.
//! Parse failures come back as a typed [`WireError`] naming the source
//! line, which converts to [`RouteError::InvalidRequest`] like every
//! other wire fault.
//!
//! The parser is deliberately hand-rolled over `std` (the workspace is
//! offline: no serde) and *strict*: unknown verbs, unknown keys on a
//! `route` line, wrong arities, bad mnemonics, and malformed JSON all
//! fail with a typed [`WireError`] that names the offending byte offset
//! or key. [`WireError`] converts into
//! [`RouteError::InvalidRequest`], so one error channel serves both the
//! wire and the routing layers.

use circuit::{
    Circuit, Gate, OneQubitKind, Parallelism, Qubit, RepeatedStructure, RouteError, RouteSpec,
    SearchStrategy, Slicing, TwoQubitKind,
};
use std::time::Duration;

use crate::catalog;

/// Maximum nesting depth [`parse_json`] accepts — requests are flat
/// (an object holding arrays of scalars), so anything deeper is garbage,
/// not a bigger circuit.
const MAX_DEPTH: usize = 16;

/// A typed wire-level failure: malformed JSON, a bad verb, a missing or
/// mistyped key, an unknown gate mnemonic or device name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    why: String,
}

impl WireError {
    /// A new error with the given explanation.
    pub fn new(why: impl Into<String>) -> Self {
        WireError { why: why.into() }
    }

    /// The explanation.
    pub fn why(&self) -> &str {
        &self.why
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.why)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for RouteError {
    fn from(e: WireError) -> Self {
        RouteError::InvalidRequest(e.to_string())
    }
}

/// A parsed JSON value. Objects keep insertion order in a flat vector —
/// request lines are small, so linear key lookup beats a map.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as `(key, value)` pairs in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Lowercase name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, when this is a number that
    /// is one (integral, in `0..=2^53`).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Member lookup, when this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Parses one JSON document, strictly: the whole input must be consumed
/// (trailing whitespace aside), escapes must be valid, nesting is capped.
///
/// # Errors
///
/// [`WireError`] naming the byte offset of the first violation.
///
/// # Examples
///
/// ```
/// use service::wire::parse_json;
/// let v = parse_json(r#"{"verb":"stats","n":3}"#).unwrap();
/// assert_eq!(v.get("verb").and_then(|v| v.as_str()), Some("stats"));
/// assert_eq!(v.get("n").and_then(|v| v.as_u64()), Some(3));
/// assert!(parse_json("{oops}").is_err());
/// ```
pub fn parse_json(input: &str) -> Result<JsonValue, WireError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, why: &str) -> WireError {
        WireError::new(format!("{why} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(&format!("duplicate key '{key}'")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(c) if c < 0x20 => {
                    return Err(self.fail("raw control character in string"));
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (the input is &str, so
                    // boundaries are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.fail("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, WireError> {
        let c = self
            .peek()
            .ok_or_else(|| self.fail("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let high = self.hex4()?;
                if (0xD800..0xDC00).contains(&high) {
                    // High surrogate: a low surrogate escape must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(self.fail("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.fail("invalid surrogate pair"))?
                    } else {
                        return Err(self.fail("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&high) {
                    return Err(self.fail("unpaired low surrogate"));
                } else {
                    char::from_u32(high).ok_or_else(|| self.fail("invalid \\u escape"))?
                }
            }
            _ => return Err(self.fail("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.fail("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.fail("non-hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        let n: f64 = text
            .parse()
            .map_err(|_| WireError::new(format!("invalid number '{text}' at byte {start}")))?;
        if !n.is_finite() {
            return Err(WireError::new(format!("non-finite number at byte {start}")));
        }
        Ok(JsonValue::Number(n))
    }
}

/// A fully decoded `route` line: which router, which device (by catalog
/// name, kept for logging), the gate list, and the per-request knobs.
#[derive(Clone, Debug)]
pub struct RouteCommand {
    /// Requested router name (aliases welcome; resolved by the registry).
    pub router: String,
    /// Catalog name the graph was built from.
    pub device: String,
    /// The decoded circuit.
    pub circuit: Circuit,
    /// The device connectivity graph, owned (built from the catalog).
    pub graph: arch::ConnectivityGraph,
    /// The per-request knobs (budget, parallelism, strategy, …). The
    /// daemon stamps `request_id` after assigning one.
    pub spec: RouteSpec,
}

/// One parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Route a circuit (the payload is boxed: it carries a whole circuit
    /// and device graph).
    Route(Box<RouteCommand>),
    /// Cancel the in-flight or queued request with this server-assigned
    /// id.
    Abort {
        /// The id the daemon acked the original `route` line with.
        request_id: u64,
    },
    /// Report daemon counters.
    Stats,
    /// Stop accepting work, finish what is queued, report, shut down.
    Drain,
}

const ROUTE_KEYS: &[&str] = &[
    "verb",
    "router",
    "device",
    "circuit",
    "qasm",
    "qubits",
    "budget_ms",
    "parallelism",
    "strategy",
    "slicing",
    "swaps_per_gap",
    "totalizer_units",
    "repetition",
];

/// Parses one request line.
///
/// # Errors
///
/// [`WireError`] on malformed JSON, an unknown verb, a missing/mistyped
/// key, an unknown gate mnemonic, a bad gate arity, or an unknown device.
///
/// # Examples
///
/// ```
/// use service::wire::{parse_request, Request};
/// let line = r#"{"verb":"route","router":"sabre","device":"linear:2",
///               "circuit":[["cx",0,1]]}"#.replace('\n', "");
/// match parse_request(&line).unwrap() {
///     Request::Route(cmd) => {
///         assert_eq!(cmd.router, "sabre");
///         assert_eq!(cmd.circuit.num_qubits(), 2);
///     }
///     other => panic!("expected route, got {other:?}"),
/// }
/// assert!(matches!(
///     parse_request(r#"{"verb":"stats"}"#).unwrap(),
///     Request::Stats
/// ));
/// ```
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let v = parse_json(line)?;
    if !matches!(v, JsonValue::Object(_)) {
        return Err(WireError::new(format!(
            "request must be a JSON object, got {}",
            v.kind()
        )));
    }
    let verb = require_str(&v, "verb")?;
    match verb {
        "route" => Ok(Request::Route(Box::new(parse_route(&v)?))),
        "abort" => Ok(Request::Abort {
            request_id: require_u64(&v, "request_id")?,
        }),
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        other => Err(WireError::new(format!(
            "unknown verb '{other}' (expected route, abort, stats, or drain)"
        ))),
    }
}

fn parse_route(v: &JsonValue) -> Result<RouteCommand, WireError> {
    if let JsonValue::Object(members) = v {
        for (key, _) in members {
            if !ROUTE_KEYS.contains(&key.as_str()) {
                return Err(WireError::new(format!(
                    "unknown key '{key}' on a route line (allowed: {})",
                    ROUTE_KEYS.join(", ")
                )));
            }
        }
    }
    let router = require_str(v, "router")?.to_string();
    let device = require_str(v, "device")?.to_string();
    let graph = catalog::device(&device)?;
    let circuit = match (v.get("circuit"), v.get("qasm")) {
        (Some(_), Some(_)) => {
            return Err(WireError::new(
                "'circuit' and 'qasm' are mutually exclusive; send one payload",
            ))
        }
        (None, None) => {
            return Err(WireError::new(
                "missing payload: send 'circuit' (gate arrays) or 'qasm' (OpenQASM 2.0 source)",
            ))
        }
        (Some(gates_value), None) => {
            let gates = gates_value
                .as_array()
                .ok_or_else(|| WireError::new("'circuit' must be an array of gate arrays"))?
                .iter()
                .enumerate()
                .map(|(i, g)| parse_gate(g, i))
                .collect::<Result<Vec<Gate>, WireError>>()?;
            let width = gates
                .iter()
                .map(|g| match g {
                    Gate::One { qubit, .. } => qubit.0 + 1,
                    Gate::Two { a, b, .. } => a.0.max(b.0) + 1,
                })
                .max()
                .unwrap_or(0);
            let qubits = match optional_u64(v, "qubits")? {
                Some(n) => {
                    let n =
                        usize::try_from(n).map_err(|_| WireError::new("'qubits' out of range"))?;
                    if n < width {
                        return Err(WireError::new(format!(
                            "'qubits' is {n} but a gate touches qubit {}",
                            width - 1
                        )));
                    }
                    n
                }
                None => width,
            };
            let mut circuit = Circuit::new(qubits);
            for gate in gates {
                circuit.push(gate);
            }
            circuit
        }
        (None, Some(payload)) => {
            if v.get("qubits").is_some() {
                return Err(WireError::new(
                    "'qubits' cannot accompany 'qasm': the qreg declaration fixes the width",
                ));
            }
            let src = payload.as_str().ok_or_else(|| {
                WireError::new(format!(
                    "'qasm' must be a string of OpenQASM 2.0 source, got {}",
                    payload.kind()
                ))
            })?;
            circuit::qasm::parse(src).map_err(|e| WireError::new(e.to_string()))?
        }
    };

    let mut spec = RouteSpec::default();
    if let Some(ms) = optional_u64(v, "budget_ms")? {
        spec.budget = Duration::from_millis(ms).into();
    }
    spec.parallelism = parse_parallelism(v)?;
    spec.strategy = parse_strategy(v)?;
    spec.slicing = parse_slicing(v)?;
    if let Some(n) = optional_u64(v, "swaps_per_gap")? {
        spec.swaps_per_gap =
            Some(usize::try_from(n).map_err(|_| WireError::new("'swaps_per_gap' out of range"))?);
    }
    spec.totalizer_units = optional_u64(v, "totalizer_units")?;
    if let Some(rep) = v.get("repetition") {
        let prefix_len = require_u64(rep, "prefix_len")?;
        let cycles = require_u64(rep, "cycles")?;
        spec.repetition = Some(RepeatedStructure {
            prefix_len: usize::try_from(prefix_len)
                .map_err(|_| WireError::new("'prefix_len' out of range"))?,
            cycles: usize::try_from(cycles).map_err(|_| WireError::new("'cycles' out of range"))?,
        });
    }

    Ok(RouteCommand {
        router,
        device,
        circuit,
        graph,
        spec,
    })
}

fn parse_gate(v: &JsonValue, index: usize) -> Result<Gate, WireError> {
    let bad = |why: String| WireError::new(format!("gate {index}: {why}"));
    let items = v
        .as_array()
        .ok_or_else(|| bad(format!("must be an array, got {}", v.kind())))?;
    let mnemonic = items
        .first()
        .and_then(|m| m.as_str())
        .ok_or_else(|| bad("first element must be the mnemonic string".into()))?;
    let operand = |i: usize| -> Result<Qubit, WireError> {
        let q = items
            .get(i)
            .and_then(|q| q.as_u64())
            .ok_or_else(|| bad(format!("operand {i} must be a non-negative integer")))?;
        Ok(Qubit(
            usize::try_from(q).map_err(|_| bad(format!("operand {i} out of range")))?,
        ))
    };
    if let Some(kind) = one_qubit_kind(mnemonic) {
        let want = if kind.has_param() { 3 } else { 2 };
        if items.len() != want {
            return Err(bad(format!(
                "'{mnemonic}' takes {} element(s), got {}",
                want - 1,
                items.len() - 1
            )));
        }
        let param = if kind.has_param() {
            Some(
                items[2]
                    .as_f64()
                    .ok_or_else(|| bad("angle must be a number".into()))?,
            )
        } else {
            None
        };
        return Ok(Gate::One {
            kind,
            qubit: operand(1)?,
            param,
        });
    }
    if let Some(kind) = two_qubit_kind(mnemonic) {
        let want = if kind.has_param() { 4 } else { 3 };
        if items.len() != want {
            return Err(bad(format!(
                "'{mnemonic}' takes {} element(s), got {}",
                want - 1,
                items.len() - 1
            )));
        }
        let (a, b) = (operand(1)?, operand(2)?);
        if a == b {
            return Err(bad(format!("'{mnemonic}' operands must differ")));
        }
        let param = if kind.has_param() {
            Some(
                items[3]
                    .as_f64()
                    .ok_or_else(|| bad("angle must be a number".into()))?,
            )
        } else {
            None
        };
        return Ok(Gate::Two { kind, a, b, param });
    }
    Err(bad(format!("unknown mnemonic '{mnemonic}'")))
}

fn one_qubit_kind(name: &str) -> Option<OneQubitKind> {
    Some(match name {
        "h" => OneQubitKind::H,
        "x" => OneQubitKind::X,
        "y" => OneQubitKind::Y,
        "z" => OneQubitKind::Z,
        "s" => OneQubitKind::S,
        "sdg" => OneQubitKind::Sdg,
        "t" => OneQubitKind::T,
        "tdg" => OneQubitKind::Tdg,
        "rx" => OneQubitKind::Rx,
        "ry" => OneQubitKind::Ry,
        "rz" => OneQubitKind::Rz,
        _ => return None,
    })
}

fn two_qubit_kind(name: &str) -> Option<TwoQubitKind> {
    Some(match name {
        "cx" => TwoQubitKind::Cx,
        "cz" => TwoQubitKind::Cz,
        "rzz" => TwoQubitKind::Rzz,
        _ => return None,
    })
}

fn parse_parallelism(v: &JsonValue) -> Result<Parallelism, WireError> {
    match v.get("parallelism") {
        None => Ok(Parallelism::Serial),
        Some(p) => match (p.as_str(), p.as_u64()) {
            (Some("serial"), _) => Ok(Parallelism::Serial),
            (Some("auto"), _) => Ok(Parallelism::Auto),
            (_, Some(w)) if w >= 1 => Ok(Parallelism::Width(w as usize)),
            _ => Err(WireError::new(
                "'parallelism' must be \"serial\", \"auto\", or a width >= 1",
            )),
        },
    }
}

fn parse_strategy(v: &JsonValue) -> Result<SearchStrategy, WireError> {
    match v.get("strategy").map(|s| (s, s.as_str())) {
        None => Ok(SearchStrategy::default()),
        Some((_, Some("auto"))) => Ok(SearchStrategy::Auto),
        Some((_, Some("linear"))) => Ok(SearchStrategy::Linear),
        Some((_, Some("core-guided"))) => Ok(SearchStrategy::CoreGuided),
        Some((_, Some("race"))) => Ok(SearchStrategy::Race),
        Some(_) => Err(WireError::new(
            "'strategy' must be \"auto\", \"linear\", \"core-guided\", or \"race\"",
        )),
    }
}

fn parse_slicing(v: &JsonValue) -> Result<Slicing, WireError> {
    match v.get("slicing") {
        None => Ok(Slicing::RouterDefault),
        Some(s) => match (s.as_str(), s.as_u64()) {
            (Some("default"), _) => Ok(Slicing::RouterDefault),
            (Some("monolithic"), _) => Ok(Slicing::Monolithic),
            (_, Some(n)) if n >= 1 => Ok(Slicing::Sliced(n as usize)),
            _ => Err(WireError::new(
                "'slicing' must be \"default\", \"monolithic\", or a slice size >= 1",
            )),
        },
    }
}

fn require_str<'v>(v: &'v JsonValue, key: &str) -> Result<&'v str, WireError> {
    let member = v
        .get(key)
        .ok_or_else(|| WireError::new(format!("missing key '{key}'")))?;
    member
        .as_str()
        .ok_or_else(|| WireError::new(format!("'{key}' must be a string, got {}", member.kind())))
}

fn require_u64(v: &JsonValue, key: &str) -> Result<u64, WireError> {
    optional_u64(v, key)?.ok_or_else(|| WireError::new(format!("missing key '{key}'")))
}

fn optional_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, WireError> {
    match v.get(key) {
        None => Ok(None),
        Some(member) => member.as_u64().map(Some).ok_or_else(|| {
            WireError::new(format!(
                "'{key}' must be a non-negative integer, got {}",
                member.kind()
            ))
        }),
    }
}

/// Serializes a circuit as the wire's gate-array list (the inverse of
/// the `circuit` key parser).
pub fn gates_json(circuit: &Circuit) -> String {
    let mut out = String::from("[");
    for (i, gate) in circuit.gates().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match gate {
            Gate::One { kind, qubit, param } => {
                out.push_str(&format!("[\"{}\",{}", kind.qasm_name(), qubit.0));
                if let Some(theta) = param {
                    out.push_str(&format!(",{theta}"));
                }
                out.push(']');
            }
            Gate::Two { kind, a, b, param } => {
                out.push_str(&format!("[\"{}\",{},{}", kind.qasm_name(), a.0, b.0));
                if let Some(theta) = param {
                    out.push_str(&format!(",{theta}"));
                }
                out.push(']');
            }
        }
    }
    out.push(']');
    out
}

/// Builds a `route` request line. `knobs` are extra top-level members
/// appended verbatim as `"key":value` — the value must already be valid
/// JSON (`"2000"`, `"\"auto\""`).
pub fn route_line(
    router: &str,
    device: &str,
    circuit: &Circuit,
    knobs: &[(&str, String)],
) -> String {
    let mut line = format!(
        "{{\"verb\":\"route\",\"router\":\"{}\",\"device\":\"{}\",\"qubits\":{},\"circuit\":{}",
        circuit::escape_json(router),
        circuit::escape_json(device),
        circuit.num_qubits(),
        gates_json(circuit)
    );
    for (key, value) in knobs {
        line.push_str(&format!(",\"{key}\":{value}"));
    }
    line.push('}');
    line
}

/// Builds a `route` request line carrying an OpenQASM 2.0 program as the
/// payload instead of a gate-array list. `knobs` work as in
/// [`route_line`]; no `qubits` member is emitted — the program's `qreg`
/// declaration fixes the width.
pub fn qasm_route_line(router: &str, device: &str, qasm: &str, knobs: &[(&str, String)]) -> String {
    let mut line = format!(
        "{{\"verb\":\"route\",\"router\":\"{}\",\"device\":\"{}\",\"qasm\":\"{}\"",
        circuit::escape_json(router),
        circuit::escape_json(device),
        circuit::escape_json(qasm),
    );
    for (key, value) in knobs {
        line.push_str(&format!(",\"{key}\":{value}"));
    }
    line.push('}');
    line
}

/// Builds an `abort` request line.
pub fn abort_line(request_id: u64) -> String {
    format!("{{\"verb\":\"abort\",\"request_id\":{request_id}}}")
}

/// Builds a `stats` request line.
pub fn stats_line() -> String {
    "{\"verb\":\"stats\"}".to_string()
}

/// Builds a `drain` request line.
pub fn drain_line() -> String {
    "{\"verb\":\"drain\"}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_strings_arrays_objects() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-2.5e1").unwrap(), JsonValue::Number(-25.0));
        assert_eq!(
            parse_json(r#""a\nb\u0041\u00e9""#).unwrap(),
            JsonValue::String("a\nbAé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            parse_json(r#""\ud83d\ude00""#).unwrap(),
            JsonValue::String("😀".into())
        );
        let v = parse_json(r#"{"a":[1,2],"b":{"c":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("b").unwrap().get("c").unwrap().is_null());
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "tru",
            "\"unterminated",
            "\"\\q\"",
            "\"\\ud83d\"",
            "1 2",
            "nan",
            "{\"a\":1}}",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} must be rejected");
        }
        // Nesting bomb.
        let deep = "[".repeat(40) + &"]".repeat(40);
        assert!(parse_json(&deep).is_err());
    }

    #[test]
    fn numbers_convert_to_u64_only_when_integral() {
        assert_eq!(parse_json("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse_json("7.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn route_line_round_trips() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rzz(1, 2, 0.25);
        let line = route_line(
            "satmap",
            "linear:3",
            &c,
            &[
                ("budget_ms", "2000".into()),
                ("strategy", "\"race\"".into()),
            ],
        );
        let cmd = match parse_request(&line).unwrap() {
            Request::Route(cmd) => cmd,
            other => panic!("expected route, got {other:?}"),
        };
        assert_eq!(cmd.router, "satmap");
        assert_eq!(cmd.device, "linear:3");
        assert_eq!(cmd.circuit.gates(), c.gates());
        assert_eq!(cmd.circuit.num_qubits(), 3);
        assert_eq!(cmd.graph.num_qubits(), 3);
        assert_eq!(cmd.spec.strategy, SearchStrategy::Race);
        assert_eq!(
            cmd.spec.budget.remaining_time(),
            Some(Duration::from_millis(2000))
        );
    }

    #[test]
    fn verbs_parse_and_unknown_verbs_fail() {
        assert!(matches!(
            parse_request(&stats_line()).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(&drain_line()).unwrap(),
            Request::Drain
        ));
        assert!(matches!(
            parse_request(&abort_line(9)).unwrap(),
            Request::Abort { request_id: 9 }
        ));
        let err = parse_request(r#"{"verb":"solve"}"#).unwrap_err();
        assert!(err.to_string().contains("unknown verb"), "{err}");
        assert!(parse_request("[]").is_err());
        assert!(parse_request(r#"{"router":"satmap"}"#).is_err());
    }

    #[test]
    fn route_rejects_unknown_keys_and_bad_gates() {
        let bad_key = r#"{"verb":"route","router":"sabre","device":"tokyo","circuit":[],"oops":1}"#;
        let err = parse_request(bad_key).unwrap_err();
        assert!(err.to_string().contains("unknown key 'oops'"), "{err}");

        for (line, needle) in [
            (
                r#"{"verb":"route","router":"sabre","device":"tokyo","circuit":[["qq",0]]}"#,
                "unknown mnemonic",
            ),
            (
                r#"{"verb":"route","router":"sabre","device":"tokyo","circuit":[["cx",0]]}"#,
                "'cx' takes 2",
            ),
            (
                r#"{"verb":"route","router":"sabre","device":"tokyo","circuit":[["h",0,0.5]]}"#,
                "'h' takes 1",
            ),
            (
                r#"{"verb":"route","router":"sabre","device":"tokyo","circuit":[["rx",0]]}"#,
                "'rx' takes 2",
            ),
            (
                r#"{"verb":"route","router":"sabre","device":"tokyo","circuit":[["cx",1,1]]}"#,
                "must differ",
            ),
            (
                r#"{"verb":"route","router":"sabre","device":"tokyo","circuit":[["cx",0,1]],"qubits":1}"#,
                "touches qubit 1",
            ),
            (
                r#"{"verb":"route","router":"sabre","device":"nowhere","circuit":[]}"#,
                "unknown device",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.to_string().contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn qasm_route_line_round_trips() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\nrzz(0.25) q[1],q[2];\n";
        let line = qasm_route_line(
            "satmap",
            "linear:3",
            src,
            &[("strategy", "\"race\"".into()), ("budget_ms", "500".into())],
        );
        let cmd = match parse_request(&line).unwrap() {
            Request::Route(cmd) => cmd,
            other => panic!("expected route, got {other:?}"),
        };
        assert_eq!(cmd.router, "satmap");
        assert_eq!(cmd.circuit.num_qubits(), 3);
        assert_eq!(cmd.circuit.gates().len(), 3);
        assert_eq!(cmd.spec.strategy, SearchStrategy::Race);
        // The same program decodes to the same gates as the gate-array wire form.
        let direct = circuit::qasm::parse(src).unwrap();
        assert_eq!(cmd.circuit.gates(), direct.gates());
    }

    #[test]
    fn qasm_payload_is_exclusive_and_typed() {
        let both = r#"{"verb":"route","router":"sabre","device":"linear:2","circuit":[["cx",0,1]],"qasm":"qreg q[2];"}"#;
        let err = parse_request(both).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");

        let neither = r#"{"verb":"route","router":"sabre","device":"linear:2"}"#;
        let err = parse_request(neither).unwrap_err();
        assert!(err.to_string().contains("missing payload"), "{err}");

        let with_qubits = r#"{"verb":"route","router":"sabre","device":"linear:2","qasm":"qreg q[2];","qubits":2}"#;
        let err = parse_request(with_qubits).unwrap_err();
        assert!(err.to_string().contains("'qubits'"), "{err}");

        let not_a_string = r#"{"verb":"route","router":"sabre","device":"linear:2","qasm":[1,2]}"#;
        let err = parse_request(not_a_string).unwrap_err();
        assert!(err.to_string().contains("must be a string"), "{err}");

        // Parse failures surface the offending source line and convert to
        // the routing layer's InvalidRequest.
        let bad_gate = qasm_route_line("sabre", "linear:2", "qreg q[2];\nccx q[0],q[1];\n", &[]);
        let err = parse_request(&bad_gate).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let routed: RouteError = err.into();
        assert!(matches!(routed, RouteError::InvalidRequest(_)));
    }

    #[test]
    fn spec_knobs_decode() {
        let line = r#"{"verb":"route","router":"satmap","device":"linear:4",
            "circuit":[["cx",0,1],["cx",0,1]],"parallelism":2,"slicing":"monolithic",
            "swaps_per_gap":2,"totalizer_units":10,
            "repetition":{"prefix_len":0,"cycles":2}}"#
            .replace('\n', "");
        let cmd = match parse_request(&line).unwrap() {
            Request::Route(cmd) => cmd,
            other => panic!("expected route, got {other:?}"),
        };
        assert_eq!(cmd.spec.parallelism, Parallelism::Width(2));
        assert_eq!(cmd.spec.slicing, Slicing::Monolithic);
        assert_eq!(cmd.spec.swaps_per_gap, Some(2));
        assert_eq!(cmd.spec.totalizer_units, Some(10));
        assert_eq!(
            cmd.spec.repetition,
            Some(RepeatedStructure {
                prefix_len: 0,
                cycles: 2
            })
        );
        assert!(cmd.spec.request_id.is_none(), "ids are server-assigned");
    }

    #[test]
    fn wire_errors_convert_to_invalid_request() {
        let e: RouteError = WireError::new("boom").into();
        assert!(matches!(e, RouteError::InvalidRequest(why) if why.contains("boom")));
    }
}

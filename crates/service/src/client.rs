//! A blocking client for the `routed` wire protocol.
//!
//! One [`ServiceClient`] owns one connection. Because outcome rows
//! arrive in *completion* order (the worker pool finishes jobs as it
//! pleases), the client demultiplexes: rows for requests the caller has
//! not asked about yet are stashed and replayed by [`ServiceClient::wait`].

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{self, JsonValue};

/// What the daemon said to a submitted `route` line.
#[derive(Clone, Debug)]
pub enum Submission {
    /// Admitted and queued under this server-assigned id; the outcome row
    /// arrives later (fetch it with [`ServiceClient::wait`]).
    Queued(u64),
    /// Answered at the door (rejected, shed, or replayed) — the full
    /// outcome row, already final.
    Done(u64, String),
}

impl Submission {
    /// The server-assigned request id.
    pub fn id(&self) -> u64 {
        match self {
            Submission::Queued(id) | Submission::Done(id, _) => *id,
        }
    }
}

/// A line-oriented client over one TCP connection.
pub struct ServiceClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Ids acked as queued whose outcome the caller has not consumed yet.
    outstanding: HashSet<u64>,
    /// Outcome rows received while waiting for something else, by id.
    stashed: HashMap<u64, String>,
}

impl ServiceClient {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(ServiceClient {
            writer,
            reader,
            outstanding: HashSet::new(),
            stashed: HashMap::new(),
        })
    }

    /// Sends one raw request line.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on a broken connection.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads the next response line (EOF is an error: the daemon never
    /// half-closes a healthy connection).
    ///
    /// # Errors
    ///
    /// [`io::Error`] on a broken or closed connection.
    pub fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Submits a `route` line (build one with [`wire::route_line`]) and
    /// reads the daemon's verdict: an ack (queued) or an immediate
    /// outcome row (rejected/shed at the door).
    ///
    /// # Errors
    ///
    /// [`io::Error`] on connection failure, a wire-level `error` row, or
    /// a protocol violation.
    pub fn submit_route(&mut self, line: &str) -> io::Result<Submission> {
        self.send(line)?;
        loop {
            let row = self.recv()?;
            let v = parse_row(&row)?;
            match row_type(&v)? {
                "ack" => {
                    let id = row_id(&v)?;
                    self.outstanding.insert(id);
                    return Ok(Submission::Queued(id));
                }
                "outcome" => {
                    let id = row_id(&v)?;
                    // An outcome arriving here either completes an
                    // earlier queued request (its id was acked — stash
                    // for `wait`) or is the door verdict for *this*
                    // submission (an id we never saw an ack for).
                    if self.outstanding.remove(&id) {
                        self.stashed.insert(id, row);
                    } else {
                        return Ok(Submission::Done(id, row));
                    }
                }
                "error" => return Err(protocol(row)),
                other => return Err(protocol(format!("unexpected '{other}' row: {row}"))),
            }
        }
    }

    /// Blocks until the outcome row for `id` arrives (or was already
    /// stashed) and returns it.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on connection failure or a protocol violation.
    pub fn wait(&mut self, id: u64) -> io::Result<String> {
        if let Some(row) = self.stashed.remove(&id) {
            return Ok(row);
        }
        loop {
            let row = self.recv()?;
            let v = parse_row(&row)?;
            match row_type(&v)? {
                "outcome" => {
                    let got = row_id(&v)?;
                    self.outstanding.remove(&got);
                    if got == id {
                        return Ok(row);
                    }
                    self.stashed.insert(got, row);
                }
                "error" => return Err(protocol(row)),
                other => return Err(protocol(format!("unexpected '{other}' row: {row}"))),
            }
        }
    }

    /// Fires the abort handle of request `id`; true when it was still
    /// live (queued or solving).
    ///
    /// # Errors
    ///
    /// [`io::Error`] on connection failure or a protocol violation.
    pub fn abort(&mut self, id: u64) -> io::Result<bool> {
        self.send(&wire::abort_line(id))?;
        let row = self.next_of_type("abort")?;
        let v = parse_row(&row)?;
        v.get("aborted")
            .and_then(|b| b.as_bool())
            .ok_or_else(|| protocol(format!("abort row without verdict: {row}")))
    }

    /// Fetches the daemon's `stats` row.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on connection failure or a protocol violation.
    pub fn stats(&mut self) -> io::Result<String> {
        self.send(&wire::stats_line())?;
        self.next_of_type("stats")
    }

    /// Drains the daemon (graceful shutdown) and returns its final
    /// report row.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on connection failure or a protocol violation.
    pub fn drain(&mut self) -> io::Result<String> {
        self.send(&wire::drain_line())?;
        self.next_of_type("drain")
    }

    /// Reads rows until one of type `wanted` arrives, stashing outcome
    /// rows for later [`ServiceClient::wait`] calls.
    fn next_of_type(&mut self, wanted: &str) -> io::Result<String> {
        loop {
            let row = self.recv()?;
            let v = parse_row(&row)?;
            let ty = row_type(&v)?;
            if ty == wanted {
                return Ok(row);
            }
            match ty {
                "outcome" => {
                    let id = row_id(&v)?;
                    self.outstanding.remove(&id);
                    self.stashed.insert(id, row);
                }
                "error" => return Err(protocol(row)),
                other => return Err(protocol(format!("unexpected '{other}' row: {row}"))),
            }
        }
    }
}

fn parse_row(row: &str) -> io::Result<JsonValue> {
    wire::parse_json(row).map_err(|e| protocol(format!("unparseable response ({e}): {row}")))
}

fn row_type(v: &JsonValue) -> io::Result<&str> {
    v.get("type")
        .and_then(|t| t.as_str())
        .ok_or_else(|| protocol("response row without a type".into()))
}

fn row_id(v: &JsonValue) -> io::Result<u64> {
    v.get("request_id")
        .and_then(|n| n.as_u64())
        .ok_or_else(|| protocol("outcome row without a request_id".into()))
}

fn protocol(why: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, why)
}

//! The `routed-client` binary: submit request lines, print response rows.
//!
//! ```text
//! routed-client --addr HOST:PORT [--file reqs.ndjson] [--abort-first]
//!               [--stats] [--drain]
//! ```
//!
//! The file holds one `route` line per line (blank lines and `#`
//! comments skipped). All requests are submitted first; `--abort-first`
//! then fires the abort handle of the first queued one; every outcome
//! row is printed as it completes; `--stats` and `--drain` run last.
//! Every response row goes to stdout verbatim, so the CI e2e script can
//! grep the NDJSON.

use service::{ServiceClient, Submission};

struct Args {
    addr: String,
    file: Option<String>,
    abort_first: bool,
    stats: bool,
    drain: bool,
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(why) => {
            eprintln!("routed-client: {why}");
            eprintln!(
                "usage: routed-client --addr HOST:PORT [--file reqs.ndjson] \
                 [--abort-first] [--stats] [--drain]"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("routed-client: {e}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> std::io::Result<()> {
    let mut client = ServiceClient::connect(args.addr.as_str())?;
    let mut queued: Vec<u64> = Vec::new();

    if let Some(path) = &args.file {
        let text = std::fs::read_to_string(path)?;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match client.submit_route(line)? {
                Submission::Queued(id) => {
                    println!("{{\"type\":\"ack\",\"request_id\":{id}}}");
                    queued.push(id);
                }
                Submission::Done(_, row) => println!("{row}"),
            }
        }
    }

    if args.abort_first {
        if let Some(&first) = queued.first() {
            let hit = client.abort(first)?;
            println!("{{\"type\":\"abort\",\"request_id\":{first},\"aborted\":{hit}}}");
        }
    }

    for id in queued {
        println!("{}", client.wait(id)?);
    }
    if args.stats {
        println!("{}", client.stats()?);
    }
    if args.drain {
        println!("{}", client.drain()?);
    }
    Ok(())
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        addr: String::new(),
        file: None,
        abort_first: false,
        stats: false,
        drain: false,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => {
                parsed.addr = args.next().ok_or("--addr needs a value")?;
            }
            "--file" => {
                parsed.file = Some(args.next().ok_or("--file needs a value")?);
            }
            "--abort-first" => parsed.abort_first = true,
            "--stats" => parsed.stats = true,
            "--drain" => parsed.drain = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if parsed.addr.is_empty() {
        return Err("--addr is required".into());
    }
    Ok(parsed)
}

//! The `routed` daemon binary.
//!
//! ```text
//! routed [--addr HOST:PORT] [--workers N] [--queue N]
//!        [--outcomes N] [--sessions N] [--fallback NAME|none]
//! ```
//!
//! Prints `listening HOST:PORT` on stdout once the socket is bound (the
//! CI e2e script reads the port from that line), then serves until a
//! client sends `drain`.

use service::{Daemon, DaemonConfig};

fn main() {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(why) => {
            eprintln!("routed: {why}");
            eprintln!(
                "usage: routed [--addr HOST:PORT] [--workers N] [--queue N] \
                 [--outcomes N] [--sessions N] [--fallback NAME|none]"
            );
            std::process::exit(2);
        }
    };
    let daemon: Daemon = match Daemon::bind(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("routed: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening {}", daemon.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    daemon.join();
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig {
        addr: "127.0.0.1:7878".into(),
        ..DaemonConfig::default()
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => config.workers = Some(parse_count(&value("--workers")?, "--workers")?),
            "--queue" => config.queue_capacity = parse_count(&value("--queue")?, "--queue")?,
            "--outcomes" => {
                config.outcome_capacity = parse_size(&value("--outcomes")?, "--outcomes")?;
            }
            "--sessions" => {
                config.session_capacity = parse_size(&value("--sessions")?, "--sessions")?;
            }
            "--fallback" => {
                let name = value("--fallback")?;
                config.policy.fallback = (name != "none").then_some(name);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(config)
}

fn parse_count(text: &str, flag: &str) -> Result<usize, String> {
    match text.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} must be a positive integer, got '{text}'")),
    }
}

fn parse_size(text: &str, flag: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .map_err(|_| format!("{flag} must be an integer, got '{text}'"))
}

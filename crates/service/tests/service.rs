//! Loopback integration tests for the `routed` daemon: concurrent-client
//! stress with cost equality against serial library calls, cross-client
//! cache hits, mid-solve abort, admission shedding, and exact stats
//! reconciliation through a graceful drain.

use std::sync::Arc;
use std::time::Duration;

use circuit::{Circuit, RouteRequest};
use routers::{RoutePolicy, RouterRegistry};
use service::wire::{self, parse_json, JsonValue};
use service::{Daemon, DaemonConfig, ServiceClient, Submission};

/// The paper's Fig. 3 circuit.
fn fig3() -> Circuit {
    let mut c = Circuit::new(4);
    c.cx(0, 1);
    c.cx(0, 2);
    c.cx(3, 2);
    c.cx(0, 3);
    c
}

/// A seeded dense CX circuit — deterministic, and hard enough at scale to
/// keep a worker busy for the abort tests.
fn dense(qubits: usize, gates: usize, seed: u64) -> Circuit {
    let mut c = Circuit::new(qubits);
    let mut state = seed | 1;
    let mut next = |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m
    };
    for _ in 0..gates {
        let a = next(qubits);
        let b = (a + 1 + next(qubits - 1)) % qubits;
        c.cx(a, b);
    }
    c
}

fn outcome_field<'v>(row: &'v JsonValue, key: &str) -> &'v JsonValue {
    row.get(key).unwrap_or_else(|| panic!("row missing {key}"))
}

fn u64_field(row: &JsonValue, key: &str) -> u64 {
    outcome_field(row, key)
        .as_u64()
        .unwrap_or_else(|| panic!("{key} not a u64"))
}

#[test]
fn eight_concurrent_clients_match_serial_library_costs() {
    // Four distinct requests, reference-solved serially in-process first.
    let variants: Vec<(Circuit, &str, arch::ConnectivityGraph)> = vec![
        (fig3(), "linear:4", arch::devices::linear(4)),
        (dense(4, 6, 11), "ring:4", arch::devices::ring(4)),
        (dense(5, 8, 23), "linear:5", arch::devices::linear(5)),
        (dense(4, 5, 37), "ring:5", arch::devices::ring(5)),
    ];
    let registry = RouterRegistry::standard();
    let expected: Vec<usize> = variants
        .iter()
        .map(|(c, _, g)| {
            let outcome = registry
                .route(
                    "satmap",
                    &RouteRequest::new(c, g).with_budget(Duration::from_secs(60)),
                )
                .expect("known router");
            outcome
                .routed()
                .unwrap_or_else(|| panic!("reference solve failed: {outcome:?}"))
                .swap_count()
        })
        .collect();
    let lines: Arc<Vec<String>> = Arc::new(
        variants
            .iter()
            .map(|(c, device, _)| {
                wire::route_line("satmap", device, c, &[("budget_ms", "60000".into())])
            })
            .collect(),
    );
    let expected = Arc::new(expected);

    let daemon: Daemon = Daemon::bind(DaemonConfig {
        workers: Some(4),
        ..DaemonConfig::default()
    })
    .expect("bind");
    let addr = daemon.local_addr();

    // 8 clients x 3 requests each, cycling through the variants.
    let clients: Vec<_> = (0..8)
        .map(|t| {
            let lines = Arc::clone(&lines);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                for j in 0..3 {
                    let variant = (t + j) % lines.len();
                    let id = match client.submit_route(&lines[variant]).expect("submit") {
                        Submission::Queued(id) => id,
                        Submission::Done(_, row) => panic!("rejected at the door: {row}"),
                    };
                    let row = client.wait(id).expect("outcome");
                    let v = parse_json(&row).expect("row parses");
                    assert_eq!(outcome_field(&v, "solved").as_bool(), Some(true), "{row}");
                    assert_eq!(u64_field(&v, "request_id"), id, "{row}");
                    assert_eq!(
                        u64_field(&v, "swaps"),
                        expected[variant] as u64,
                        "daemon cost must equal the serial library cost: {row}"
                    );
                }
            })
        })
        .collect();
    for handle in clients {
        handle.join().expect("client thread must not panic");
    }

    let mut client = ServiceClient::connect(addr).expect("connect");
    let stats = parse_json(&client.stats().expect("stats")).expect("stats row");
    assert_eq!(u64_field(&stats, "received"), 24);
    assert_eq!(u64_field(&stats, "admitted"), 24);
    assert_eq!(u64_field(&stats, "completed"), 24);
    assert_eq!(u64_field(&stats, "solved"), 24);
    assert_eq!(u64_field(&stats, "failed"), 0);
    client.drain().expect("drain");
    daemon.join();
}

#[test]
fn second_identical_request_from_another_client_hits_the_cache() {
    let daemon: Daemon = Daemon::bind(DaemonConfig {
        workers: Some(2),
        ..DaemonConfig::default()
    })
    .expect("bind");
    let line = wire::route_line(
        "satmap",
        "linear:4",
        &fig3(),
        &[("budget_ms", "60000".into())],
    );

    let mut first = ServiceClient::connect(daemon.local_addr()).expect("connect");
    let id1 = first.submit_route(&line).expect("submit").id();
    let row1 = parse_json(&first.wait(id1).expect("outcome")).expect("parses");
    assert_eq!(outcome_field(&row1, "cache_hit").as_bool(), Some(false));
    let swaps = u64_field(&row1, "swaps");

    let mut second = ServiceClient::connect(daemon.local_addr()).expect("connect");
    let id2 = second.submit_route(&line).expect("submit").id();
    assert!(id2 > id1, "ids are server-assigned and monotonic");
    let row2 = parse_json(&second.wait(id2).expect("outcome")).expect("parses");
    assert_eq!(
        outcome_field(&row2, "cache_hit").as_bool(),
        Some(true),
        "identical request from another client must replay the memo"
    );
    assert_eq!(u64_field(&row2, "swaps"), swaps);
    assert_eq!(
        u64_field(&row2, "request_id"),
        id2,
        "replays are re-stamped with the new request's id"
    );

    let stats = parse_json(&second.stats().expect("stats")).expect("row");
    assert!(u64_field(&stats, "cache_hits") >= 1);
    second.drain().expect("drain");
    daemon.join();
}

#[test]
fn abort_mid_solve_returns_a_typed_cancelled_outcome() {
    let daemon: Daemon = Daemon::bind(DaemonConfig {
        workers: Some(1),
        ..DaemonConfig::default()
    })
    .expect("bind");
    let mut client = ServiceClient::connect(daemon.local_addr()).expect("connect");

    // Monolithic MaxSAT over a dense 10-qubit circuit: far more work than
    // the abort latency, so the handle fires mid-solve.
    let hard = wire::route_line(
        "nl-satmap",
        "tokyo",
        &dense(10, 40, 5),
        &[("budget_ms", "120000".into())],
    );
    let id = client.submit_route(&hard).expect("submit").id();
    std::thread::sleep(Duration::from_millis(250));
    assert!(
        client.abort(id).expect("abort"),
        "the request must still be live when the abort fires"
    );
    let row = client.wait(id).expect("outcome, not a hang");
    let v = parse_json(&row).expect("parses");
    assert_eq!(outcome_field(&v, "solved").as_bool(), Some(false), "{row}");
    assert!(
        outcome_field(&v, "error")
            .as_str()
            .expect("error string")
            .contains("cancelled"),
        "abort must surface as the typed cancellation: {row}"
    );

    // Aborting a finished id is a clean miss, not an error.
    assert!(!client.abort(id).expect("second abort"));

    // The daemon is still serving.
    let easy = wire::route_line("sabre", "linear:4", &fig3(), &[]);
    let id2 = client.submit_route(&easy).expect("submit").id();
    let row2 = client.wait(id2).expect("outcome");
    assert!(row2.contains("\"solved\":true"), "{row2}");

    let stats = parse_json(&client.stats().expect("stats")).expect("row");
    assert_eq!(u64_field(&stats, "aborted"), 1);
    assert_eq!(u64_field(&stats, "failed"), 1);
    client.drain().expect("drain");
    daemon.join();
}

#[test]
fn door_verdicts_shed_and_reject_before_any_solving() {
    // Tiny admission limit: every budgeted satmap request is shed in O(1).
    let daemon: Daemon = Daemon::bind(DaemonConfig {
        workers: Some(1),
        policy: RoutePolicy {
            admission_limit: 100,
            ..RoutePolicy::default()
        },
        ..DaemonConfig::default()
    })
    .expect("bind");
    let mut client = ServiceClient::connect(daemon.local_addr()).expect("connect");

    // Unknown router: typed InvalidRequest at the door.
    let unknown = wire::route_line("qiskit", "linear:4", &fig3(), &[]);
    let row = match client.submit_route(&unknown).expect("submit") {
        Submission::Done(_, row) => row,
        Submission::Queued(id) => panic!("unknown router must not queue (id {id})"),
    };
    assert!(row.contains("invalid request"), "{row}");
    assert!(row.contains("unknown router"), "{row}");

    // Oversized estimate: shed as Overloaded.
    let oversized = wire::route_line(
        "satmap",
        "linear:4",
        &fig3(),
        &[("budget_ms", "1000".into())],
    );
    let row = match client.submit_route(&oversized).expect("submit") {
        Submission::Done(_, row) => row,
        Submission::Queued(id) => panic!("oversized request must shed (id {id})"),
    };
    assert!(row.contains("shed by admission control"), "{row}");
    assert!(row.contains("admission limit"), "{row}");

    // Unbudgeted requests are never shed by the estimate (nothing to
    // protect: the solver may take as long as it likes).
    let unbudgeted = wire::route_line("satmap", "linear:4", &fig3(), &[]);
    let id = client.submit_route(&unbudgeted).expect("submit").id();
    let row = client.wait(id).expect("outcome");
    assert!(row.contains("\"solved\":true"), "{row}");

    // Malformed line: wire error row, not a dropped connection.
    client.send("{\"verb\":\"route\",oops").expect("send");
    let row = client.recv().expect("error row");
    assert!(row.contains("\"type\":\"error\""), "{row}");
    client.drain().expect("drain");
    daemon.join();
}

#[test]
fn stats_reconcile_exactly_through_queue_full_abort_and_drain() {
    let daemon: Daemon = Daemon::bind(DaemonConfig {
        workers: Some(1),
        queue_capacity: 1,
        ..DaemonConfig::default()
    })
    .expect("bind");
    let mut client = ServiceClient::connect(daemon.local_addr()).expect("connect");

    // 1-2: two identical sabre requests (second may replay the memo).
    let easy = wire::route_line("sabre", "linear:4", &fig3(), &[]);
    let easy1 = client.submit_route(&easy).expect("submit").id();
    assert!(client
        .wait(easy1)
        .expect("outcome")
        .contains("\"solved\":true"));
    let easy2 = client.submit_route(&easy).expect("submit").id();
    assert!(client
        .wait(easy2)
        .expect("outcome")
        .contains("\"solved\":true"));

    // 3: unknown router -> rejected.
    let unknown = wire::route_line("qiskit", "linear:4", &fig3(), &[]);
    assert!(matches!(
        client.submit_route(&unknown).expect("submit"),
        Submission::Done(_, _)
    ));

    // 4: hard job occupies the single worker...
    let hard = wire::route_line(
        "nl-satmap",
        "tokyo",
        &dense(10, 40, 9),
        &[("budget_ms", "120000".into())],
    );
    let hard_id = client.submit_route(&hard).expect("submit").id();
    std::thread::sleep(Duration::from_millis(100));
    // 5: ...a quick one waits in the single queue slot...
    let queued_id = client.submit_route(&easy).expect("submit").id();
    // 6: ...and the next is shed: the queue is full.
    let row = match client.submit_route(&easy).expect("submit") {
        Submission::Done(_, row) => row,
        Submission::Queued(id) => panic!("queue-full request must shed (id {id})"),
    };
    assert!(row.contains("work queue is full"), "{row}");

    // Abort the hard job; the queued one then completes.
    assert!(client.abort(hard_id).expect("abort"));
    let hard_row = client.wait(hard_id).expect("outcome");
    assert!(hard_row.contains("cancelled"), "{hard_row}");
    assert!(client
        .wait(queued_id)
        .expect("outcome")
        .contains("\"solved\":true"));

    let stats = parse_json(&client.stats().expect("stats")).expect("row");
    let count = |key: &str| u64_field(&stats, key);
    assert_eq!(count("received"), 6);
    assert_eq!(count("rejected"), 1);
    assert_eq!(count("shed"), 1);
    assert_eq!(count("admitted"), 4);
    assert_eq!(count("completed"), 4);
    assert_eq!(count("solved"), 3);
    assert_eq!(count("failed"), 1);
    assert_eq!(count("aborted"), 1);
    assert_eq!(count("in_flight"), 0);
    assert_eq!(count("queue_depth"), 0);
    assert_eq!(count("workers"), 1);
    assert_eq!(
        count("received"),
        count("rejected") + count("shed") + count("admitted")
    );
    assert_eq!(count("completed"), count("solved") + count("failed"));
    assert_eq!(outcome_field(&stats, "draining").as_bool(), Some(false));

    // Drain: final report agrees, and routes after it are shed.
    let drain = parse_json(&client.drain().expect("drain")).expect("row");
    assert_eq!(u64_field(&drain, "completed"), 4);
    daemon.join();
}

#[test]
fn routes_after_drain_are_shed() {
    let daemon: Daemon = Daemon::bind(DaemonConfig {
        workers: Some(1),
        ..DaemonConfig::default()
    })
    .expect("bind");
    // Two connections: one drains, the other (already connected) tries to
    // submit afterwards.
    let mut late = ServiceClient::connect(daemon.local_addr()).expect("connect");
    let mut drainer = ServiceClient::connect(daemon.local_addr()).expect("connect");
    drainer.drain().expect("drain");
    let easy = wire::route_line("sabre", "linear:4", &fig3(), &[]);
    let row = match late.submit_route(&easy).expect("submit") {
        Submission::Done(_, row) => row,
        Submission::Queued(id) => panic!("draining daemon must shed (id {id})"),
    };
    assert!(row.contains("draining"), "{row}");
    daemon.join();
}

//! Chaos test: a worker panic injected under the daemon's SAT stack must
//! degrade that one request — never kill the daemon, never poison the
//! cache with the degraded answer.
//!
//! Follows the registry chaos-suite idiom: the process-global
//! [`FaultPlan`] is installed under a scope guard that restores the
//! previous plan even on assertion failure. This file is its own test
//! binary, so the plan cannot leak into unrelated tests.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use circuit::{Circuit, RouteRequest};
use routers::{RoutePolicy, RouterRegistry};
use sat::chaos::{install_plan, silence_panic_reports};
use sat::{ChaosBackend, DefaultBackend, FaultPlan, PortfolioBackend};
use service::wire::{self, parse_json};
use service::{Daemon, DaemonConfig};

/// The supervised SAT stack with fault injection at the solver boundary.
type ChaosStack = PortfolioBackend<ChaosBackend<DefaultBackend>>;

/// Serializes every test that touches the process-global fault plan.
static PLAN_GUARD: Mutex<()> = Mutex::new(());

/// Restores the previously installed plan when dropped.
struct PlanScope {
    prev: Option<FaultPlan>,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for PlanScope {
    fn drop(&mut self) {
        install_plan(self.prev.take());
    }
}

fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    let lock = PLAN_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    silence_panic_reports();
    let _scope = PlanScope {
        prev: install_plan(Some(plan)),
        _lock: lock,
    };
    f()
}

fn fig3() -> Circuit {
    let mut c = Circuit::new(4);
    c.cx(0, 1);
    c.cx(0, 2);
    c.cx(3, 2);
    c.cx(0, 3);
    c
}

#[test]
fn daemon_survives_injected_worker_panics_without_poisoning_the_cache() {
    // Fault-free reference cost, computed before any plan is installed.
    let reference = RouterRegistry::standard()
        .route(
            "satmap",
            &RouteRequest::new(&fig3(), &arch::devices::linear(4)),
        )
        .expect("known router")
        .routed()
        .expect("fault-free satmap solves fig3")
        .swap_count();

    // Tight backoffs so the retry ladder burns milliseconds, not seconds.
    let daemon: Daemon<ChaosStack> = Daemon::bind(DaemonConfig {
        workers: Some(1),
        policy: RoutePolicy {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..RoutePolicy::default()
        },
        ..DaemonConfig::default()
    })
    .expect("bind");
    let mut client = service::ServiceClient::connect(daemon.local_addr()).expect("connect");
    let line = wire::route_line("satmap", "linear:4", &fig3(), &[]);

    // Phase 1: every SAT call panics. The supervisor's ladder exhausts and
    // degrades to the heuristic fallback — the daemon answers and lives.
    let chaos_row = with_plan(FaultPlan::seeded(0xC0FFEE).panic_prob(1.0), || {
        let id = client.submit_route(&line).expect("submit").id();
        client.wait(id).expect("an outcome, not a dead daemon")
    });
    let v = parse_json(&chaos_row).expect("row parses");
    assert_eq!(
        v.get("solved").and_then(|s| s.as_bool()),
        Some(true),
        "the fallback heuristic still routes: {chaos_row}"
    );
    assert_eq!(
        v.get("quality").and_then(|q| q.as_str()),
        Some("degraded"),
        "a panic-exhausted ladder must stamp the degraded quality: {chaos_row}"
    );
    assert_eq!(
        v.get("cache_hit").and_then(|h| h.as_bool()),
        Some(false),
        "{chaos_row}"
    );

    // Phase 2: plan restored. The identical request must NOT replay the
    // degraded answer — unproven outcomes are never memoized — and now
    // proves the fault-free optimum.
    let id = client.submit_route(&line).expect("submit").id();
    let clean_row = client.wait(id).expect("outcome");
    let v = parse_json(&clean_row).expect("row parses");
    assert_eq!(
        v.get("cache_hit").and_then(|h| h.as_bool()),
        Some(false),
        "the degraded outcome must not have been admitted to the cache: {clean_row}"
    );
    assert_eq!(
        v.get("quality").and_then(|q| q.as_str()),
        Some("optimal"),
        "{clean_row}"
    );
    assert_eq!(
        v.get("swaps").and_then(|s| s.as_u64()),
        Some(reference as u64),
        "{clean_row}"
    );

    // Both requests completed as solved; the daemon drains cleanly.
    let stats_row = client.stats().expect("stats");
    let stats = parse_json(&stats_row).expect("row");
    assert_eq!(
        stats.get("completed").and_then(|c| c.as_u64()),
        Some(2),
        "{stats_row}"
    );
    assert_eq!(
        stats.get("solved").and_then(|s| s.as_u64()),
        Some(2),
        "{stats_row}"
    );
    assert_eq!(
        stats.get("failed").and_then(|f| f.as_u64()),
        Some(0),
        "{stats_row}"
    );
    client.drain().expect("drain");
    daemon.join();
}

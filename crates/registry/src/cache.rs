//! A canonical-outcome cache with warm-start session reuse in front of
//! the registry.
//!
//! [`RouteCache`] keys every request by `(canonical router name,`
//! [`circuit::RouteRequest::fingerprint`]`)` — a canonical hash of the
//! answer-relevant inputs (circuit, device graph, resolved spec knobs;
//! budget, parallelism, and request ids deliberately excluded). Three
//! tiers of reuse:
//!
//! 1. **Exact hit** — a solved outcome for the key is memoized and
//!    returned without any solving; the clone is stamped
//!    `telemetry.cache_hit = true`. Failed outcomes (timeouts,
//!    unsatisfiable-with-these-knobs) are *not* memoized, so a retry
//!    under a bigger budget re-solves instead of replaying the failure.
//! 2. **Warm start** — SATMAP routers keep a [`satmap::RouteSession`] per
//!    key: the encoding artifact plus the MaxSAT engine's clause database,
//!    incumbent, and bound progress. A re-solve (typically that
//!    bigger-budget retry) skips re-encoding and resumes the search; the
//!    outcome reports `warm_start = true` with `reused_clauses` counting
//!    the carried arena. The session is *forked* (an arena snapshot) for
//!    the solve, so the stored entry stays valid even if the warm solve is
//!    abandoned mid-search.
//! 3. **Cold** — everything else routes exactly as the plain registry
//!    would.
//!
//! Both maps are **capacity-limited LRU** stores: a long-running daemon
//! funnels every request through one shared cache, so unbounded growth
//! would eventually OOM on session clause arenas (the expensive entries —
//! their default capacity is accordingly much smaller than the outcome
//! map's). Every hit refreshes an entry's recency; inserting past capacity
//! evicts the least-recently-used key and bumps the eviction counters
//! reported by [`RouteCache::stats`].
//!
//! Serving layers that bring their own solver (e.g. a daemon routing
//! through a `RouteSupervisor`) compose via the split surface:
//! [`RouteCache::lookup`] before solving, [`RouteCache::admit`] after —
//! [`RouteCache::route`] is exactly that composition over the wrapped
//! registry, plus the SATMAP session tier.
//!
//! Soundness: an exact hit replays a result computed from identical
//! inputs; a warm start reuses a clause database that is a conservative
//! extension of the identical instance (every MaxSAT bound travels as an
//! assumption, never an asserted clause — see [`maxsat::MaxSatSession`]),
//! so the carried clauses can only prune the search, never change its
//! answer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use circuit::{RouteOutcome, RouteQuality, RouteRequest};
use satmap::{RouteSession, SatMap, SatMapConfig};

use crate::{Backend, RouterRegistry, UnknownRouter};

/// Default capacity of the memoized-outcome map. Outcome rows are small
/// (a routed circuit plus telemetry), so the map can afford to be deep.
pub const DEFAULT_OUTCOME_CAPACITY: usize = 1024;

/// Default capacity of the warm-start session map. Sessions carry full
/// clause arenas — megabytes each on hard instances — so a long-running
/// daemon keeps only the hottest few dozen.
pub const DEFAULT_SESSION_CAPACITY: usize = 64;

/// Cache key: canonical router name plus the request's canonical
/// fingerprint.
type Key = (&'static str, u64);

/// The memoization gate: only *solved* outcomes whose quality is exactly
/// [`RouteQuality::Optimal`] are cached. `Degraded` results (heuristic
/// fallbacks, unproven incumbents from cancelled anytime searches) and
/// warm-retry stamps must never be replayed as the router's real answer —
/// a retry should get the chance to do better.
fn memoizable(outcome: &RouteOutcome) -> bool {
    outcome.solved() && outcome.quality() == RouteQuality::Optimal
}

/// One stored value plus its last-use stamp (a monotone logical clock
/// shared by both maps; larger = more recently used).
struct Entry<T> {
    value: T,
    stamp: u64,
}

/// A capacity-limited map with least-recently-used eviction. Eviction
/// scans for the minimum stamp — O(capacity), which is bounded and tiny
/// next to a solve — so no intrusive list is needed.
struct Lru<T> {
    map: HashMap<Key, Entry<T>>,
    capacity: usize,
    evictions: u64,
}

impl<T> Lru<T> {
    fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            capacity,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    fn touch(&mut self, key: &Key, stamp: u64) -> Option<&mut T> {
        let entry = self.map.get_mut(key)?;
        entry.stamp = stamp;
        Some(&mut entry.value)
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used
    /// entry if the map is full. A zero capacity stores nothing: the
    /// incoming value is dropped on the floor and counted as evicted.
    fn insert(&mut self, key: Key, value: T, stamp: u64) {
        if self.capacity == 0 {
            self.evictions += 1;
            return;
        }
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(&oldest) = self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k) {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, Entry { value, stamp });
    }

    fn remove(&mut self, key: &Key) -> Option<T> {
        self.map.remove(key).map(|e| e.value)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
    }
}

/// A point-in-time snapshot of the cache's occupancy and traffic, for
/// daemon `stats` verbs and capacity tuning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Memoized outcomes currently held.
    pub outcomes: usize,
    /// Warm-start sessions currently held.
    pub sessions: usize,
    /// Capacity of the outcome map.
    pub outcome_capacity: usize,
    /// Capacity of the session map.
    pub session_capacity: usize,
    /// Lookups served from the memo ([`RouteCache::lookup`] hits).
    pub hits: u64,
    /// Lookups that fell through to a solve.
    pub misses: u64,
    /// Outcomes dropped by LRU eviction since construction.
    pub outcome_evictions: u64,
    /// Sessions dropped by LRU eviction since construction.
    pub session_evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the memo (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A memoizing, warm-starting front end over a [`RouterRegistry`]. Interior
/// mutability (mutexed maps) keeps the routing surface `&self`, matching
/// the registry; locks are held only around map access, never across a
/// solve, so concurrent requests at worst both solve cold.
pub struct RouteCache {
    registry: RouterRegistry,
    outcomes: Mutex<Lru<RouteOutcome>>,
    sessions: Mutex<Lru<RouteSession<Backend>>>,
    /// Logical clock stamping every map access (shared by both maps so
    /// "recently used" means the same thing everywhere).
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new(RouterRegistry::standard())
    }
}

impl RouteCache {
    /// A cache in front of the given registry with the default capacities
    /// ([`DEFAULT_OUTCOME_CAPACITY`] / [`DEFAULT_SESSION_CAPACITY`]).
    pub fn new(registry: RouterRegistry) -> Self {
        Self::with_capacities(registry, DEFAULT_OUTCOME_CAPACITY, DEFAULT_SESSION_CAPACITY)
    }

    /// A cache with explicit LRU capacities. A zero capacity disables the
    /// corresponding tier (nothing is stored; every insert counts as an
    /// eviction).
    pub fn with_capacities(
        registry: RouterRegistry,
        outcome_capacity: usize,
        session_capacity: usize,
    ) -> Self {
        RouteCache {
            registry,
            outcomes: Mutex::new(Lru::new(outcome_capacity)),
            sessions: Mutex::new(Lru::new(session_capacity)),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &RouterRegistry {
        &self.registry
    }

    /// Number of memoized (solved) outcomes.
    pub fn cached_outcomes(&self) -> usize {
        lock_or_recover(&self.outcomes).len()
    }

    /// Number of warm-start sessions held.
    pub fn cached_sessions(&self) -> usize {
        lock_or_recover(&self.sessions).len()
    }

    /// Occupancy, traffic, and eviction counters.
    pub fn stats(&self) -> CacheStats {
        let outcomes = lock_or_recover(&self.outcomes);
        let sessions = lock_or_recover(&self.sessions);
        CacheStats {
            outcomes: outcomes.len(),
            sessions: sessions.len(),
            outcome_capacity: outcomes.capacity,
            session_capacity: sessions.capacity,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            outcome_evictions: outcomes.evictions,
            session_evictions: sessions.evictions,
        }
    }

    /// Drops all memoized outcomes and sessions (counters survive).
    pub fn clear(&self) {
        lock_or_recover(&self.outcomes).clear();
        lock_or_recover(&self.sessions).clear();
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The memo half of the cache: returns the stored outcome for this
    /// `(router, fingerprint)` key, stamped `cache_hit` and re-stamped
    /// with the *new* request's id — or `None` on a miss. Counts toward
    /// [`CacheStats::hits`]/[`CacheStats::misses`] and refreshes the
    /// entry's LRU recency. Serving layers that solve through their own
    /// stack (e.g. a supervisor) call this before solving and
    /// [`RouteCache::admit`] after.
    ///
    /// # Errors
    ///
    /// [`UnknownRouter`] listing the valid names.
    pub fn lookup(
        &self,
        name: &str,
        request: &RouteRequest<'_>,
    ) -> Result<Option<RouteOutcome>, UnknownRouter> {
        let canonical = self.registry.canonical(name)?;
        let key = (canonical, request.fingerprint());
        let stamp = self.tick();
        let hit = lock_or_recover(&self.outcomes)
            .touch(&key, stamp)
            .map(|stored| {
                let mut out = stored.clone();
                out.telemetry_mut().cache_hit = true;
                out.with_request_id(request.request_id())
            });
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        Ok(hit)
    }

    /// The store half: memoizes `outcome` for this key when it passes the
    /// gate (solved and [`RouteQuality::Optimal`] — degraded or failed
    /// answers are never replayed). Returns whether it was stored.
    ///
    /// # Errors
    ///
    /// [`UnknownRouter`] listing the valid names.
    pub fn admit(
        &self,
        name: &str,
        request: &RouteRequest<'_>,
        outcome: &RouteOutcome,
    ) -> Result<bool, UnknownRouter> {
        let canonical = self.registry.canonical(name)?;
        if !memoizable(outcome) {
            return Ok(false);
        }
        let key = (canonical, request.fingerprint());
        let stamp = self.tick();
        lock_or_recover(&self.outcomes).insert(key, outcome.clone(), stamp);
        Ok(true)
    }

    /// Routes `request` through the cache: an exact hit replays the
    /// memoized outcome (stamped `cache_hit`), a SATMAP re-solve
    /// warm-starts from the stored session, anything else solves cold —
    /// and solved outcomes (plus SATMAP sessions) are stored for next
    /// time. The memoized outcome keeps the original solve's wall time
    /// and telemetry; only the `cache_hit` stamp distinguishes the replay.
    ///
    /// # Errors
    ///
    /// [`UnknownRouter`] listing the valid names.
    pub fn route(
        &self,
        name: &str,
        request: &RouteRequest<'_>,
    ) -> Result<RouteOutcome, UnknownRouter> {
        let canonical = self.registry.canonical(name)?;
        if let Some(hit) = self.lookup(canonical, request)? {
            return Ok(hit);
        }
        let key = (canonical, request.fingerprint());
        let outcome = match canonical {
            "satmap" => self.route_satmap(SatMapConfig::default(), key, request),
            "nl-satmap" => self.route_satmap(SatMapConfig::monolithic(), key, request),
            _ => self.registry.route(canonical, request)?,
        };
        self.admit(canonical, request, &outcome)?;
        Ok(outcome.with_request_id(request.request_id()))
    }

    /// One SATMAP route with session reuse: fork the stored session when
    /// the backend can snapshot (keeping the stored entry live), else move
    /// it out; solve; store the updated session back.
    fn route_satmap(
        &self,
        config: SatMapConfig,
        key: Key,
        request: &RouteRequest<'_>,
    ) -> RouteOutcome {
        let router = SatMap::<Backend>::with_backend(config);
        let mut slot = {
            let stamp = self.tick();
            let mut sessions = lock_or_recover(&self.sessions);
            match sessions.touch(&key, stamp).and_then(|s| s.fork()) {
                forked @ Some(_) => forked,
                None => sessions.remove(&key),
            }
        };
        let outcome = router.route_with_session(request, &mut slot);
        if let Some(s) = slot {
            let stamp = self.tick();
            lock_or_recover(&self.sessions).insert(key, s, stamp);
        }
        outcome
    }
}

/// Poison-tolerant lock: a panicking worker thread cannot wedge the cache
/// for every other request.
fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Circuit;
    use std::time::Duration;

    fn fig3() -> (Circuit, arch::ConnectivityGraph) {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        (
            c,
            arch::ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]),
        )
    }

    #[test]
    fn exact_repeat_is_served_from_the_cache() {
        let (c, g) = fig3();
        let cache = RouteCache::default();
        let request = RouteRequest::new(&c, &g);
        let cold = cache.route("nl-satmap", &request).expect("known");
        assert!(cold.solved());
        assert!(!cold.telemetry().cache_hit);
        assert_eq!(cache.cached_outcomes(), 1);
        assert_eq!(cache.cached_sessions(), 1);

        let hit = cache.route("nl-satmap", &request).expect("known");
        assert!(hit.telemetry().cache_hit);
        assert_eq!(hit.solved(), cold.solved());
        assert_eq!(
            hit.routed().expect("solved").swap_count(),
            cold.routed().expect("solved").swap_count()
        );
        // The replay carries the original telemetry, not a re-solve's.
        assert_eq!(hit.telemetry().sat_calls, cold.telemetry().sat_calls);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn timed_out_solve_is_not_memoized_and_retries_warm() {
        let mut c = Circuit::new(8);
        for i in 0..7 {
            c.cx(i, i + 1);
            c.cx(0, 7 - i);
        }
        let g = arch::devices::tokyo();
        let cache = RouteCache::default();
        let failed = cache
            .route(
                "nl-satmap",
                &RouteRequest::new(&c, &g).with_budget(Duration::from_millis(1)),
            )
            .expect("known");
        assert!(!failed.solved());
        assert_eq!(cache.cached_outcomes(), 0, "failures are not memoized");
        assert_eq!(cache.cached_sessions(), 1, "but the session survives");

        // Same fingerprint (budget is excluded): the retry warm-starts
        // from the failed attempt's clause DB instead of starting over.
        let retry = cache
            .route("nl-satmap", &RouteRequest::new(&c, &g))
            .expect("known");
        assert!(retry.solved());
        assert!(retry.telemetry().warm_start);
        assert!(!retry.telemetry().cache_hit);
    }

    #[test]
    fn different_routers_do_not_share_entries() {
        let (c, g) = fig3();
        let cache = RouteCache::default();
        let request = RouteRequest::new(&c, &g);
        let a = cache.route("nl-satmap", &request).expect("known");
        let b = cache.route("sabre", &request).expect("known");
        assert!(!b.telemetry().cache_hit);
        assert_eq!(cache.cached_outcomes(), 2);
        assert!(a.solved() && b.solved());
        // Aliases resolve to the canonical entry and share its memo.
        let via_alias = cache.route("nl-satmap", &request).expect("known");
        assert!(via_alias.telemetry().cache_hit);
    }

    #[test]
    fn degraded_outcomes_are_never_memoized() {
        use circuit::RoutedCircuit;
        use sat::SolverTelemetry;
        let solved = || {
            RouteOutcome::new(
                "stub",
                Ok(RoutedCircuit::new(vec![0, 1], Vec::new())),
                SolverTelemetry::new(),
                Duration::ZERO,
            )
        };
        assert!(memoizable(&solved()));
        assert!(!memoizable(&solved().with_quality(RouteQuality::Degraded)));
        assert!(!memoizable(
            &solved().with_quality(RouteQuality::WarmRetry(1))
        ));
        let failed = RouteOutcome::new(
            "stub",
            Err(circuit::RouteError::Timeout),
            SolverTelemetry::new(),
            Duration::ZERO,
        );
        assert!(!memoizable(&failed));
    }

    #[test]
    fn clear_forgets_everything() {
        let (c, g) = fig3();
        let cache = RouteCache::default();
        let request = RouteRequest::new(&c, &g);
        let _ = cache.route("satmap", &request).expect("known");
        cache.clear();
        assert_eq!(cache.cached_outcomes(), 0);
        assert_eq!(cache.cached_sessions(), 0);
        let again = cache.route("satmap", &request).expect("known");
        assert!(!again.telemetry().cache_hit);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_key() {
        let mut lru: Lru<u32> = Lru::new(2);
        lru.insert(("a", 0), 1, 0);
        lru.insert(("b", 0), 2, 1);
        // Touch "a": "b" becomes the oldest.
        assert_eq!(lru.touch(&("a", 0), 2).copied(), Some(1));
        lru.insert(("c", 0), 3, 3);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions, 1);
        assert!(lru.touch(&("b", 0), 4).is_none(), "LRU entry evicted");
        assert!(lru.touch(&("a", 0), 5).is_some(), "touched entry kept");
        // Replacing an existing key never evicts.
        lru.insert(("c", 0), 9, 6);
        assert_eq!(lru.evictions, 1);
        assert_eq!(lru.touch(&("c", 0), 7).copied(), Some(9));
    }

    #[test]
    fn zero_capacity_disables_a_tier() {
        let mut lru: Lru<u32> = Lru::new(0);
        lru.insert(("a", 0), 1, 0);
        assert_eq!(lru.len(), 0);
        assert_eq!(lru.evictions, 1, "dropped inserts count as evictions");
    }

    #[test]
    fn outcome_capacity_bounds_a_long_running_cache() {
        let (c, g) = fig3();
        let cache = RouteCache::with_capacities(RouterRegistry::standard(), 2, 1);
        // Three distinct fingerprints through a capacity-2 memo: the
        // oldest entry must fall out, and the counters must say so.
        let base = RouteRequest::new(&c, &g);
        let swapped = RouteRequest::new(&c, &g).with_swaps_per_gap(2);
        let strategic =
            RouteRequest::new(&c, &g).with_strategy(circuit::SearchStrategy::CoreGuided);
        for request in [&base, &swapped, &strategic] {
            assert!(cache.route("nl-satmap", request).expect("known").solved());
        }
        let stats = cache.stats();
        assert_eq!(stats.outcomes, 2);
        assert_eq!(stats.outcome_capacity, 2);
        assert!(stats.outcome_evictions >= 1, "{stats:?}");
        assert_eq!(stats.sessions, 1, "session map respects its capacity");
        assert!(stats.session_evictions >= 1, "{stats:?}");
        // The freshest entry is still a hit; the evicted one re-solves.
        assert!(
            cache
                .route("nl-satmap", &strategic)
                .expect("known")
                .telemetry()
                .cache_hit
        );
        assert!(
            !cache
                .route("nl-satmap", &base)
                .expect("known")
                .telemetry()
                .cache_hit
        );
    }

    #[test]
    fn lookup_and_admit_compose_for_external_solvers() {
        let (c, g) = fig3();
        let cache = RouteCache::default();
        let request = RouteRequest::new(&c, &g).with_request_id(5);
        assert!(cache.lookup("sabre", &request).expect("known").is_none());
        // Solve outside the cache (as a daemon's supervisor would) and
        // hand the outcome back.
        let outcome = cache
            .registry()
            .route("sabre", &request)
            .expect("known name");
        assert!(cache.admit("sabre", &request, &outcome).expect("known"));
        let hit = cache
            .lookup("sabre", &request.clone().with_request_id(6))
            .expect("known")
            .expect("memoized");
        assert!(hit.telemetry().cache_hit);
        assert_eq!(
            hit.telemetry().request_id,
            Some(6),
            "replays are re-stamped with the new request's id"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Unknown names error through the same surface.
        assert!(cache.lookup("nope", &request).is_err());
        assert!(cache.admit("nope", &request, &outcome).is_err());
    }
}

//! A canonical-outcome cache with warm-start session reuse in front of
//! the registry.
//!
//! [`RouteCache`] keys every request by `(canonical router name,`
//! [`circuit::RouteRequest::fingerprint`]`)` — a canonical hash of the
//! answer-relevant inputs (circuit, device graph, resolved spec knobs;
//! budget and parallelism deliberately excluded). Three tiers of reuse:
//!
//! 1. **Exact hit** — a solved outcome for the key is memoized and
//!    returned without any solving; the clone is stamped
//!    `telemetry.cache_hit = true`. Failed outcomes (timeouts,
//!    unsatisfiable-with-these-knobs) are *not* memoized, so a retry
//!    under a bigger budget re-solves instead of replaying the failure.
//! 2. **Warm start** — SATMAP routers keep a [`satmap::RouteSession`] per
//!    key: the encoding artifact plus the MaxSAT engine's clause database,
//!    incumbent, and bound progress. A re-solve (typically that
//!    bigger-budget retry) skips re-encoding and resumes the search; the
//!    outcome reports `warm_start = true` with `reused_clauses` counting
//!    the carried arena. The session is *forked* (an arena snapshot) for
//!    the solve, so the stored entry stays valid even if the warm solve is
//!    abandoned mid-search.
//! 3. **Cold** — everything else routes exactly as the plain registry
//!    would.
//!
//! Soundness: an exact hit replays a result computed from identical
//! inputs; a warm start reuses a clause database that is a conservative
//! extension of the identical instance (every MaxSAT bound travels as an
//! assumption, never an asserted clause — see [`maxsat::MaxSatSession`]),
//! so the carried clauses can only prune the search, never change its
//! answer.

use std::collections::HashMap;
use std::sync::Mutex;

use circuit::{RouteOutcome, RouteQuality, RouteRequest};
use satmap::{RouteSession, SatMap, SatMapConfig};

use crate::{Backend, RouterRegistry, UnknownRouter};

/// Cache key: canonical router name plus the request's canonical
/// fingerprint.
type Key = (&'static str, u64);

/// The memoization gate: only *solved* outcomes whose quality is exactly
/// [`RouteQuality::Optimal`] are cached. `Degraded` results (heuristic
/// fallbacks, unproven incumbents from cancelled anytime searches) and
/// warm-retry stamps must never be replayed as the router's real answer —
/// a retry should get the chance to do better.
fn memoizable(outcome: &RouteOutcome) -> bool {
    outcome.solved() && outcome.quality() == RouteQuality::Optimal
}

/// A memoizing, warm-starting front end over a [`RouterRegistry`]. Interior
/// mutability (mutexed maps) keeps the routing surface `&self`, matching
/// the registry; locks are held only around map access, never across a
/// solve, so concurrent requests at worst both solve cold.
pub struct RouteCache {
    registry: RouterRegistry,
    outcomes: Mutex<HashMap<Key, RouteOutcome>>,
    sessions: Mutex<HashMap<Key, RouteSession<Backend>>>,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new(RouterRegistry::standard())
    }
}

impl RouteCache {
    /// A cache in front of the given registry.
    pub fn new(registry: RouterRegistry) -> Self {
        RouteCache {
            registry,
            outcomes: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &RouterRegistry {
        &self.registry
    }

    /// Number of memoized (solved) outcomes.
    pub fn cached_outcomes(&self) -> usize {
        self.outcomes.lock().expect("cache lock").len()
    }

    /// Number of warm-start sessions held.
    pub fn cached_sessions(&self) -> usize {
        self.sessions.lock().expect("cache lock").len()
    }

    /// Drops all memoized outcomes and sessions.
    pub fn clear(&self) {
        self.outcomes.lock().expect("cache lock").clear();
        self.sessions.lock().expect("cache lock").clear();
    }

    /// Routes `request` through the cache: an exact hit replays the
    /// memoized outcome (stamped `cache_hit`), a SATMAP re-solve
    /// warm-starts from the stored session, anything else solves cold —
    /// and solved outcomes (plus SATMAP sessions) are stored for next
    /// time. The memoized outcome keeps the original solve's wall time
    /// and telemetry; only the `cache_hit` stamp distinguishes the replay.
    ///
    /// # Errors
    ///
    /// [`UnknownRouter`] listing the valid names.
    pub fn route(
        &self,
        name: &str,
        request: &RouteRequest<'_>,
    ) -> Result<RouteOutcome, UnknownRouter> {
        let canonical = self.registry.canonical(name)?;
        let key = (canonical, request.fingerprint());
        if let Some(hit) = self.outcomes.lock().expect("cache lock").get(&key) {
            let mut out = hit.clone();
            out.telemetry_mut().cache_hit = true;
            return Ok(out);
        }
        let outcome = match canonical {
            "satmap" => self.route_satmap(SatMapConfig::default(), key, request),
            "nl-satmap" => self.route_satmap(SatMapConfig::monolithic(), key, request),
            _ => self.registry.route(canonical, request)?,
        };
        if memoizable(&outcome) {
            self.outcomes
                .lock()
                .expect("cache lock")
                .insert(key, outcome.clone());
        }
        Ok(outcome)
    }

    /// One SATMAP route with session reuse: fork the stored session when
    /// the backend can snapshot (keeping the stored entry live), else move
    /// it out; solve; store the updated session back.
    fn route_satmap(
        &self,
        config: SatMapConfig,
        key: Key,
        request: &RouteRequest<'_>,
    ) -> RouteOutcome {
        let router = SatMap::<Backend>::with_backend(config);
        let mut slot = {
            let mut sessions = self.sessions.lock().expect("cache lock");
            match sessions.get(&key).and_then(|s| s.fork()) {
                forked @ Some(_) => forked,
                None => sessions.remove(&key),
            }
        };
        let outcome = router.route_with_session(request, &mut slot);
        if let Some(s) = slot {
            self.sessions.lock().expect("cache lock").insert(key, s);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Circuit;
    use std::time::Duration;

    fn fig3() -> (Circuit, arch::ConnectivityGraph) {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        (
            c,
            arch::ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]),
        )
    }

    #[test]
    fn exact_repeat_is_served_from_the_cache() {
        let (c, g) = fig3();
        let cache = RouteCache::default();
        let request = RouteRequest::new(&c, &g);
        let cold = cache.route("nl-satmap", &request).expect("known");
        assert!(cold.solved());
        assert!(!cold.telemetry().cache_hit);
        assert_eq!(cache.cached_outcomes(), 1);
        assert_eq!(cache.cached_sessions(), 1);

        let hit = cache.route("nl-satmap", &request).expect("known");
        assert!(hit.telemetry().cache_hit);
        assert_eq!(hit.solved(), cold.solved());
        assert_eq!(
            hit.routed().expect("solved").swap_count(),
            cold.routed().expect("solved").swap_count()
        );
        // The replay carries the original telemetry, not a re-solve's.
        assert_eq!(hit.telemetry().sat_calls, cold.telemetry().sat_calls);
    }

    #[test]
    fn timed_out_solve_is_not_memoized_and_retries_warm() {
        let mut c = Circuit::new(8);
        for i in 0..7 {
            c.cx(i, i + 1);
            c.cx(0, 7 - i);
        }
        let g = arch::devices::tokyo();
        let cache = RouteCache::default();
        let failed = cache
            .route(
                "nl-satmap",
                &RouteRequest::new(&c, &g).with_budget(Duration::from_millis(1)),
            )
            .expect("known");
        assert!(!failed.solved());
        assert_eq!(cache.cached_outcomes(), 0, "failures are not memoized");
        assert_eq!(cache.cached_sessions(), 1, "but the session survives");

        // Same fingerprint (budget is excluded): the retry warm-starts
        // from the failed attempt's clause DB instead of starting over.
        let retry = cache
            .route("nl-satmap", &RouteRequest::new(&c, &g))
            .expect("known");
        assert!(retry.solved());
        assert!(retry.telemetry().warm_start);
        assert!(!retry.telemetry().cache_hit);
    }

    #[test]
    fn different_routers_do_not_share_entries() {
        let (c, g) = fig3();
        let cache = RouteCache::default();
        let request = RouteRequest::new(&c, &g);
        let a = cache.route("nl-satmap", &request).expect("known");
        let b = cache.route("sabre", &request).expect("known");
        assert!(!b.telemetry().cache_hit);
        assert_eq!(cache.cached_outcomes(), 2);
        assert!(a.solved() && b.solved());
        // Aliases resolve to the canonical entry and share its memo.
        let via_alias = cache.route("nl-satmap", &request).expect("known");
        assert!(via_alias.telemetry().cache_hit);
    }

    #[test]
    fn degraded_outcomes_are_never_memoized() {
        use circuit::RoutedCircuit;
        use sat::SolverTelemetry;
        let solved = || {
            RouteOutcome::new(
                "stub",
                Ok(RoutedCircuit::new(vec![0, 1], Vec::new())),
                SolverTelemetry::new(),
                Duration::ZERO,
            )
        };
        assert!(memoizable(&solved()));
        assert!(!memoizable(&solved().with_quality(RouteQuality::Degraded)));
        assert!(!memoizable(
            &solved().with_quality(RouteQuality::WarmRetry(1))
        ));
        let failed = RouteOutcome::new(
            "stub",
            Err(circuit::RouteError::Timeout),
            SolverTelemetry::new(),
            Duration::ZERO,
        );
        assert!(!memoizable(&failed));
    }

    #[test]
    fn clear_forgets_everything() {
        let (c, g) = fig3();
        let cache = RouteCache::default();
        let request = RouteRequest::new(&c, &g);
        let _ = cache.route("satmap", &request).expect("known");
        cache.clear();
        assert_eq!(cache.cached_outcomes(), 0);
        assert_eq!(cache.cached_sessions(), 0);
        let again = cache.route("satmap", &request).expect("known");
        assert!(!again.telemetry().cache_hit);
    }
}

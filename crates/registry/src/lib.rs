//! Name-indexed construction of every QMR router in the workspace.
//!
//! The experiment runner, the bench harness, the examples, and the
//! integration tests all dispatch through `Box<dyn Router>`; this crate is
//! the one place that knows the concrete types behind the names. Routers
//! are request-driven ([`circuit::RouteRequest`]), so the registry needs
//! no per-router configuration: budgets, objectives, slicing, and
//! parallelism all arrive with each request.
//!
//! Registered names (aliases in parentheses):
//!
//! | name | router |
//! |---|---|
//! | `satmap` | SATMAP, locally optimal relaxation (slice 25) |
//! | `nl-satmap` | NL-SATMAP, monolithic MaxSAT |
//! | `cyc-satmap` | CYC-SATMAP, cyclic relaxation |
//! | `olsq` (`ex-mqt`) | exhaustive-encoding baseline |
//! | `olsq-tb` (`tb-olsq`) | transition-based baseline |
//! | `sabre` | SABRE heuristic |
//! | `tket` | t\|ket⟩-style heuristic |
//! | `astar` (`mqth-astar`) | MQT-style A* heuristic |
//!
//! The three SAT-based SATMAP variants are built over
//! [`sat::PortfolioBackend`], so a request's [`circuit::Parallelism`] hint
//! races diversified workers; `Serial` requests solve inline with zero
//! racing overhead and identical costs. Every SAT-based router also honors
//! the request's [`circuit::SearchStrategy`]: the MaxSAT engine's linear
//! SAT-UNSAT search (default), the core-guided lower-bounding search, or a
//! first-proof-wins race of both.
//!
//! Two front ends layer over the registry: [`RouteCache`] (memoization +
//! warm-start session reuse) and [`RouteSupervisor`] (admission control, a
//! retry/escalation ladder with warm-started retries, heuristic
//! degradation, and panic isolation — see [`supervisor`]).
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, RouteRequest};
//! use routers::RouterRegistry;
//! use std::time::Duration;
//!
//! let mut c = Circuit::new(2);
//! c.cx(0, 1);
//! let g = arch::devices::linear(2);
//! let registry = RouterRegistry::standard();
//! let router = registry.create("satmap")?;
//! let request = RouteRequest::new(&c, &g).with_budget(Duration::from_secs(5));
//! let outcome = router.route_request(&request);
//! assert!(outcome.solved());
//! # Ok::<(), routers::UnknownRouter>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod supervisor;

pub use cache::{CacheStats, RouteCache, DEFAULT_OUTCOME_CAPACITY, DEFAULT_SESSION_CAPACITY};
pub use supervisor::{RoutePolicy, RouteSupervisor, ENCODING_ROUTERS};

use circuit::Router;
use heuristics::{AStar, Sabre, Tket};
use olsq::{Exhaustive, Transition};
use sat::{DefaultBackend, PortfolioBackend};
use satmap::{CyclicSatMap, SatMap, SatMapConfig};

/// A router that can be shared across suite-runner worker threads.
pub type BoxedRouter = Box<dyn Router + Send + Sync>;

/// The portfolio-capable backend the registry builds SAT routers over —
/// exported so embedders (the `routed` daemon, custom supervisors) can
/// name the same stack, or substitute a decorated one (e.g.
/// `PortfolioBackend<ChaosBackend<DefaultBackend>>`) for fault injection.
pub type StandardBackend = PortfolioBackend<DefaultBackend>;

pub(crate) type Backend = StandardBackend;

#[derive(Clone)]
struct Entry {
    name: &'static str,
    aliases: &'static [&'static str],
    summary: &'static str,
    build: fn() -> BoxedRouter,
}

/// Requested router name is not registered. The error lists every valid
/// name so callers (CLI flags, config files) can self-correct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownRouter {
    requested: String,
    known: Vec<&'static str>,
}

impl UnknownRouter {
    /// The name that failed to resolve.
    pub fn requested(&self) -> &str {
        &self.requested
    }

    /// Every name the registry would have accepted.
    pub fn known(&self) -> &[&'static str] {
        &self.known
    }
}

impl std::fmt::Display for UnknownRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown router '{}'; valid names: {}",
            self.requested,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownRouter {}

/// Constructs any registered router by name.
///
/// [`RouterRegistry::standard`] registers the full workspace line-up; the
/// registry itself is data, so embedders can live with a subset via
/// [`RouterRegistry::with_names`].
pub struct RouterRegistry {
    entries: Vec<Entry>,
}

impl Default for RouterRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl RouterRegistry {
    /// The full workspace line-up: every solver family of the paper's
    /// comparison.
    pub fn standard() -> Self {
        let entries: Vec<Entry> = vec![
            Entry {
                name: "satmap",
                aliases: &[],
                summary: "SATMAP: locally optimal MaxSAT relaxation (slice 25)",
                build: || Box::new(SatMap::<Backend>::with_backend(SatMapConfig::default())),
            },
            Entry {
                name: "nl-satmap",
                aliases: &[],
                summary: "NL-SATMAP: monolithic MaxSAT (optimal modulo swaps-per-gap)",
                build: || Box::new(SatMap::<Backend>::with_backend(SatMapConfig::monolithic())),
            },
            Entry {
                name: "cyc-satmap",
                aliases: &[],
                summary: "CYC-SATMAP: cyclic relaxation for repeated circuits",
                build: || {
                    Box::new(CyclicSatMap::<Backend>::with_backend(
                        SatMapConfig::default(),
                    ))
                },
            },
            Entry {
                name: "olsq",
                aliases: &["ex-mqt"],
                summary: "exhaustive-encoding constraint baseline (EX-MQT analogue)",
                build: || Box::new(Exhaustive::<Backend>::with_backend()),
            },
            Entry {
                name: "olsq-tb",
                aliases: &["tb-olsq"],
                summary: "transition-based constraint baseline (TB-OLSQ analogue)",
                build: || Box::new(Transition::<Backend>::with_backend()),
            },
            Entry {
                name: "sabre",
                aliases: &[],
                summary: "SABRE bidirectional lookahead heuristic",
                build: || Box::new(Sabre::default()),
            },
            Entry {
                name: "tket",
                aliases: &[],
                summary: "t|ket>-style greedy lookahead heuristic",
                build: || Box::new(Tket::default()),
            },
            Entry {
                name: "astar",
                aliases: &["mqth-astar"],
                summary: "MQT-style layer-by-layer A* heuristic",
                build: || Box::new(AStar::default()),
            },
        ];
        RouterRegistry { entries }
    }

    /// A registry restricted to the given names (aliases resolve to their
    /// canonical entry; duplicates collapse).
    ///
    /// # Errors
    ///
    /// [`UnknownRouter`] if any requested name is not registered.
    pub fn with_names(names: &[&str]) -> Result<Self, UnknownRouter> {
        let standard = Self::standard();
        let mut entries: Vec<Entry> = Vec::new();
        for &n in names {
            let entry = standard.find(n).ok_or_else(|| standard.unknown(n))?;
            if !entries.iter().any(|e| e.name == entry.name) {
                entries.push(entry.clone());
            }
        }
        Ok(RouterRegistry { entries })
    }

    /// The canonical names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// `(name, one-line summary)` pairs for help texts.
    pub fn descriptions(&self) -> Vec<(&'static str, &'static str)> {
        self.entries.iter().map(|e| (e.name, e.summary)).collect()
    }

    /// Resolves `name` (or an alias) to its canonical registered name —
    /// the key under which [`RouteCache`] files its entries.
    ///
    /// # Errors
    ///
    /// [`UnknownRouter`] listing the valid names.
    pub fn canonical(&self, name: &str) -> Result<&'static str, UnknownRouter> {
        self.find(name)
            .map(|e| e.name)
            .ok_or_else(|| self.unknown(name))
    }

    fn find(&self, name: &str) -> Option<&Entry> {
        self.entries
            .iter()
            .find(|e| e.name == name || e.aliases.contains(&name))
    }

    fn unknown(&self, name: &str) -> UnknownRouter {
        UnknownRouter {
            requested: name.to_string(),
            known: self.names(),
        }
    }

    /// Constructs the router registered under `name` (or one of its
    /// aliases).
    ///
    /// # Errors
    ///
    /// [`UnknownRouter`] listing the valid names.
    pub fn create(&self, name: &str) -> Result<BoxedRouter, UnknownRouter> {
        self.find(name)
            .map(|e| (e.build)())
            .ok_or_else(|| self.unknown(name))
    }

    /// Constructs the router and serves one request with it — the
    /// "name + request" one-shot entry point.
    ///
    /// # Errors
    ///
    /// [`UnknownRouter`] listing the valid names.
    pub fn route(
        &self,
        name: &str,
        request: &circuit::RouteRequest<'_>,
    ) -> Result<circuit::RouteOutcome, UnknownRouter> {
        Ok(self
            .create(name)?
            .route_request(request)
            .with_request_id(request.request_id()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::{Circuit, RouteRequest};

    #[test]
    fn every_name_constructs() {
        let registry = RouterRegistry::standard();
        assert_eq!(
            registry.names(),
            vec![
                "satmap",
                "nl-satmap",
                "cyc-satmap",
                "olsq",
                "olsq-tb",
                "sabre",
                "tket",
                "astar"
            ]
        );
        for name in registry.names() {
            let router = registry.create(name).expect("registered");
            assert!(!router.name().is_empty());
        }
        assert_eq!(registry.descriptions().len(), 8);
    }

    #[test]
    fn aliases_resolve_to_same_router() {
        let registry = RouterRegistry::standard();
        assert_eq!(
            registry.create("ex-mqt").expect("alias").name(),
            registry.create("olsq").expect("canonical").name()
        );
        assert_eq!(
            registry.create("mqth-astar").expect("alias").name(),
            "mqth-astar"
        );
    }

    #[test]
    fn unknown_name_lists_valid_ones() {
        let registry = RouterRegistry::standard();
        let err = match registry.create("qiskit") {
            Err(e) => e,
            Ok(_) => panic!("'qiskit' must not resolve"),
        };
        assert_eq!(err.requested(), "qiskit");
        let msg = err.to_string();
        for name in registry.names() {
            assert!(msg.contains(name), "{msg} must list {name}");
        }
    }

    #[test]
    fn with_names_subsets_dedupes_and_rejects() {
        let subset = RouterRegistry::with_names(&["tket", "ex-mqt"]).expect("subset");
        assert_eq!(subset.names(), vec!["tket", "olsq"]);
        let deduped =
            RouterRegistry::with_names(&["olsq", "ex-mqt", "olsq"]).expect("aliases collapse");
        assert_eq!(deduped.names(), vec!["olsq"]);
        assert!(RouterRegistry::with_names(&["nope"]).is_err());
    }

    #[test]
    fn one_shot_route_by_name() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let g = arch::devices::linear(2);
        let registry = RouterRegistry::standard();
        let outcome = registry
            .route("tket", &RouteRequest::new(&c, &g))
            .expect("known name");
        assert!(outcome.solved());
        assert!(registry.route("nope", &RouteRequest::new(&c, &g)).is_err());
    }
}

//! Resilient routing supervision: every admitted request comes back with a
//! usable outcome.
//!
//! [`RouteSupervisor`] wraps the registry with a [`RoutePolicy`]-driven
//! escalation ladder:
//!
//! 1. **Admission control** — before any encoding is paid for, requests
//!    whose [`satmap::encoding_estimate`] exceeds the policy's admission
//!    limit (and that carry a finite budget) are shed: degraded straight to
//!    the fallback heuristic, or answered with a typed
//!    [`RouteError::Overloaded`] when no fallback is configured.
//! 2. **Retry with escalation** — retryable failures ([`RouteError::Timeout`],
//!    [`RouteError::Overloaded`], [`RouteError::Internal`]) are re-attempted
//!    up to [`RoutePolicy::max_attempts`] times, each retry after a
//!    deterministic jittered backoff ([`ResourceBudget::backoff_for`]) and
//!    under a budget scaled by [`RoutePolicy::escalation`]. SATMAP retries
//!    warm-start from the session deposited by the failed attempt (same
//!    mechanism as [`crate::RouteCache`]; budgets are excluded from the
//!    request fingerprint, so an escalated retry reuses the clause
//!    database, incumbent, and bound instead of starting over). A proven
//!    answer on attempt `k > 1` is stamped
//!    [`RouteQuality::WarmRetry`]`(k - 1)`.
//! 3. **Heuristic degradation** — when the ladder is exhausted, the best
//!    unproven incumbent (if any attempt produced one) or the fallback
//!    heuristic's answer is returned, stamped [`RouteQuality::Degraded`].
//!    The fallback runs unbudgeted: it is fast and must deliver.
//!
//! Non-retryable failures ([`RouteError::InvalidRequest`],
//! [`RouteError::Unsatisfiable`]) return immediately — retrying cannot
//! change them. So does a fired abort handle: when the cancel token on the
//! request's budget is cancelled, the ladder stops (no retry, no fallback)
//! and answers [`RouteError::Cancelled`], keeping whatever telemetry the
//! interrupted attempt accumulated. Every attempt runs behind a panic
//! isolation boundary: a crash inside a router surfaces as a retryable
//! [`RouteError::Internal`], never as a process panic.
//!
//! Soundness: `Optimal` and `WarmRetry` outcomes carry the same optimality
//! proof a plain route would — warm-started retries reuse only
//! conservative-extension clause databases (see `maxsat::MaxSatSession`)
//! — so their costs equal the fault-free cost. Only `Degraded` outcomes
//! may cost more, and they say so.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Duration;

use circuit::{RouteError, RouteOutcome, RouteQuality, RouteRequest};
use sat::{ResourceBudget, SatBackend, SolverTelemetry};
use satmap::{RouteSession, SatMap, SatMapConfig};

use crate::{Backend, RouterRegistry, UnknownRouter};

/// Registered routers that pay for a SAT/SMT-style encoding before
/// solving — the ones admission control can meaningfully shed. Heuristic
/// routers are always admitted: they are the degradation target. Public so
/// other admission layers (the `routed` daemon) shed by the same rule.
pub const ENCODING_ROUTERS: &[&str] = &["satmap", "nl-satmap", "cyc-satmap", "olsq", "olsq-tb"];

/// Retry, escalation, and degradation knobs of a [`RouteSupervisor`].
///
/// # Examples
///
/// ```
/// use routers::RoutePolicy;
/// let policy = RoutePolicy {
///     max_attempts: 2,
///     fallback: Some("astar".into()),
///     ..RoutePolicy::default()
/// };
/// assert_eq!(policy.escalation, 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct RoutePolicy {
    /// Attempts before degrading (≥ 1; the first attempt counts).
    pub max_attempts: u32,
    /// Budget multiplier applied per retry: attempt `k` runs under the
    /// original time budget times `escalation^(k-1)`. Unlimited budgets
    /// stay unlimited.
    pub escalation: f64,
    /// Base delay of the exponential backoff slept before each retry.
    pub backoff_base: Duration,
    /// Ceiling the backoff plateaus at.
    pub backoff_cap: Duration,
    /// Seed of the backoff's deterministic jitter.
    pub backoff_seed: u64,
    /// Registered router name answers degrade to when the ladder is
    /// exhausted (or the request is shed). `None` returns the typed
    /// failure instead.
    pub fallback: Option<String>,
    /// Admission ceiling on [`satmap::encoding_estimate`] for budgeted
    /// requests to encoding-based routers. The estimate is multiplied by
    /// the worker count the dispatch plan would run ([`satmap::planned_width`]):
    /// a width-4 portfolio clones the formula four times, so its memory
    /// footprint — the quantity the paper's 5 GB cap bounds — scales with
    /// the plan, not just the instance.
    pub admission_limit: usize,
    /// Whether retries may widen the worker plan: a `Serial` request whose
    /// first attempt failed retries under `Parallelism::Auto`, letting the
    /// dispatcher race a heterogeneous portfolio at the escalated budget.
    /// Parallelism is excluded from the request fingerprint, so the
    /// widened retry still warm-starts from the failed attempt's session.
    pub escalate_plan: bool,
}

impl Default for RoutePolicy {
    fn default() -> Self {
        RoutePolicy {
            max_attempts: 3,
            escalation: 2.0,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            backoff_seed: 0x5EED_0BAD_CAFE,
            fallback: Some("sabre".into()),
            admission_limit: satmap::ENCODING_GUARD_LIMIT,
            escalate_plan: true,
        }
    }
}

/// Session key: canonical router name plus request fingerprint (budget
/// and parallelism excluded — that is what makes escalated retries warm).
type Key = (&'static str, u64);

/// A resilience layer over the [`RouterRegistry`]: admission control, a
/// retry/escalation ladder with warm-started SATMAP retries, heuristic
/// degradation, and per-attempt panic isolation. See the module docs for
/// the ladder semantics.
///
/// Generic over the SAT backend the SATMAP attempts run on (defaults to
/// the registry's portfolio backend); fault-injection tests substitute
/// [`sat::ChaosBackend`] here. Non-SATMAP routers are built by the wrapped
/// registry and always use its fixed backend.
pub struct RouteSupervisor<B: SatBackend + Default + Send = Backend> {
    registry: RouterRegistry,
    policy: RoutePolicy,
    sessions: Mutex<HashMap<Key, RouteSession<B>>>,
}

impl Default for RouteSupervisor {
    fn default() -> Self {
        Self::new()
    }
}

impl RouteSupervisor {
    /// A supervisor over the standard registry with the default policy.
    pub fn new() -> Self {
        Self::with_policy(RoutePolicy::default())
    }

    /// A supervisor over the standard registry with the given policy.
    pub fn with_policy(policy: RoutePolicy) -> Self {
        Self::with_registry_and_policy(RouterRegistry::standard(), policy)
    }
}

impl<B: SatBackend + Default + Send> RouteSupervisor<B> {
    /// A supervisor with an explicit registry, policy, and SATMAP backend
    /// type.
    pub fn with_registry_and_policy(registry: RouterRegistry, policy: RoutePolicy) -> Self {
        RouteSupervisor {
            registry,
            policy,
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &RoutePolicy {
        &self.policy
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &RouterRegistry {
        &self.registry
    }

    /// Routes `request` through the resilience ladder. The returned
    /// outcome always carries [`RouteOutcome::attempts`] and a
    /// [`RouteQuality`] stamp; a solved result is cost-correct unless
    /// stamped `Degraded`.
    ///
    /// # Errors
    ///
    /// [`UnknownRouter`] listing the valid names. Routing failures are
    /// *not* errors at this level — they come back inside the outcome.
    pub fn route(
        &self,
        name: &str,
        request: &RouteRequest<'_>,
    ) -> Result<RouteOutcome, UnknownRouter> {
        let canonical = self.registry.canonical(name)?;
        Ok(self
            .supervise(canonical, request)
            .with_request_id(request.request_id()))
    }

    /// True when the request's abort handle (the cancel token attached to
    /// its budget) has fired. Cancellation is not a failure the ladder
    /// should recover from — it is the caller saying *stop* — so the
    /// supervisor checks it between attempts and before degrading.
    fn cancelled(request: &RouteRequest<'_>) -> bool {
        request
            .budget()
            .cancel_token()
            .is_some_and(|t| t.is_cancelled())
    }

    /// The typed verdict for an aborted request.
    fn cancelled_outcome(canonical: &'static str, attempts: u32) -> RouteOutcome {
        RouteOutcome::new(
            canonical,
            Err(RouteError::Cancelled),
            SolverTelemetry::new(),
            Duration::ZERO,
        )
        .with_attempts(attempts)
    }

    /// Admission check: predicted encoding size of a budgeted request to
    /// an encoding-based router, against the policy limit. Costs O(1) —
    /// the shed happens *before* any encode time is spent.
    fn admit(&self, canonical: &'static str, request: &RouteRequest<'_>) -> Result<(), RouteError> {
        if !ENCODING_ROUTERS.contains(&canonical) || !request.budget().is_limited() {
            return Ok(());
        }
        let swaps_per_gap = request.swaps_per_gap().unwrap_or(1);
        let estimate = satmap::encoding_estimate(request.circuit(), request.graph(), swaps_per_gap);
        let width = satmap::planned_width(
            request.circuit(),
            request.graph(),
            request.parallelism(),
            request.strategy(),
            swaps_per_gap,
        );
        if estimate.saturating_mul(width) > self.policy.admission_limit {
            return Err(RouteError::Overloaded(format!(
                "encoding estimate {estimate} x planned width {width} exceeds \
                 the admission limit {}",
                self.policy.admission_limit
            )));
        }
        Ok(())
    }

    /// The escalation ladder (see the module docs).
    fn supervise(&self, canonical: &'static str, request: &RouteRequest<'_>) -> RouteOutcome {
        if let Err(shed) = self.admit(canonical, request) {
            return self.degrade(canonical, request, shed, 1);
        }
        let base_time = request.budget().remaining_time();
        let max_attempts = self.policy.max_attempts.max(1);
        let mut best_unproven: Option<RouteOutcome> = None;
        let mut last_failure: Option<RouteError> = None;
        for attempt in 1..=max_attempts {
            if Self::cancelled(request) {
                return Self::cancelled_outcome(canonical, attempt);
            }
            if attempt > 1 {
                std::thread::sleep(ResourceBudget::backoff_for(
                    attempt - 1,
                    self.policy.backoff_base,
                    self.policy.backoff_cap,
                    self.policy.backoff_seed,
                ));
            }
            let escalated = self.escalated_request(request, base_time, attempt);
            let outcome = self.attempt(canonical, &escalated);
            match outcome.error() {
                None => {
                    if outcome.quality() == RouteQuality::Optimal {
                        // Proven answer: cost-correct by construction.
                        let quality = if attempt == 1 {
                            RouteQuality::Optimal
                        } else {
                            RouteQuality::WarmRetry(attempt - 1)
                        };
                        return outcome.with_quality(quality).with_attempts(attempt);
                    }
                    // Unproven incumbent (already stamped Degraded by the
                    // router): keep the cheapest and escalate for a proof.
                    best_unproven = Some(match best_unproven.take() {
                        Some(best) if swap_count(&best) <= swap_count(&outcome) => best,
                        _ => outcome,
                    });
                }
                Some(RouteError::InvalidRequest(_))
                | Some(RouteError::Unsatisfiable(_))
                | Some(RouteError::Cancelled) => {
                    // Deterministic verdicts: retrying cannot change them.
                    return outcome.with_attempts(attempt);
                }
                Some(e) => {
                    // A solve killed by the abort handle surfaces as a
                    // budget expiry; re-type it so the caller sees a
                    // cancellation, keeping the effort the attempt spent.
                    if Self::cancelled(request) {
                        return outcome
                            .with_result(Err(RouteError::Cancelled))
                            .with_attempts(attempt);
                    }
                    last_failure = Some(e.clone());
                }
            }
        }
        if Self::cancelled(request) {
            // An aborted request must not burn fallback work — and must
            // not hand back a partial incumbent either: the caller said
            // *stop*, so the only honest answer is the typed cancellation.
            return Self::cancelled_outcome(canonical, max_attempts);
        }
        if let Some(best) = best_unproven {
            return best
                .with_quality(RouteQuality::Degraded)
                .with_attempts(max_attempts);
        }
        let failure = last_failure.unwrap_or(RouteError::Timeout);
        // The whole ladder failed: drop the warm session for this key.
        // Search state retained across a fully failed ladder is correlated
        // with the failure (a wedged or fault-injected solver instance),
        // and resuming from it would replay the failure on the next
        // identical request instead of giving a cold start a chance.
        self.evict_session(canonical, request);
        self.degrade(canonical, request, failure, max_attempts)
    }

    /// Removes the stored warm-start session for this request, if any.
    fn evict_session(&self, canonical: &'static str, request: &RouteRequest<'_>) {
        lock_or_recover(&self.sessions).remove(&(canonical, request.fingerprint()));
    }

    /// Scales the request's time budget for attempt `attempt` (1-based);
    /// unlimited budgets pass through untouched. With
    /// [`RoutePolicy::escalate_plan`], a retry also releases a `Serial`
    /// parallelism hint to `Auto`, so the dispatcher can answer the
    /// escalated attempt with a wider (possibly heterogeneous) worker
    /// plan. The strategy knob is never touched: changing it would break
    /// warm-start session compatibility.
    fn escalated_request<'a>(
        &self,
        request: &RouteRequest<'a>,
        base_time: Option<Duration>,
        attempt: u32,
    ) -> RouteRequest<'a> {
        let mut escalated = match base_time {
            Some(t) if attempt > 1 => {
                let factor = self.policy.escalation.max(1.0).powi(attempt as i32 - 1);
                request
                    .clone()
                    .with_budget(Duration::from_secs_f64(t.as_secs_f64() * factor))
            }
            _ => request.clone(),
        };
        if self.policy.escalate_plan
            && attempt > 1
            && request.parallelism() == circuit::Parallelism::Serial
        {
            escalated = escalated.with_parallelism(circuit::Parallelism::Auto);
        }
        escalated
    }

    /// One panic-isolated routing attempt. SATMAP family attempts run on
    /// this supervisor's backend with warm-start session reuse; everything
    /// else is built cold by the registry. A panic anywhere inside
    /// surfaces as a retryable [`RouteError::Internal`].
    fn attempt(&self, canonical: &'static str, request: &RouteRequest<'_>) -> RouteOutcome {
        let run = || match canonical {
            "satmap" => self.attempt_satmap(SatMapConfig::default(), canonical, request),
            "nl-satmap" => self.attempt_satmap(SatMapConfig::monolithic(), canonical, request),
            _ => self
                .registry
                .route(canonical, request)
                .expect("canonical name is registered"),
        };
        catch_unwind(AssertUnwindSafe(run)).unwrap_or_else(|_| {
            RouteOutcome::new(
                canonical,
                Err(RouteError::Internal(
                    "routing attempt panicked; retrying".into(),
                )),
                SolverTelemetry::new(),
                Duration::ZERO,
            )
        })
    }

    /// One SATMAP route with session reuse (the warm half of the ladder):
    /// fork the stored session when the backend can snapshot, else move it
    /// out; solve; deposit the updated session — even after a failure, so
    /// the *next* attempt resumes from the partial search.
    fn attempt_satmap(
        &self,
        config: SatMapConfig,
        canonical: &'static str,
        request: &RouteRequest<'_>,
    ) -> RouteOutcome {
        let router = SatMap::<B>::with_backend(config);
        let key = (canonical, request.fingerprint());
        let mut slot = {
            let mut sessions = lock_or_recover(&self.sessions);
            match sessions.get(&key).and_then(|s| s.fork()) {
                forked @ Some(_) => forked,
                None => sessions.remove(&key),
            }
        };
        let outcome = router.route_with_session(request, &mut slot);
        if let Some(s) = slot {
            lock_or_recover(&self.sessions).insert(key, s);
        }
        outcome
    }

    /// Terminal degradation: answer with the fallback heuristic, stamped
    /// `Degraded` (the fallback runs unbudgeted — it is fast and must
    /// deliver). Without a fallback, or if it fails too, the typed
    /// `failure` is returned.
    fn degrade(
        &self,
        canonical: &'static str,
        request: &RouteRequest<'_>,
        failure: RouteError,
        attempts: u32,
    ) -> RouteOutcome {
        if let Some(fallback) = self.policy.fallback.as_deref() {
            if let Ok(router) = self.registry.create(fallback) {
                let unbudgeted = request.clone().with_budget(ResourceBudget::unlimited());
                let out = catch_unwind(AssertUnwindSafe(|| router.route_request(&unbudgeted)));
                if let Ok(out) = out {
                    if out.solved() {
                        return out
                            .with_quality(RouteQuality::Degraded)
                            .with_attempts(attempts)
                            .with_diagnostic("degraded_from", canonical)
                            .with_diagnostic("degraded_reason", &failure);
                    }
                }
            }
        }
        RouteOutcome::new(
            canonical,
            Err(failure),
            SolverTelemetry::new(),
            Duration::ZERO,
        )
        .with_attempts(attempts)
    }
}

/// Poison-tolerant lock: a panic while holding the sessions map cannot
/// take the supervisor down with it.
fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Swap count of a solved outcome (used to pick the best incumbent).
fn swap_count(outcome: &RouteOutcome) -> usize {
    outcome.routed().map_or(usize::MAX, |r| r.swap_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::{verify::verify, Circuit};

    fn fig3() -> (Circuit, arch::ConnectivityGraph) {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        (
            c,
            arch::ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]),
        )
    }

    /// A circuit whose encoding estimate dwarfs the admission limit.
    fn oversized() -> (Circuit, arch::ConnectivityGraph) {
        let mut c = Circuit::new(20);
        for k in 0..4_000 {
            c.cx(k % 20, (k + 1) % 20);
        }
        (c, arch::devices::tokyo())
    }

    #[test]
    fn healthy_route_is_optimal_on_the_first_attempt() {
        let (c, g) = fig3();
        let supervisor = RouteSupervisor::new();
        let out = supervisor
            .route("nl-satmap", &RouteRequest::new(&c, &g))
            .expect("known");
        assert!(out.solved());
        assert_eq!(out.quality(), RouteQuality::Optimal);
        assert_eq!(out.attempts(), 1);
        assert_eq!(out.routed().expect("solved").swap_count(), 1);
    }

    #[test]
    fn oversized_budgeted_request_degrades_to_the_fallback() {
        let (c, g) = oversized();
        let supervisor = RouteSupervisor::new();
        let out = supervisor
            .route(
                "nl-satmap",
                &RouteRequest::new(&c, &g).with_budget(Duration::from_secs(2)),
            )
            .expect("known");
        // Shed before encoding, answered by the heuristic fallback.
        assert!(out.solved());
        assert_eq!(out.quality(), RouteQuality::Degraded);
        assert!(!out.quality().is_proven());
        assert_eq!(out.diagnostic("degraded_from"), Some("nl-satmap"));
        verify(&c, &g, out.routed().expect("solved")).expect("fallback verifies");
    }

    #[test]
    fn oversized_request_without_fallback_is_typed_overloaded() {
        let (c, g) = oversized();
        let supervisor = RouteSupervisor::with_policy(RoutePolicy {
            fallback: None,
            ..RoutePolicy::default()
        });
        let out = supervisor
            .route(
                "nl-satmap",
                &RouteRequest::new(&c, &g).with_budget(Duration::from_secs(2)),
            )
            .expect("known");
        assert!(matches!(out.error(), Some(RouteError::Overloaded(_))));
        assert_eq!(out.attempts(), 1);
    }

    #[test]
    fn unbudgeted_oversized_request_is_admitted() {
        let (c, g) = oversized();
        let supervisor = RouteSupervisor::new();
        // No budget → admission control stands aside (matching the
        // routers' own guards). The request itself is well-formed.
        assert!(supervisor
            .admit("nl-satmap", &RouteRequest::new(&c, &g))
            .is_ok());
        // Heuristic routers are never shed, budget or not.
        assert!(supervisor
            .admit(
                "sabre",
                &RouteRequest::new(&c, &g).with_budget(Duration::from_secs(1)),
            )
            .is_ok());
    }

    #[test]
    fn exhausted_ladder_degrades_with_attempt_accounting() {
        // A zero budget fails every escalated attempt (0 × anything = 0),
        // so the ladder must run all attempts, then hand the request to
        // the unbudgeted fallback heuristic.
        let mut c = Circuit::new(8);
        for i in 0..7 {
            c.cx(i, i + 1);
            c.cx(0, 7 - i);
        }
        let g = arch::devices::tokyo();
        let supervisor = RouteSupervisor::with_policy(RoutePolicy {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..RoutePolicy::default()
        });
        let out = supervisor
            .route(
                "nl-satmap",
                &RouteRequest::new(&c, &g).with_budget(Duration::ZERO),
            )
            .expect("known");
        assert!(out.solved(), "fallback must deliver");
        assert_eq!(out.quality(), RouteQuality::Degraded);
        assert_eq!(out.attempts(), 2);
        assert_eq!(out.diagnostic("degraded_from"), Some("nl-satmap"));
        let reason = out.diagnostic("degraded_reason").expect("stamped");
        assert!(reason.contains("budget"), "{reason}");
        verify(&c, &g, out.routed().expect("solved")).expect("verifies");
    }

    #[test]
    fn unsatisfiable_verdicts_are_not_retried() {
        // swaps_per_gap 0 clamps to 1... instead use a disconnected pair
        // on a connected graph? Unsatisfiable is hard to reach for SATMAP
        // (deepening completes); InvalidRequest is the other immediate
        // verdict: more qubits than the device.
        let c = Circuit::new(25);
        let g = arch::devices::tokyo();
        let supervisor = RouteSupervisor::new();
        let out = supervisor
            .route("nl-satmap", &RouteRequest::new(&c, &g))
            .expect("known");
        assert!(matches!(out.error(), Some(RouteError::InvalidRequest(_))));
        assert_eq!(out.attempts(), 1, "no retry for deterministic verdicts");
    }

    #[test]
    fn fired_abort_handle_returns_cancelled_without_fallback() {
        let (c, g) = fig3();
        let supervisor = RouteSupervisor::new();
        // Cancel before the first attempt: no solver work, no fallback.
        let (budget, token) = ResourceBudget::unlimited().cancellable();
        token.cancel();
        let request = RouteRequest::new(&c, &g)
            .with_budget(budget)
            .with_request_id(11);
        let out = supervisor.route("nl-satmap", &request).expect("known");
        assert_eq!(out.error(), Some(&RouteError::Cancelled));
        assert_eq!(out.attempts(), 1);
        assert_eq!(out.telemetry().request_id, Some(11));
        // A cancel firing mid-ladder re-types the budget expiry instead of
        // degrading to the heuristic fallback.
        let (budget, token) = ResourceBudget::with_time(Duration::ZERO).cancellable();
        token.cancel();
        let out = supervisor
            .route("nl-satmap", &RouteRequest::new(&c, &g).with_budget(budget))
            .expect("known");
        assert_eq!(out.error(), Some(&RouteError::Cancelled));
        assert!(
            !out.solved(),
            "aborted requests must not burn fallback work"
        );
    }

    #[test]
    fn planned_width_multiplies_the_admission_footprint() {
        // Admission prices the whole worker plan, not just one clone of
        // the instance: the same circuit that fits serially is shed when
        // an explicit width-4 portfolio would quadruple the footprint.
        let (c, g) = fig3();
        let estimate = satmap::encoding_estimate(&c, &g, 1);
        let supervisor = RouteSupervisor::with_policy(RoutePolicy {
            admission_limit: estimate * 2,
            ..RoutePolicy::default()
        });
        let serial = RouteRequest::new(&c, &g).with_budget(Duration::from_secs(1));
        assert!(supervisor.admit("nl-satmap", &serial).is_ok());
        let wide = serial
            .clone()
            .with_parallelism(circuit::Parallelism::Width(4));
        assert!(matches!(
            supervisor.admit("nl-satmap", &wide),
            Err(RouteError::Overloaded(_))
        ));
    }

    #[test]
    fn serial_retries_escalate_to_the_auto_plan() {
        let (c, g) = fig3();
        let base_time = Some(Duration::from_secs(1));
        let base = RouteRequest::new(&c, &g).with_budget(Duration::from_secs(1));
        let supervisor = RouteSupervisor::new();
        let first = supervisor.escalated_request(&base, base_time, 1);
        assert_eq!(first.parallelism(), circuit::Parallelism::Serial);
        let retry = supervisor.escalated_request(&base, base_time, 2);
        assert_eq!(
            retry.parallelism(),
            circuit::Parallelism::Auto,
            "a failed serial attempt frees the dispatcher's hand"
        );
        // An explicit width is the caller's call — never overridden.
        let pinned = base
            .clone()
            .with_parallelism(circuit::Parallelism::Width(2));
        let retry = supervisor.escalated_request(&pinned, base_time, 2);
        assert_eq!(retry.parallelism(), circuit::Parallelism::Width(2));
        // And the knob can be turned off.
        let fixed = RouteSupervisor::with_policy(RoutePolicy {
            escalate_plan: false,
            ..RoutePolicy::default()
        });
        let retry = fixed.escalated_request(&base, base_time, 2);
        assert_eq!(retry.parallelism(), circuit::Parallelism::Serial);
    }

    #[test]
    fn heuristic_routers_ride_the_ladder_untouched() {
        let (c, g) = fig3();
        let supervisor = RouteSupervisor::new();
        let out = supervisor
            .route("sabre", &RouteRequest::new(&c, &g))
            .expect("known");
        assert!(out.solved());
        assert_eq!(out.quality(), RouteQuality::Optimal);
        assert_eq!(out.attempts(), 1);
    }
}

//! Property tests for the warm-start machinery: a cache hit must replay
//! the cold answer exactly, and a warm-started re-solve must land on the
//! same optimal cost as a cold solve — across random small circuits and
//! one-gate mutations of them.

use circuit::{Circuit, Parallelism, RouteRequest, Router, SearchStrategy};
use proptest::prelude::*;
use routers::RouteCache;
use satmap::{SatMap, SatMapConfig};
use std::time::Duration;

/// A small circuit from a proptest-drawn gate list, clamped onto `n`
/// qubits (mirrors the clamp-lit idiom of the maxsat strategy proptests:
/// arbitrary integers in, always-valid structures out).
fn build_circuit(n: usize, gates: &[(u8, u8)]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(a, b) in gates {
        let a = a as usize % n;
        let mut b = b as usize % n;
        if a == b {
            b = (b + 1) % n;
        }
        c.cx(a, b);
    }
    c
}

fn line4() -> arch::ConnectivityGraph {
    arch::ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
}

fn swaps(outcome: &circuit::RouteOutcome) -> usize {
    outcome
        .routed()
        .expect("small instances solve")
        .swap_count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A cache hit replays the memoized outcome byte-for-byte where it
    /// matters: same solvedness, same swap count, same telemetry counters
    /// — only the `cache_hit` stamp differs.
    #[test]
    fn cache_hit_replays_the_cold_outcome(
        gates in prop::collection::vec((0u8..=255, 0u8..=255), 1..8),
    ) {
        let c = build_circuit(4, &gates);
        let g = line4();
        let cache = RouteCache::default();
        let request = RouteRequest::new(&c, &g);
        let cold = cache.route("nl-satmap", &request).expect("known name");
        let hit = cache.route("nl-satmap", &request).expect("known name");
        prop_assert!(cold.solved());
        prop_assert!(!cold.telemetry().cache_hit);
        prop_assert!(hit.telemetry().cache_hit);
        prop_assert_eq!(swaps(&hit), swaps(&cold));
        prop_assert_eq!(hit.telemetry().sat_calls, cold.telemetry().sat_calls);
        prop_assert_eq!(hit.telemetry().warm_start, cold.telemetry().warm_start);
    }

    /// Warm-starting from a prior session reaches the same optimal swap
    /// count a cold solve reaches, for both search strategies — the
    /// observable face of the conservative-extension argument.
    #[test]
    fn warm_resolve_matches_the_cold_optimum(
        gates in prop::collection::vec((0u8..=255, 0u8..=255), 1..8),
        core_guided in prop::bool::ANY,
    ) {
        let c = build_circuit(4, &gates);
        let g = line4();
        let strategy = if core_guided {
            SearchStrategy::CoreGuided
        } else {
            SearchStrategy::Linear
        };
        let router = SatMap::new(SatMapConfig::monolithic());
        let request = RouteRequest::new(&c, &g)
            .with_budget(Duration::from_secs(30))
            .with_strategy(strategy)
            .with_parallelism(Parallelism::Serial);
        let cold = router.route_request(&request);
        prop_assert!(cold.solved());

        let mut slot = None;
        let first = router.route_with_session(&request, &mut slot);
        let warm = router.route_with_session(&request, &mut slot);
        prop_assert!(!first.telemetry().warm_start);
        prop_assert!(warm.telemetry().warm_start);
        prop_assert!(warm.telemetry().reused_clauses > 0);
        prop_assert_eq!(swaps(&first), swaps(&cold));
        prop_assert_eq!(swaps(&warm), swaps(&cold));
    }

    /// Mutating one gate changes the fingerprint: the session slot
    /// re-encodes cold for the mutant and lands on the same optimum a
    /// fresh solve of the mutant finds; a second solve of the mutant then
    /// warm-starts and agrees again.
    #[test]
    fn one_gate_mutation_reencodes_then_warms_to_the_same_optimum(
        gates in prop::collection::vec((0u8..=255, 0u8..=255), 2..8),
        mutation in (0u8..=255, 0u8..=255),
    ) {
        let base = build_circuit(4, &gates);
        let mut mutated_gates = gates.clone();
        let last = mutated_gates.len() - 1;
        mutated_gates[last] = mutation;
        let mutant = build_circuit(4, &mutated_gates);
        let g = line4();
        let router = SatMap::new(SatMapConfig::monolithic());

        let mut slot = None;
        let _ = router.route_with_session(&RouteRequest::new(&base, &g), &mut slot);
        let request = RouteRequest::new(&mutant, &g);
        let fresh = router.route_request(&request);
        let via_slot = router.route_with_session(&request, &mut slot);
        prop_assert!(fresh.solved());
        // The drawn mutation can collide with the original gate (clamping
        // is modular), in which case the fingerprint — and so the warm
        // path — is legitimately reused.
        prop_assert_eq!(via_slot.telemetry().warm_start, mutant == base);
        prop_assert_eq!(swaps(&via_slot), swaps(&fresh));

        let warm = router.route_with_session(&request, &mut slot);
        prop_assert!(warm.telemetry().warm_start);
        prop_assert_eq!(swaps(&warm), swaps(&fresh));
    }
}

//! Chaos suite: seeded fault injection against the routing supervisor.
//!
//! Every scenario installs a deterministic [`FaultPlan`] (spurious
//! cancellations, artificial slowdowns, worker panics, dropped exchange
//! imports) under the supervisor's SAT stack and checks the soundness
//! contract end to end:
//!
//! * every request returns an outcome — solved or a typed failure, never a
//!   process panic;
//! * any outcome stamped `Optimal` or `WarmRetry` has exactly the
//!   fault-free cost (faults may slow the search or force retries, but a
//!   proven answer is never silently wrong);
//! * `Degraded` outcomes still verify as valid routings.
//!
//! Tests that install the global fault plan are serialized behind a mutex
//! and restore the previous plan on exit (even on assertion failure), so
//! they compose with the rest of the test binary.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use circuit::verify::verify;
use circuit::{Circuit, Parallelism, RouteQuality, RouteRequest};
use proptest::prelude::*;
use routers::{RoutePolicy, RouteSupervisor, RouterRegistry};
use sat::chaos::{install_plan, silence_panic_reports};
use sat::{ChaosBackend, DefaultBackend, FaultPlan, PortfolioBackend};

/// The supervised SAT stack with fault injection at the solver boundary.
type ChaosStack = PortfolioBackend<ChaosBackend<DefaultBackend>>;

/// Serializes every test that touches the process-global fault plan.
static PLAN_GUARD: Mutex<()> = Mutex::new(());

/// Restores the previously installed plan when dropped, so a failing
/// assertion cannot leak faults into unrelated tests.
struct PlanScope {
    prev: Option<FaultPlan>,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for PlanScope {
    fn drop(&mut self) {
        install_plan(self.prev.take());
    }
}

fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    let lock = PLAN_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    silence_panic_reports();
    let _scope = PlanScope {
        prev: install_plan(Some(plan)),
        _lock: lock,
    };
    f()
}

/// Policy tuned for test wall-clock: tight backoffs, the standard ladder.
fn test_policy() -> RoutePolicy {
    RoutePolicy {
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        ..RoutePolicy::default()
    }
}

fn chaos_supervisor() -> RouteSupervisor<ChaosStack> {
    RouteSupervisor::with_registry_and_policy(RouterRegistry::standard(), test_policy())
}

fn fig3() -> (Circuit, arch::ConnectivityGraph) {
    let mut c = Circuit::new(4);
    c.cx(0, 1);
    c.cx(0, 2);
    c.cx(3, 2);
    c.cx(0, 3);
    (
        c,
        arch::ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]),
    )
}

/// Fault-free optimal swap count (computed on the plain backend, no chaos
/// in the stack, before any plan is installed).
fn baseline_swaps(c: &Circuit, g: &arch::ConnectivityGraph) -> usize {
    let supervisor = RouteSupervisor::new();
    let out = supervisor
        .route("nl-satmap", &RouteRequest::new(c, g))
        .expect("known router");
    assert_eq!(
        out.quality(),
        RouteQuality::Optimal,
        "baseline must be fault-free optimal"
    );
    out.routed().expect("baseline solves").swap_count()
}

/// One seeded scenario: route under the installed faults and check the
/// soundness contract against the fault-free baseline.
fn run_scenario(
    c: &Circuit,
    g: &arch::ConnectivityGraph,
    baseline: usize,
    plan: FaultPlan,
    width: usize,
) {
    with_plan(plan, || {
        let supervisor = chaos_supervisor();
        let request = RouteRequest::new(c, g)
            .with_budget(Duration::from_secs(10))
            .with_parallelism(Parallelism::Width(width));
        let out = supervisor
            .route("nl-satmap", &request)
            .expect("known router");
        assert!(out.attempts() >= 1);
        match out.routed() {
            Some(routed) => {
                verify(c, g, routed).expect("chaos outcome verifies");
                match out.quality() {
                    RouteQuality::Optimal | RouteQuality::WarmRetry(_) => assert_eq!(
                        routed.swap_count(),
                        baseline,
                        "proven outcome must be cost-correct (quality {})",
                        out.quality()
                    ),
                    // Degraded answers may cost more — they say so.
                    RouteQuality::Degraded => {}
                }
            }
            // Typed failure: allowed (the enum is the contract); with the
            // sabre fallback configured it should be rare.
            None => assert!(out.error().is_some()),
        }
    });
}

#[test]
fn sixty_four_seeded_fault_scenarios_stay_sound() {
    let (fig, line) = fig3();
    let tokyo_minus = arch::devices::tokyo_minus();
    let rand4 = circuit::generators::random_local(4, 5, 3, 0.1, 11);
    let linear4 = arch::devices::linear(4);
    let rand5 = circuit::generators::random_local(5, 7, 3, 0.1, 23);
    let fixtures: Vec<(&Circuit, &arch::ConnectivityGraph)> = vec![
        (&fig, &line),
        (&fig, &tokyo_minus),
        (&rand4, &linear4),
        (&rand5, &tokyo_minus),
    ];
    let mut scenarios = 0u64;
    for (c, g) in fixtures {
        let baseline = baseline_swaps(c, g);
        for i in 0..16u64 {
            scenarios += 1;
            let seed = 0x00C0_FFEE ^ scenarios.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let plan = FaultPlan::seeded(seed)
                .cancel_prob(0.35)
                .panic_prob(0.20)
                .delay_with(0.25, Duration::from_micros(200))
                .drop_import_prob(0.30);
            run_scenario(c, g, baseline, plan, 1 + (i % 3) as usize);
        }
    }
    assert!(scenarios >= 64, "acceptance floor: got {scenarios}");
}

#[test]
fn injected_worker_panic_is_retired_and_telemetered() {
    let (c, g) = fig3();
    let baseline = baseline_swaps(&c, &g);
    // With the default base config, diversified worker 1's solver seed is
    // the golden-ratio constant × 1 — targeting it panics exactly that
    // portfolio peer on every solve call.
    let plan = FaultPlan::seeded(7).panic_tag(0x9E37_79B9_7F4A_7C15);
    with_plan(plan, || {
        let supervisor = chaos_supervisor();
        let request = RouteRequest::new(&c, &g)
            .with_budget(Duration::from_secs(10))
            .with_parallelism(Parallelism::Width(4));
        let out = supervisor
            .route("nl-satmap", &request)
            .expect("known router");
        let routed = out.routed().expect("race completes with survivors");
        verify(&c, &g, routed).expect("verifies");
        assert_eq!(routed.swap_count(), baseline, "survivors stay cost-correct");
        assert!(
            out.telemetry().worker_panics >= 1,
            "the retired racer must be telemetered: {}",
            out.telemetry()
        );
    });
}

#[test]
fn certain_cancellation_still_returns_a_usable_outcome() {
    // Every SAT call is cancelled: no attempt can ever prove anything, so
    // the ladder must exhaust and degrade to the heuristic fallback.
    let (c, g) = fig3();
    let plan = FaultPlan::seeded(3).cancel_prob(1.0);
    with_plan(plan, || {
        let supervisor = chaos_supervisor();
        let request = RouteRequest::new(&c, &g).with_budget(Duration::from_secs(2));
        let out = supervisor
            .route("nl-satmap", &request)
            .expect("known router");
        assert!(out.solved(), "fallback must deliver");
        assert_eq!(out.quality(), RouteQuality::Degraded);
        assert_eq!(out.attempts(), test_policy().max_attempts);
        verify(&c, &g, out.routed().expect("solved")).expect("verifies");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random circuits × random seeded fault plans: an outcome always
    /// comes back, no panic escapes, and proven outcomes are cost-correct.
    #[test]
    fn random_circuits_survive_random_faults(
        qubits in 4usize..=5,
        gates in 3usize..=7,
        circuit_seed in 0u64..1_000,
        fault_seed in 0u64..u64::MAX,
        cancel_pct in 0u32..60,
        panic_pct in 0u32..40,
        drop_pct in 0u32..50,
        width in 1usize..=3,
    ) {
        let c = circuit::generators::random_local(qubits, gates, 3, 0.1, circuit_seed);
        let g = arch::devices::linear(qubits);
        let baseline = baseline_swaps(&c, &g);
        let plan = FaultPlan::seeded(fault_seed)
            .cancel_prob(f64::from(cancel_pct) / 100.0)
            .panic_prob(f64::from(panic_pct) / 100.0)
            .delay_with(0.2, Duration::from_micros(100))
            .drop_import_prob(f64::from(drop_pct) / 100.0);
        run_scenario(&c, &g, baseline, plan, width);
    }
}

//! Instance-feature dispatch: right-sizing the solver portfolio per call.
//!
//! The bench data that motivated this module is unambiguous: the parallel
//! machinery *loses* on easy instances (a width-4 portfolio is ~1.4x
//! slower than serial on fig3, sharing trails no-sharing, and the strategy
//! race trails plain linear search). Solver effort should be spent where
//! the instance is hard — so instead of resolving `Parallelism::Auto` and
//! `Strategy::Race` with fixed rules, the engine computes cheap
//! [`InstanceFeatures`] and turns them into a concrete [`DispatchPlan`]:
//! how many linear-search workers, how many core-guided workers, and
//! whether they share clauses.
//!
//! The tiers (measured in variables + hard clauses, or the O(1)
//! `encoding_estimate` before an encoding exists):
//!
//! * **small** (below [`SMALL_INSTANCE`], the same gate as
//!   [`sat::SharingConfig::min_instance_size`]) — one linear worker, no
//!   sharing, no race: the per-call overhead of threads and exchanges
//!   exceeds the whole solve time.
//! * **medium** (below [`MEDIUM_INSTANCE`]) — at most two workers; a race
//!   runs one linear against one core-guided worker with sharing and
//!   bound exchange.
//! * **hard** — the full [`sat::auto_width`] worker budget, split across
//!   a heterogeneous linear + core-guided portfolio.
//!
//! An explicit width ([`WidthHint::Forced`], from `Parallelism::Serial`
//! or `Parallelism::Width`) is always honored — the dispatcher only
//! decides the strategy mix and sharing for it.

use crate::strategy::Strategy;
use crate::wcnf::WcnfInstance;

/// Hardness (variables + hard clauses) below which a request is *small*:
/// solved inline by one linear worker with sharing off. Deliberately the
/// same constant as the portfolio's sharing gate
/// ([`sat::DEFAULT_MIN_INSTANCE_SIZE`]) so the two layers agree on what
/// "too small to parallelize" means.
pub const SMALL_INSTANCE: u64 = sat::DEFAULT_MIN_INSTANCE_SIZE as u64;

/// Hardness below which a request is *medium*: at most two workers.
pub const MEDIUM_INSTANCE: u64 = 4 * SMALL_INSTANCE;

/// Diversification seed of the core-guided worker group in a heterogeneous
/// race (the linear group keeps seed 0, the historical base
/// configuration). A stable constant so fault-injection tests can target
/// exactly the core-guided group via [`sat::FaultPlan`]'s `panic_tag`.
pub const CORE_ROLE_SEED: u64 = 0xC0DE_5EED_0000_0001;

/// Cheap, O(instance-header) features the dispatcher sizes a plan from.
///
/// Either side can be absent: before an encoding exists only the device
/// size and the O(1) encoding estimate are known; once the WCNF is built,
/// [`InstanceFeatures::of`] reads the exact counts.
///
/// # Examples
///
/// ```
/// use maxsat::{InstanceFeatures, WcnfInstance};
/// let mut inst = WcnfInstance::new();
/// let a = inst.new_var().positive();
/// inst.add_hard([a]);
/// inst.add_soft(3, [!a]);
/// let f = InstanceFeatures::of(&inst);
/// assert_eq!(f.vars, 1);
/// assert_eq!(f.hard_clauses, 1);
/// assert_eq!(f.weighted_softs, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstanceFeatures {
    /// Number of variables in the instance.
    pub vars: usize,
    /// Number of hard clauses.
    pub hard_clauses: usize,
    /// Number of soft clauses.
    pub soft_clauses: usize,
    /// Soft clauses whose weight differs from 1 (a weighted objective —
    /// the families where core-guided search pays off most).
    pub weighted_softs: usize,
    /// Physical qubits of the target device, when routing (0 otherwise).
    pub device_qubits: usize,
    /// O(1) upper-bound proxy for the encoding size
    /// (`satmap::encoding_estimate`), used as the hardness signal before
    /// any encoding is built.
    pub encoding_estimate: usize,
}

impl InstanceFeatures {
    /// Reads the exact counts from a built WCNF instance.
    pub fn of(instance: &WcnfInstance) -> Self {
        InstanceFeatures {
            vars: instance.num_vars(),
            hard_clauses: instance.hard_clauses().len(),
            soft_clauses: instance.soft_clauses().len(),
            weighted_softs: instance
                .soft_clauses()
                .iter()
                .filter(|s| s.weight != 1)
                .count(),
            device_qubits: 0,
            encoding_estimate: 0,
        }
    }

    /// Returns a copy annotated with the target device size.
    pub fn with_device(mut self, qubits: usize) -> Self {
        self.device_qubits = qubits;
        self
    }

    /// Returns a copy annotated with the O(1) encoding-size estimate.
    pub fn with_encoding_estimate(mut self, estimate: usize) -> Self {
        self.encoding_estimate = estimate;
        self
    }

    /// The scalar hardness signal the tiers cut on: variables + hard
    /// clauses when the instance is built (the portfolio's own
    /// instance-size measure), falling back to the encoding estimate when
    /// only pre-encode features are known.
    pub fn hardness(&self) -> u64 {
        let built = self.vars + self.hard_clauses;
        if built > 0 {
            built as u64
        } else {
            self.encoding_estimate as u64
        }
    }
}

/// How the caller constrained the worker count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WidthHint {
    /// No constraint: the dispatcher sizes the plan from the features
    /// (`Parallelism::Auto`).
    Auto,
    /// An explicit total worker count (`Parallelism::Serial` is
    /// `Forced(1)`, `Parallelism::Width(n)` is `Forced(n)`).
    Forced(usize),
}

/// A concrete worker plan: how many workers run each strategy, and
/// whether they cooperate through clause sharing. Produced by [`plan`]
/// and carried into the engine via
/// [`crate::SolveOptions::with_dispatch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchPlan {
    /// Workers running the model-improving linear SAT-UNSAT search.
    pub linear_width: usize,
    /// Workers running the OLL core-guided search.
    pub core_width: usize,
    /// Whether the workers exchange learned clauses (and, across strategy
    /// groups, bounds).
    pub sharing: bool,
    /// The hardness signal the plan was sized from (recorded for
    /// telemetry rows, so per-family bias mining has data).
    pub hardness: u64,
}

impl DispatchPlan {
    /// Total worker count across both strategy groups.
    pub fn total_width(&self) -> usize {
        self.linear_width + self.core_width
    }

    /// Stable label of the strategy mix for telemetry rows.
    pub fn mix_label(&self) -> &'static str {
        match (self.linear_width, self.core_width) {
            (_, 0) => "linear",
            (0, _) => "core-guided",
            _ => "linear+core-guided",
        }
    }
}

impl Default for DispatchPlan {
    /// The conservative plan: one linear worker, no sharing.
    fn default() -> Self {
        DispatchPlan {
            linear_width: 1,
            core_width: 0,
            sharing: false,
            hardness: 0,
        }
    }
}

/// True when the features say the weight-stratified core-guided search is
/// the better single-strategy bet: a *weighted* objective, with at least
/// as many weighted softs as unweighted ones. On such instances the
/// linear search must build (and repeatedly extend) a generalized
/// totalizer over every weighted soft — the dominant cost on the fidelity
/// objective (measured ~7x slower than stratified core-guided on
/// `q6_noise/fidelity`) — while core-guided relaxations stay
/// core-local. Unweighted objectives keep the linear default: models come
/// easily and the counting totalizer is cheap.
///
/// # Examples
///
/// ```
/// use maxsat::{dispatch, InstanceFeatures};
/// let weighted = InstanceFeatures { soft_clauses: 10, weighted_softs: 9, ..Default::default() };
/// assert!(dispatch::prefers_core(&weighted));
/// let unweighted = InstanceFeatures { soft_clauses: 10, weighted_softs: 0, ..Default::default() };
/// assert!(!dispatch::prefers_core(&unweighted));
/// ```
pub fn prefers_core(features: &InstanceFeatures) -> bool {
    features.weighted_softs > 0 && 2 * features.weighted_softs >= features.soft_clauses
}

/// Resolves features, the requested strategy, and the caller's width hint
/// into a concrete worker plan.
///
/// * `Auto` widths scale with hardness: 1 below [`SMALL_INSTANCE`], at
///   most 2 below [`MEDIUM_INSTANCE`], the machine-sized
///   [`sat::auto_width`] beyond; forced widths are honored as-is.
/// * Sharing turns on at [`SMALL_INSTANCE`] — the same gate the portfolio
///   applies internally, now decided once and recorded in the plan — and
///   is always on for a mixed plan, whose whole point is cross-strategy
///   cooperation.
/// * `Strategy::Race` on a small `Auto` request degenerates to a single
///   worker — linear, or core-guided when [`prefers_core`] says the
///   objective is weighted (the race overhead loses on small instances
///   either way, per the bench data); otherwise the width splits into a
///   heterogeneous linear + core-guided worker set, with the rounding
///   benefit going to the strategy [`prefers_core`] favors. A forced
///   width of 1 still races one worker per strategy — an explicit
///   race request always gets both strategies.
///
/// # Examples
///
/// ```
/// use maxsat::{dispatch, InstanceFeatures, Strategy, WidthHint};
/// let small = InstanceFeatures { vars: 100, hard_clauses: 50, ..Default::default() };
/// let p = dispatch::plan(&small, Strategy::Race, WidthHint::Auto);
/// assert_eq!((p.linear_width, p.core_width), (1, 0));
/// assert!(!p.sharing);
/// let forced = dispatch::plan(&small, Strategy::Race, WidthHint::Forced(4));
/// assert_eq!((forced.linear_width, forced.core_width), (2, 2));
/// ```
pub fn plan(features: &InstanceFeatures, strategy: Strategy, hint: WidthHint) -> DispatchPlan {
    let hardness = features.hardness();
    let auto_total = if hardness < SMALL_INSTANCE {
        1
    } else if hardness < MEDIUM_INSTANCE {
        sat::auto_width().min(2)
    } else {
        sat::auto_width()
    };
    let total = match hint {
        WidthHint::Forced(n) => n.max(1),
        WidthHint::Auto => auto_total,
    };
    let (linear_width, core_width) = match strategy {
        Strategy::LinearSatUnsat => (total, 0),
        Strategy::CoreGuided => (0, total),
        Strategy::Race => {
            if hint == WidthHint::Auto && hardness < SMALL_INSTANCE {
                // The race overhead loses on small instances; a single
                // worker of the feature-preferred strategy is the
                // measured winner there.
                if prefers_core(features) {
                    (0, total)
                } else {
                    (total, 0)
                }
            } else if prefers_core(features) {
                // Weighted objective: the core-guided group gets the
                // rounding benefit of an odd width.
                ((total / 2).max(1), total.div_ceil(2))
            } else {
                (total.div_ceil(2), (total / 2).max(1))
            }
        }
    };
    // Sharing pays its overhead back above the small-instance gate; a
    // *mixed* plan additionally always shares — the cross-strategy
    // exchange is the point of racing heterogeneous groups (and the
    // historical race behaviour), whatever the instance size.
    let sharing = hardness >= SMALL_INSTANCE || (linear_width > 0 && core_width > 0);
    DispatchPlan {
        linear_width,
        core_width,
        sharing,
        hardness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(hardness: u64) -> InstanceFeatures {
        InstanceFeatures {
            vars: hardness as usize,
            ..Default::default()
        }
    }

    #[test]
    fn small_auto_requests_resolve_to_one_linear_worker_without_sharing() {
        for strategy in [
            Strategy::LinearSatUnsat,
            Strategy::CoreGuided,
            Strategy::Race,
        ] {
            let p = plan(&features(SMALL_INSTANCE - 1), strategy, WidthHint::Auto);
            assert_eq!(p.total_width(), 1, "{strategy:?}");
            assert!(!p.sharing, "{strategy:?}");
        }
        // The race specifically degenerates to linear — no second thread.
        let p = plan(&features(10), Strategy::Race, WidthHint::Auto);
        assert_eq!((p.linear_width, p.core_width), (1, 0));
        assert_eq!(p.mix_label(), "linear");
    }

    #[test]
    fn hardness_scales_auto_width_through_the_tiers() {
        let medium = plan(
            &features(SMALL_INSTANCE),
            Strategy::LinearSatUnsat,
            WidthHint::Auto,
        );
        assert!(medium.total_width() <= 2);
        assert!(medium.sharing);
        let hard = plan(
            &features(MEDIUM_INSTANCE),
            Strategy::LinearSatUnsat,
            WidthHint::Auto,
        );
        assert_eq!(hard.total_width(), sat::auto_width());
        assert!(hard.total_width() >= medium.total_width());
    }

    #[test]
    fn forced_widths_are_honored_and_split_across_the_race() {
        // An explicit width is never second-guessed, only mixed.
        let p = plan(&features(10), Strategy::Race, WidthHint::Forced(3));
        assert_eq!((p.linear_width, p.core_width), (2, 1));
        assert_eq!(p.total_width(), 3);
        assert_eq!(p.mix_label(), "linear+core-guided");
        assert!(p.sharing, "mixed plans always share, whatever the size");
        // A forced serial race still runs one worker per strategy (the
        // historical race shape): the caller explicitly asked to race.
        let serial = plan(&features(10), Strategy::Race, WidthHint::Forced(1));
        assert_eq!((serial.linear_width, serial.core_width), (1, 1));
        // Non-race strategies take the width whole.
        let linear = plan(
            &features(10),
            Strategy::LinearSatUnsat,
            WidthHint::Forced(4),
        );
        assert_eq!((linear.linear_width, linear.core_width), (4, 0));
        let core = plan(&features(10), Strategy::CoreGuided, WidthHint::Forced(4));
        assert_eq!((core.linear_width, core.core_width), (0, 4));
        assert_eq!(core.mix_label(), "core-guided");
        // Width 0 clamps to 1 like everywhere else in the stack.
        assert_eq!(
            plan(
                &features(10),
                Strategy::LinearSatUnsat,
                WidthHint::Forced(0)
            )
            .total_width(),
            1
        );
    }

    #[test]
    fn hardness_falls_back_to_the_encoding_estimate_before_encoding() {
        let pre_encode = InstanceFeatures::default()
            .with_device(20)
            .with_encoding_estimate(MEDIUM_INSTANCE as usize);
        assert_eq!(pre_encode.hardness(), MEDIUM_INSTANCE);
        let built = features(42).with_encoding_estimate(MEDIUM_INSTANCE as usize);
        assert_eq!(built.hardness(), 42, "exact counts win once built");
    }

    #[test]
    fn features_of_counts_weighted_softs() {
        let mut inst = WcnfInstance::new();
        let a = inst.new_var().positive();
        let b = inst.new_var().positive();
        inst.add_hard([a, b]);
        inst.add_soft(1, [!a]);
        inst.add_soft(5, [!b]);
        let f = InstanceFeatures::of(&inst);
        assert_eq!(f.vars, 2);
        assert_eq!(f.hard_clauses, 1);
        assert_eq!(f.soft_clauses, 2);
        assert_eq!(f.weighted_softs, 1);
        assert_eq!(f.hardness(), 3);
    }

    #[test]
    fn prefers_core_tracks_the_weighted_soft_share() {
        let unweighted = InstanceFeatures {
            soft_clauses: 10,
            weighted_softs: 0,
            ..Default::default()
        };
        assert!(!prefers_core(&unweighted));
        let mostly_weighted = InstanceFeatures {
            soft_clauses: 10,
            weighted_softs: 5,
            ..Default::default()
        };
        assert!(prefers_core(&mostly_weighted), "half weighted is enough");
        let barely_weighted = InstanceFeatures {
            soft_clauses: 10,
            weighted_softs: 4,
            ..Default::default()
        };
        assert!(!prefers_core(&barely_weighted));
        assert!(!prefers_core(&InstanceFeatures::default()), "no softs");
    }

    #[test]
    fn weighted_races_bias_the_core_guided_group() {
        let weighted = InstanceFeatures {
            vars: 10,
            soft_clauses: 6,
            weighted_softs: 6,
            ..Default::default()
        };
        // Small Auto race degenerates to a single core-guided worker.
        let small = plan(&weighted, Strategy::Race, WidthHint::Auto);
        assert_eq!((small.linear_width, small.core_width), (0, 1));
        assert_eq!(small.mix_label(), "core-guided");
        // An odd forced width gives the core-guided group the extra
        // worker; the unweighted split is mirrored.
        let odd = plan(&weighted, Strategy::Race, WidthHint::Forced(3));
        assert_eq!((odd.linear_width, odd.core_width), (1, 2));
        let serial = plan(&weighted, Strategy::Race, WidthHint::Forced(1));
        assert_eq!(
            (serial.linear_width, serial.core_width),
            (1, 1),
            "an explicit race always gets both strategies"
        );
    }

    #[test]
    fn plan_is_deterministic_and_recorded() {
        let f = features(SMALL_INSTANCE + 7);
        let a = plan(&f, Strategy::Race, WidthHint::Forced(4));
        let b = plan(&f, Strategy::Race, WidthHint::Forced(4));
        assert_eq!(a, b);
        assert_eq!(a.hardness, SMALL_INSTANCE + 7);
    }
}

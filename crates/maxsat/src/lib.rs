//! An anytime weighted partial MaxSAT solver.
//!
//! This crate plays the role of **Open-WBO-Inc-MCS** in the SATMAP
//! (MICRO 2022) reproduction: a linear SAT-UNSAT search on top of the
//! [`sat`] CDCL solver that returns the best model found so far when
//! interrupted — the property the paper exploits to handle large circuits.
//!
//! * [`WcnfInstance`] — weighted partial MaxSAT instances plus WCNF I/O,
//! * [`encodings`] — at-most-one / exactly-one and (generalized) totalizer
//!   CNF encodings shared with the QMR encoders,
//! * [`solve`] — the anytime optimization loop.
//!
//! The engine is generic over [`sat::SatBackend`] and never names the
//! concrete solver: [`solve`] uses the workspace default backend, while
//! [`solve_with_backend`] accepts any implementation. Budgets are the
//! shared deadline-based [`ResourceBudget`]; the solver effort of every
//! call is reported in [`MaxSatOutcome::telemetry`].
//!
//! # Examples
//!
//! ```
//! use maxsat::{WcnfInstance, solve, MaxSatStatus};
//! use sat::ResourceBudget;
//!
//! let mut inst = WcnfInstance::new();
//! let a = inst.new_var().positive();
//! inst.add_hard([a]);
//! inst.add_soft(3, [!a]);
//! let out = solve(&inst, ResourceBudget::unlimited());
//! assert_eq!(out.status, MaxSatStatus::Optimal);
//! assert_eq!(out.cost, Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod encodings;
mod session;
mod solve;
pub mod strategy;
mod wcnf;

pub use dispatch::{DispatchPlan, InstanceFeatures, WidthHint};
pub use sat::{ResourceBudget, SolverTelemetry};
pub use session::MaxSatSession;
pub use solve::{
    solve, solve_with_backend, solve_with_options, solve_with_session, MaxSatOutcome, MaxSatStatus,
    SolveOptions,
};
pub use strategy::{
    CoreGuided, LinearSatUnsat, RaceBounds, SearchContext, SearchStrategy, Strategy,
};
pub use wcnf::{SoftClause, WcnfInstance};

//! CNF encodings of cardinality and pseudo-Boolean constraints.
//!
//! Provides the building blocks the QMR encodings need:
//!
//! * *at-most-one* / *exactly-one* over a set of literals (pairwise for
//!   small sets, the sequential "ladder" encoding for larger ones) — the
//!   "standard only-one encoding \[13\]" the paper credits for shrinking
//!   Hard A and Hard C;
//! * the **(generalized) totalizer**, used by the linear SAT-UNSAT MaxSAT
//!   loop to bound the total weight of falsified soft clauses.

use sat::Lit;

// The sink trait lives in `sat::backend` so every `SatBackend` (not just
// the bundled solver) can receive encodings; re-exported here because this
// module is where encoding consumers import it from.
pub use sat::backend::ClauseSink;

impl ClauseSink for crate::WcnfInstance {
    fn new_var(&mut self) -> sat::Var {
        crate::WcnfInstance::new_var(self)
    }

    fn emit(&mut self, lits: &[Lit]) {
        self.add_hard(lits.iter().copied());
    }
}

/// Threshold below which the pairwise at-most-one encoding is used.
const PAIRWISE_LIMIT: usize = 6;

/// Encodes *at most one* of `lits` is true.
///
/// Uses the quadratic pairwise encoding for up to six
/// literals and the sequential (ladder) encoding beyond, which needs
/// `n - 1` auxiliary variables and `3n - 4` clauses.
pub fn at_most_one<S: ClauseSink>(sink: &mut S, lits: &[Lit]) {
    if lits.len() <= 1 {
        return;
    }
    if lits.len() <= PAIRWISE_LIMIT {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                sink.emit(&[!lits[i], !lits[j]]);
            }
        }
        return;
    }
    // Sequential encoding: s_i == "one of lits[..=i] is true".
    let mut prev = {
        let s0 = sink.new_var().positive();
        sink.emit(&[!lits[0], s0]);
        s0
    };
    for (i, &l) in lits.iter().enumerate().skip(1) {
        // l → ¬prev (no earlier literal was true).
        sink.emit(&[!l, !prev]);
        if i + 1 < lits.len() {
            let s = sink.new_var().positive();
            sink.emit(&[!l, s]); // l → s
            sink.emit(&[!prev, s]); // prev → s
            prev = s;
        }
    }
}

/// Encodes *at least one* of `lits` is true (a single clause).
pub fn at_least_one<S: ClauseSink>(sink: &mut S, lits: &[Lit]) {
    sink.emit(lits);
}

/// Encodes *exactly one* of `lits` is true.
pub fn exactly_one<S: ClauseSink>(sink: &mut S, lits: &[Lit]) {
    at_least_one(sink, lits);
    at_most_one(sink, lits);
}

/// A generalized totalizer over weighted input literals.
///
/// After [`Totalizer::build`], [`Totalizer::outputs`] maps each attainable
/// weight `w` to an output literal that is *forced true* whenever the true
/// inputs weigh at least `w`. Asserting the negation of all outputs above a
/// bound `k` therefore enforces `Σ weight(true inputs) ≤ k` — the mechanism
/// behind the linear SAT-UNSAT MaxSAT search.
///
/// With all weights 1 this degenerates to the classic totalizer.
#[derive(Debug, Clone)]
pub struct Totalizer {
    /// Sorted `(weight, output literal)` pairs for every attainable sum.
    outputs: Vec<(u64, Lit)>,
}

impl Totalizer {
    /// Builds the totalizer circuit over `(lit, weight)` inputs, emitting
    /// clauses into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if any weight is zero.
    pub fn build<S: ClauseSink>(sink: &mut S, inputs: &[(Lit, u64)]) -> Self {
        assert!(
            inputs.iter().all(|&(_, w)| w > 0),
            "totalizer weights must be positive"
        );
        if inputs.is_empty() {
            return Totalizer {
                outputs: Vec::new(),
            };
        }
        let mut nodes: Vec<Vec<(u64, Lit)>> = inputs.iter().map(|&(l, w)| vec![(w, l)]).collect();
        // Balanced bottom-up merge.
        while nodes.len() > 1 {
            let mut next = Vec::with_capacity(nodes.len().div_ceil(2));
            let mut it = nodes.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(Self::merge(sink, &a, &b)),
                    None => next.push(a),
                }
            }
            nodes = next;
        }
        let mut outputs = nodes.pop().expect("nonempty input");
        outputs.sort_unstable_by_key(|&(w, _)| w);
        // Ordering clauses: reaching a larger sum implies reaching smaller ones.
        for pair in outputs.windows(2) {
            let (_, lo) = pair[0];
            let (_, hi) = pair[1];
            sink.emit(&[!hi, lo]);
        }
        Totalizer { outputs }
    }

    fn merge<S: ClauseSink>(sink: &mut S, a: &[(u64, Lit)], b: &[(u64, Lit)]) -> Vec<(u64, Lit)> {
        use std::collections::BTreeMap;
        let mut sums: BTreeMap<u64, Lit> = BTreeMap::new();
        let fresh = |sink: &mut S, sums: &mut BTreeMap<u64, Lit>, w: u64| -> Lit {
            *sums.entry(w).or_insert_with(|| sink.new_var().positive())
        };
        // Individual propagation: child sum alone reaches w.
        for &(w, l) in a.iter().chain(b.iter()) {
            let o = fresh(sink, &mut sums, w);
            sink.emit(&[!l, o]);
        }
        // Combined propagation: wa from a plus wb from b.
        for &(wa, la) in a {
            for &(wb, lb) in b {
                let o = fresh(sink, &mut sums, wa + wb);
                sink.emit(&[!la, !lb, o]);
            }
        }
        sums.into_iter().collect()
    }

    /// Sorted `(weight, output)` pairs of attainable sums.
    pub fn outputs(&self) -> &[(u64, Lit)] {
        &self.outputs
    }

    /// The output literal forced true whenever the true inputs weigh at
    /// least `weight`, if that sum is attainable — how the core-guided
    /// strategy walks a relaxation totalizer's bound upward one output at
    /// a time.
    pub fn output_for(&self, weight: u64) -> Option<Lit> {
        self.outputs
            .iter()
            .find(|&&(w, _)| w == weight)
            .map(|&(_, l)| l)
    }

    /// Returns clauses (as unit literals to assert) enforcing
    /// `Σ weight(true inputs) ≤ bound`.
    pub fn assert_at_most(&self, bound: u64) -> Vec<Lit> {
        self.outputs
            .iter()
            .filter(|&&(w, _)| w > bound)
            .map(|&(_, l)| !l)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::{DefaultBackend, SolveResult};

    fn new_lits(s: &mut DefaultBackend, n: usize) -> Vec<Lit> {
        (0..n).map(|_| ClauseSink::new_var(s).positive()).collect()
    }

    /// Exhaustively checks that the encoding admits exactly the assignments
    /// with `count` in `allowed`.
    fn check_counts(
        n: usize,
        encode: impl Fn(&mut DefaultBackend, &[Lit]),
        allowed: impl Fn(u32) -> bool,
    ) {
        for mask in 0u32..(1 << n) {
            let mut s = DefaultBackend::default();
            let lits = new_lits(&mut s, n);
            encode(&mut s, &lits);
            for (i, &l) in lits.iter().enumerate() {
                let want = mask >> i & 1 == 1;
                s.add_clause([if want { l } else { !l }]);
            }
            let expect = allowed(mask.count_ones());
            let got = s.solve_under_assumptions(&[], &sat::ResourceBudget::unlimited())
                == SolveResult::Sat;
            assert_eq!(got, expect, "n={n} mask={mask:b}");
        }
    }

    #[test]
    fn amo_pairwise_exhaustive() {
        for n in 0..=4 {
            check_counts(n, at_most_one, |c| c <= 1);
        }
    }

    #[test]
    fn amo_sequential_exhaustive() {
        // n = 8 exceeds the pairwise limit, exercising the ladder encoding.
        check_counts(8, at_most_one, |c| c <= 1);
    }

    #[test]
    fn exactly_one_exhaustive() {
        for n in 1..=7 {
            check_counts(n, exactly_one, |c| c == 1);
        }
    }

    #[test]
    fn totalizer_unweighted_bounds() {
        // For every bound k, exactly the assignments with ≤ k true inputs
        // remain satisfiable.
        let n = 5usize;
        for k in 0..=n as u64 {
            for mask in 0u32..(1 << n) {
                let mut s = DefaultBackend::default();
                let lits = new_lits(&mut s, n);
                let inputs: Vec<(Lit, u64)> = lits.iter().map(|&l| (l, 1)).collect();
                let tot = Totalizer::build(&mut s, &inputs);
                for u in tot.assert_at_most(k) {
                    s.add_clause([u]);
                }
                for (i, &l) in lits.iter().enumerate() {
                    let want = mask >> i & 1 == 1;
                    s.add_clause([if want { l } else { !l }]);
                }
                let expect = u64::from(mask.count_ones()) <= k;
                let sat_now = s.solve_under_assumptions(&[], &sat::ResourceBudget::unlimited())
                    == SolveResult::Sat;
                assert_eq!(sat_now, expect, "k={k} mask={mask:b}");
            }
        }
    }

    #[test]
    fn totalizer_weighted_bounds() {
        let weights = [3u64, 5, 7, 2];
        for k in [0u64, 2, 4, 7, 9, 11, 17] {
            for mask in 0u32..(1 << weights.len()) {
                let mut s = DefaultBackend::default();
                let lits = new_lits(&mut s, weights.len());
                let inputs: Vec<(Lit, u64)> =
                    lits.iter().zip(weights).map(|(&l, w)| (l, w)).collect();
                let tot = Totalizer::build(&mut s, &inputs);
                for u in tot.assert_at_most(k) {
                    s.add_clause([u]);
                }
                for (i, &l) in lits.iter().enumerate() {
                    let want = mask >> i & 1 == 1;
                    s.add_clause([if want { l } else { !l }]);
                }
                let total: u64 = weights
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &w)| w)
                    .sum();
                let sat_now = s.solve_under_assumptions(&[], &sat::ResourceBudget::unlimited())
                    == SolveResult::Sat;
                assert_eq!(sat_now, total <= k, "k={k} mask={mask:b}");
            }
        }
    }

    #[test]
    fn totalizer_empty() {
        let mut s = DefaultBackend::default();
        let tot = Totalizer::build(&mut s, &[]);
        assert!(tot.outputs().is_empty());
        assert!(tot.assert_at_most(0).is_empty());
    }
}

//! Warm-start sessions: reusable solver state across solves of one
//! instance.
//!
//! A [`MaxSatSession`] is what a finished search leaves behind: the
//! backend with its loaded clause arena (instance encoding, strategy
//! totalizers, *and* every learned clause), the incumbent model with its
//! cost, and the strategy's private progress (the linear search's
//! strengthening totalizer, or the core-guided search's active assumption
//! set with the lower bound it embodies). A follow-up
//! [`crate::solve_with_session`] call on the same instance resumes from
//! all of it instead of re-encoding and searching from scratch.
//!
//! **Why reuse is sound.** Every bound in both strategies travels as an
//! *assumption*, never an asserted clause, so the session's clause
//! database is a conservative extension of the instance: each learned
//! clause is a logical consequence of the instance plus strategy
//! definitions (relaxers, totalizers), independent of any bound assumed
//! while learning it. Re-solving under different assumptions — a tighter
//! bound, a bigger budget — therefore cannot change any answer; the
//! carried clauses only prune the new search. This is the same
//! conservative-extension argument that makes the strategy race's clause
//! exchange sound, applied across *time* instead of across workers.
//!
//! The one deliberate exception is *soft hardening* (see
//! [`crate::CoreGuided`]): a hardened soft's unit clause is sound only
//! relative to the incumbent it was hardened against — it prunes models
//! that provably cost more than that incumbent. The session records the
//! hardened set ([`MaxSatSession`]'s `oll_hardened`) alongside the
//! incumbent that justified it, so a snapshot replays the exact search
//! state: a resume continues below the same incumbent, where every
//! hardened clause remains valid.
//!
//! The incumbent model needs no explicit re-seeding: the solver's saved
//! phases already point at it (phase saving survives the snapshot), so a
//! warm solve's first descent lands near the prior optimum for free.

use sat::SatBackend;

use crate::encodings::Totalizer;
use crate::solve::SolveOptions;
use crate::strategy::Strategy;
use crate::wcnf::WcnfInstance;

/// Reusable state from a prior MaxSAT solve of one instance: the solver
/// (clause arena included), the incumbent, and strategy progress. Created
/// and consumed by [`crate::solve_with_session`]; forked for concurrent
/// reuse with [`MaxSatSession::fork`].
pub struct MaxSatSession<B: SatBackend> {
    pub(crate) solver: B,
    /// `(indicator, weight)` per soft clause, exactly as the original
    /// encoding produced them (fresh relaxer variables included).
    pub(crate) indicators: Vec<(sat::Lit, u64)>,
    pub(crate) constant_cost: u64,
    pub(crate) quantum: u64,
    pub(crate) shared_vars: usize,
    /// The strategy whose private encoding (totalizers) the solver
    /// carries; a resume under a different strategy would mix encodings,
    /// so it falls back to a cold start.
    pub(crate) strategy: Strategy,
    /// Linear search: the strengthening totalizer, once built.
    pub(crate) totalizer: Option<Totalizer>,
    /// Core-guided search: the active assumptions with their remaining
    /// quantized weights (the paid-off lower bound is implicit in them).
    pub(crate) oll_active: Option<Vec<(sat::Lit, u64)>>,
    /// Stratified core-guided search: the weight strata not yet folded
    /// into the active set, highest-first (empty once every stratum is
    /// active — or for unstratified searches). A resume picks the search
    /// up mid-stratum: `oll_active` is the partial stratum in flight.
    pub(crate) oll_pending: Vec<Vec<(sat::Lit, u64)>>,
    /// Soft indicators the search asserted hard (their unit clauses live
    /// in the solver's arena, so a snapshot replays them; the list records
    /// *which* softs those clauses pinned, keeping the session's state
    /// self-describing and its telemetry continuous across resumes).
    pub(crate) oll_hardened: Vec<sat::Lit>,
    pub(crate) best_model: Option<Vec<bool>>,
    pub(crate) best_cost: u64,
    /// Quantized cost of the incumbent — the linear resume's seed bound.
    pub(crate) best_q_cost: u64,
    /// Shape of the instance the session was built from, for the
    /// compatibility check (the caller keys sessions by fingerprint, but a
    /// mismatched resume must degrade to cold, not corrupt).
    pub(crate) instance_vars: usize,
    pub(crate) hard_count: usize,
    pub(crate) soft_count: usize,
    pub(crate) totalizer_units: u64,
}

impl<B: SatBackend> MaxSatSession<B> {
    /// True when this session may warm-start a solve of `instance` under
    /// `options`: same instance shape, same quantization, same strategy.
    /// (`Race` never resumes — its racers hold two divergent encodings.)
    pub fn compatible(&self, instance: &WcnfInstance, options: &SolveOptions) -> bool {
        let strategy = options.strategy;
        strategy == self.strategy
            && strategy != Strategy::Race
            && instance.num_vars() == self.instance_vars
            && instance.hard_clauses().len() == self.hard_count
            && instance.soft_clauses().len() == self.soft_count
            && options.totalizer_units == self.totalizer_units
    }

    /// Cost of the incumbent model, if one was recorded.
    pub fn best_cost(&self) -> Option<u64> {
        self.best_model.as_ref().map(|_| self.best_cost)
    }

    /// The incumbent model, if one was recorded.
    pub fn best_model(&self) -> Option<&[bool]> {
        self.best_model.as_deref()
    }

    /// Number of clauses a resume will carry over instead of re-encoding
    /// (what the warm solve reports as `reused_clauses`).
    pub fn reusable_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// An independent copy of the session via the backend's arena
    /// snapshot ([`SatBackend::snapshot`]), so one cold solve can seed
    /// many warm re-solves — the caching layer forks per request and
    /// keeps the base entry valid even if the warm solve is cancelled
    /// mid-search. `None` when the backend cannot snapshot itself.
    pub fn fork(&self) -> Option<MaxSatSession<B>> {
        Some(MaxSatSession {
            solver: self.solver.snapshot()?,
            indicators: self.indicators.clone(),
            constant_cost: self.constant_cost,
            quantum: self.quantum,
            shared_vars: self.shared_vars,
            strategy: self.strategy,
            totalizer: self.totalizer.clone(),
            oll_active: self.oll_active.clone(),
            oll_pending: self.oll_pending.clone(),
            oll_hardened: self.oll_hardened.clone(),
            best_model: self.best_model.clone(),
            best_cost: self.best_cost,
            best_q_cost: self.best_q_cost,
            instance_vars: self.instance_vars,
            hard_count: self.hard_count,
            soft_count: self.soft_count,
            totalizer_units: self.totalizer_units,
        })
    }
}

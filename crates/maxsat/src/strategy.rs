//! Search strategies of the MaxSAT engine, and the driver that races them.
//!
//! The engine's optimality search is factored into a [`SearchStrategy`]
//! over a shared [`SearchContext`] (solver, soft-clause indicators, weight
//! quantum, budget, telemetry, incumbent model). Two strategies ship:
//!
//! * [`LinearSatUnsat`] — the classic model-improving search: find a
//!   model, assert `cost ≤ best − 1` through a generalized totalizer, and
//!   repeat until UNSAT proves optimality. Strong when models are easy to
//!   find and the optimum is near the first incumbent.
//! * [`CoreGuided`] — OLL-style lower-bounding search: solve under the
//!   assumption that *every* soft clause holds, extract an
//!   [`sat::SatBackend::unsat_core`], pay its minimum weight into the
//!   lower bound, and relax the core through a counting totalizer whose
//!   bound walks up one output at a time. The first SAT answer *is* the
//!   optimum. Strong when the optimum is small and cores are local.
//!
//! Neither dominates — which is why [`Strategy::Race`] runs both. Races
//! execute through the unified plan engine (`run_plan`): the
//! instance-feature dispatcher ([`crate::dispatch`]) sizes a worker plan
//! (how many linear workers, how many core-guided, sharing on or off),
//! each strategy *group* runs as a [`sat::PortfolioBackend`] worker set
//! carrying its own [`sat::WorkerRole`] (diversification seed), and the
//! first group to return a *proof* (an `Optimal` or `Unsat` answer)
//! cancels the other through the shared [`sat::CancelToken`] chain.
//! Small instances degenerate to a single inline linear search — no
//! threads, no exchange, no race overhead at all.
//!
//! Every bound in both strategies is passed as an **assumption**, never
//! asserted as a clause, so each worker's clause database stays a
//! conservative extension of the shared instance — which makes two kinds
//! of cooperation sound: racing groups exchange learned clauses over the
//! shared variable prefix ([`sat::SharingConfig::var_limit`]), and they
//! exchange *bounds* through [`RaceBounds`] — the linear group receives
//! the core-guided group's proved lower bound (closing its final UNSAT
//! call early), the core-guided group receives the incumbent cost
//! (stopping once the incumbent provably meets its bound).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sat::{
    ClauseExchange, ExchangePort, Lit, ResourceBudget, SatBackend, SharingConfig, SolveResult,
    SolverTelemetry, Stats, WorkerRole,
};

use crate::dispatch::{DispatchPlan, CORE_ROLE_SEED};
use crate::encodings::Totalizer;
use crate::session::MaxSatSession;
use crate::solve::{MaxSatOutcome, MaxSatStatus, SolveOptions};
use crate::wcnf::WcnfInstance;

/// Bounds exchanged between the racing strategy groups of a worker plan,
/// in quantized cost units (both groups quantize identically — the
/// quantum depends only on the instance and `totalizer_units`).
///
/// Monotone by construction: the lower bound only rises
/// (`fetch_max`), the incumbent only falls (`fetch_min`) — so a stale
/// read is always *conservative*, never unsound.
#[derive(Debug)]
pub struct RaceBounds {
    /// Highest lower bound proved by any core-guided worker.
    lower: AtomicU64,
    /// Quantized cost of the best model observed by any worker.
    incumbent: AtomicU64,
}

impl RaceBounds {
    /// Fresh bounds: nothing proved (`lower = 0`), no incumbent
    /// (`incumbent = u64::MAX`).
    pub fn new() -> Self {
        RaceBounds {
            lower: AtomicU64::new(0),
            incumbent: AtomicU64::new(u64::MAX),
        }
    }

    /// Raises the proved lower bound (never lowers it).
    pub fn publish_lower(&self, q_bound: u64) {
        self.lower.fetch_max(q_bound, Ordering::Relaxed);
    }

    /// The highest lower bound published so far.
    pub fn lower(&self) -> u64 {
        self.lower.load(Ordering::Relaxed)
    }

    /// Lowers the incumbent cost (never raises it).
    pub fn publish_incumbent(&self, q_cost: u64) {
        self.incumbent.fetch_min(q_cost, Ordering::Relaxed);
    }

    /// The lowest incumbent cost published so far.
    pub fn incumbent(&self) -> u64 {
        self.incumbent.load(Ordering::Relaxed)
    }
}

impl Default for RaceBounds {
    fn default() -> Self {
        Self::new()
    }
}

/// Conflict cap for core-trimming probes: probes refine a relaxation the
/// main loop already paid for, so one may never cost a main-loop call's
/// worth of search. A probe hitting the cap answers `Unknown` and the
/// trimming loop conservatively keeps the literal.
const TRIM_CONFLICT_CAP: u64 = 1_000;

/// Conflict cap for core-exhaustion probes, tighter than trimming's: a
/// profitable exhaustion step is refuted almost entirely by unit
/// propagation through the fresh totalizer (the core is already tight),
/// while a SAT answer means a model search the main loop would have to
/// redo anyway — probes that can't answer quickly aren't worth
/// finishing.
const EXHAUST_CONFLICT_CAP: u64 = 100;

/// Which search strategy drives [`crate::solve_with_options`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Model-improving linear SAT-UNSAT search (the engine's classic
    /// behaviour, and still the default).
    #[default]
    LinearSatUnsat,
    /// OLL-style core-guided lower-bounding search.
    CoreGuided,
    /// Race both strategies as a heterogeneous worker plan sized by the
    /// instance-feature dispatcher; first proof wins and cancels the
    /// peer group (see `run_plan` and [`crate::dispatch`]).
    Race,
}

impl Strategy {
    /// Short name for telemetry rows and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::LinearSatUnsat => LinearSatUnsat.name(),
            Strategy::CoreGuided => CoreGuided.name(),
            Strategy::Race => "race",
        }
    }
}

/// The state every strategy searches over: the loaded solver, the soft
/// indicators, the weight quantum, the armed budget, telemetry, and the
/// best model seen so far. Building the context performs the shared
/// encoding step (hard clauses + one indicator literal per soft clause),
/// which is identical for every strategy — the precondition for racing
/// strategies to exchange clauses over the shared variable prefix.
pub struct SearchContext<'a, B: SatBackend> {
    solver: B,
    instance: &'a WcnfInstance,
    /// `(indicator, weight)` per soft clause: the indicator is true
    /// exactly when the clause is falsified (at the optimum).
    indicators: Vec<(Lit, u64)>,
    /// Weight of always-falsified (empty) softs.
    constant_cost: u64,
    /// Weight quantum the totalizers are built with (1 = exact).
    quantum: u64,
    /// Variables shared by every strategy's encoding (instance variables
    /// plus soft-clause relaxers); strategy-private totalizer variables
    /// are allocated above this mark.
    shared_vars: usize,
    budget: ResourceBudget,
    telemetry: SolverTelemetry,
    stats_base: Stats,
    iterations: u32,
    best_model: Option<Vec<bool>>,
    best_cost: u64,
    /// Quantized cost of the incumbent (tracked alongside `best_cost` so a
    /// warm resume can seed the linear bound without re-evaluating).
    best_q_cost: u64,
    /// Strategy progress carried in by a warm resume, taken by the
    /// strategy on entry.
    resume_totalizer: Option<Totalizer>,
    resume_active: Option<Vec<(Lit, u64)>>,
    resume_pending: Vec<Vec<(Lit, u64)>>,
    /// Strategy progress deposited on exit, collected into the next
    /// [`MaxSatSession`] by [`crate::solve_with_session`].
    stashed_totalizer: Option<Totalizer>,
    stashed_active: Option<Vec<(Lit, u64)>>,
    stashed_pending: Vec<Vec<(Lit, u64)>>,
    /// Soft indicators asserted hard so far (carried across resumes so
    /// the session stays self-describing; new hardenings append).
    hardened: Vec<Lit>,
    /// Weight-aware core-guided knobs, copied from [`SolveOptions`].
    stratify: bool,
    max_strata: usize,
    core_exhaustion: bool,
    core_hardening: bool,
    core_trim_probes: u32,
    /// True once a cross-group clause exchange is attached: hardening
    /// must stay off then — a hardened clause is only sound relative to
    /// this search's incumbent, and lemmas derived from it must never
    /// reach a peer group's conservative-extension clause database.
    exchange_attached: bool,
    /// Cross-group bound exchange, attached only when this context races
    /// inside a heterogeneous worker plan; `None` leaves every bound
    /// check inert.
    bounds: Option<Arc<RaceBounds>>,
}

impl<'a, B: SatBackend + Default> SearchContext<'a, B> {
    /// Encodes `instance` into a fresh backend: hard clauses, then one
    /// indicator per soft clause (unit softs reuse the negated literal;
    /// larger softs get a fresh relaxer, free to be false whenever the
    /// clause is satisfied). Arms the budget.
    pub fn new(
        instance: &'a WcnfInstance,
        budget: &ResourceBudget,
        options: &SolveOptions,
    ) -> Self {
        let budget = budget.arm();
        let mut telemetry = SolverTelemetry::new();
        let mut solver = B::default();
        if let Some(width) = options.portfolio_width {
            solver.set_portfolio_width(width);
        }

        let encode_start = Instant::now();
        solver.reserve_vars(instance.num_vars());
        for h in instance.hard_clauses() {
            solver.add_clause(h);
        }
        let mut indicators: Vec<(Lit, u64)> = Vec::with_capacity(instance.soft_clauses().len());
        for s in instance.soft_clauses() {
            match s.lits.as_slice() {
                [] => continue, // an empty soft is always falsified; constant cost
                [l] => indicators.push((!*l, s.weight)),
                lits => {
                    let r = solver.new_var().positive();
                    let mut clause: Vec<Lit> = lits.to_vec();
                    clause.push(r);
                    solver.add_clause(&clause);
                    // r is free to be false whenever the clause is satisfied,
                    // and the objective pushes it false, so r ⇔ falsified at
                    // the optimum.
                    indicators.push((r, s.weight));
                }
            }
        }
        telemetry.encode_time += encode_start.elapsed();

        let constant_cost: u64 = instance
            .soft_clauses()
            .iter()
            .filter(|s| s.lits.is_empty())
            .map(|s| s.weight)
            .sum();
        // Quantize weights so the totalizers' attainable-sum counts stay
        // small; quantum 1 keeps the search exact.
        let total_weight: u64 = indicators.iter().map(|&(_, w)| w).sum();
        let quantum = (total_weight / options.totalizer_units.max(1)).max(1);
        let shared_vars = solver.num_vars();
        let stats_base = *solver.stats();

        SearchContext {
            solver,
            instance,
            indicators,
            constant_cost,
            quantum,
            shared_vars,
            budget,
            telemetry,
            stats_base,
            iterations: 0,
            best_model: None,
            best_cost: u64::MAX,
            best_q_cost: u64::MAX,
            resume_totalizer: None,
            resume_active: None,
            resume_pending: Vec::new(),
            stashed_totalizer: None,
            stashed_active: None,
            stashed_pending: Vec::new(),
            hardened: Vec::new(),
            stratify: options.stratify,
            max_strata: options.max_strata.max(1),
            core_exhaustion: options.core_exhaustion,
            core_hardening: options.core_hardening,
            core_trim_probes: options.core_trim_probes,
            exchange_attached: false,
            bounds: None,
        }
    }

    /// Rebuilds a context from a prior solve's [`MaxSatSession`] instead
    /// of encoding from scratch: the session's solver (clause arena,
    /// learned clauses, saved phases), indicators, incumbent, and strategy
    /// progress all carry over. The caller must pass the *same* instance
    /// the session was built from (checked cheaply by
    /// [`MaxSatSession::compatible`]; keyed exactly by the route-level
    /// fingerprint). Arms `budget` and honors a changed portfolio width.
    ///
    /// The resumed telemetry reports `warm_start = true` and counts every
    /// clause already in the arena as `reused_clauses` — the encoding work
    /// this resume did *not* redo.
    pub fn resume(
        session: MaxSatSession<B>,
        instance: &'a WcnfInstance,
        budget: &ResourceBudget,
        options: &SolveOptions,
    ) -> Self {
        let budget = budget.arm();
        let mut solver = session.solver;
        if let Some(width) = options.portfolio_width {
            solver.set_portfolio_width(width);
        }
        let mut telemetry = SolverTelemetry::new();
        telemetry.warm_start = true;
        telemetry.reused_clauses = solver.num_clauses() as u64;
        let stats_base = *solver.stats();
        let (best_model, best_cost, best_q_cost) = match session.best_model {
            Some(model) => (Some(model), session.best_cost, session.best_q_cost),
            None => (None, u64::MAX, u64::MAX),
        };
        SearchContext {
            solver,
            instance,
            indicators: session.indicators,
            constant_cost: session.constant_cost,
            quantum: session.quantum,
            shared_vars: session.shared_vars,
            budget,
            telemetry,
            stats_base,
            iterations: 0,
            best_model,
            best_cost,
            best_q_cost,
            resume_totalizer: session.totalizer,
            resume_active: session.oll_active,
            resume_pending: session.oll_pending,
            stashed_totalizer: None,
            stashed_active: None,
            stashed_pending: Vec::new(),
            hardened: session.oll_hardened,
            stratify: options.stratify,
            max_strata: options.max_strata.max(1),
            core_exhaustion: options.core_exhaustion,
            core_hardening: options.core_hardening,
            core_trim_probes: options.core_trim_probes,
            exchange_attached: false,
            bounds: None,
        }
    }

    /// Packs the post-search state into a session for the next solve of
    /// the same instance. `outcome` supplies the incumbent (the search
    /// took it out of the context when it finished).
    pub fn into_session(
        self,
        strategy: Strategy,
        options: &SolveOptions,
        outcome: &MaxSatOutcome,
    ) -> MaxSatSession<B> {
        MaxSatSession {
            solver: self.solver,
            indicators: self.indicators,
            constant_cost: self.constant_cost,
            quantum: self.quantum,
            shared_vars: self.shared_vars,
            strategy,
            totalizer: self.stashed_totalizer,
            oll_active: self.stashed_active,
            oll_pending: self.stashed_pending,
            oll_hardened: self.hardened,
            best_model: outcome.model.clone(),
            best_cost: outcome.cost.unwrap_or(u64::MAX),
            best_q_cost: self.best_q_cost,
            instance_vars: self.instance.num_vars(),
            hard_count: self.instance.hard_clauses().len(),
            soft_count: self.instance.soft_clauses().len(),
            totalizer_units: options.totalizer_units,
        }
    }

    /// The weight quantum the totalizers use (1 = exact search).
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Weight of empty softs — the floor no model can beat.
    pub fn constant_cost(&self) -> u64 {
        self.constant_cost
    }

    /// Cost of the incumbent model (meaningless before the first model).
    pub fn best_cost(&self) -> u64 {
        self.best_cost
    }

    /// True once any model has been recorded.
    pub fn has_model(&self) -> bool {
        self.best_model.is_some()
    }

    /// Number of variables shared by every strategy's encoding; clauses
    /// over this prefix may be exchanged between racing strategies.
    pub fn shared_vars(&self) -> usize {
        self.shared_vars
    }

    /// True once the armed budget has expired (or was cancelled).
    pub fn budget_expired(&self) -> bool {
        self.budget.expired()
    }

    /// Quantized cost of the incumbent (only meaningful once
    /// [`SearchContext::has_model`] holds).
    pub fn best_q_cost(&self) -> u64 {
        self.best_q_cost
    }

    /// Takes the linear strengthening totalizer carried in by a warm
    /// resume, if any.
    pub fn take_resume_totalizer(&mut self) -> Option<Totalizer> {
        self.resume_totalizer.take()
    }

    /// Takes the core-guided active assumption set carried in by a warm
    /// resume, if any.
    pub fn take_resume_active(&mut self) -> Option<Vec<(Lit, u64)>> {
        self.resume_active.take()
    }

    /// Takes the not-yet-activated weight strata carried in by a warm
    /// resume (empty for cold starts and unstratified sessions).
    pub fn take_resume_pending(&mut self) -> Vec<Vec<(Lit, u64)>> {
        std::mem::take(&mut self.resume_pending)
    }

    /// Deposits the linear totalizer for collection into the next session.
    pub fn stash_totalizer(&mut self, totalizer: Option<Totalizer>) {
        self.stashed_totalizer = totalizer;
    }

    /// Deposits the core-guided active set for collection into the next
    /// session.
    pub fn stash_active(&mut self, active: Vec<(Lit, u64)>) {
        self.stashed_active = Some(active);
    }

    /// Deposits the unactivated strata for collection into the next
    /// session, so a resume picks the search up mid-stratum.
    pub fn stash_pending(&mut self, pending: Vec<Vec<(Lit, u64)>>) {
        self.stashed_pending = pending;
    }

    /// `(indicator, quantized weight)` pairs — the totalizer inputs.
    pub fn quantized_indicators(&self) -> Vec<(Lit, u64)> {
        self.indicators
            .iter()
            .map(|&(l, w)| (l, w.div_ceil(self.quantum)))
            .collect()
    }

    /// Wires the context's backend into a clause exchange (used by the
    /// strategy race; single-threaded strategies never need it). Also
    /// disables soft hardening for this search: a hardened clause is only
    /// sound relative to this search's incumbent, and no lemma derived
    /// from it may leak into a peer group's clause database.
    pub fn attach_exchange(&mut self, port: ExchangePort) {
        self.solver.set_clause_exchange(Some(port));
        self.exchange_attached = true;
    }

    /// Wires the context into a cross-group bound exchange (used by
    /// `run_plan` when both strategy groups are populated). Models
    /// observed afterwards publish their quantized cost as the shared
    /// incumbent.
    pub fn attach_bounds(&mut self, bounds: Arc<RaceBounds>) {
        self.bounds = Some(bounds);
    }

    /// Applies a worker-plan role (strategy label + diversification seed)
    /// to the backend — how `run_plan` differentiates its strategy
    /// groups on one backend type.
    pub fn apply_role(&mut self, role: &WorkerRole) {
        self.solver.set_worker_role(role);
    }

    /// The highest lower bound proved by a racing core-guided group (0
    /// without an attached exchange — the check is inert).
    pub fn shared_lower_bound(&self) -> u64 {
        self.bounds.as_ref().map_or(0, |b| b.lower())
    }

    /// The lowest incumbent cost any racing group observed (`u64::MAX`
    /// without an attached exchange — the check is inert).
    pub fn shared_incumbent(&self) -> u64 {
        self.bounds.as_ref().map_or(u64::MAX, |b| b.incumbent())
    }

    /// Publishes a proved (quantized) lower bound to the racing peer
    /// group; a no-op without an attached exchange.
    pub fn publish_lower_bound(&self, q_bound: u64) {
        if let Some(bounds) = &self.bounds {
            bounds.publish_lower(q_bound);
        }
    }

    /// One SAT call under `assumptions` within the shared budget, with the
    /// solve time and iteration count charged to the context.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.iterations += 1;
        let solve_start = Instant::now();
        let result = self
            .solver
            .solve_under_assumptions(assumptions, &self.budget);
        self.telemetry.solve_time += solve_start.elapsed();
        result
    }

    /// Runs an encoding step (totalizer construction) against the solver,
    /// charging its wall time to the telemetry's encode bucket.
    pub fn encode<R>(&mut self, f: impl FnOnce(&mut B) -> R) -> R {
        let encode_start = Instant::now();
        let r = f(&mut self.solver);
        self.telemetry.encode_time += encode_start.elapsed();
        r
    }

    /// The subset of assumptions behind the last UNSAT answer.
    pub fn core(&self) -> Vec<Lit> {
        self.solver.unsat_core().to_vec()
    }

    /// An auxiliary SAT call that does not advance the search iteration
    /// count: exhaustion probes and trimming probes are sub-steps of one
    /// core relaxation, so `iterations` (and the `sat_calls` telemetry
    /// derived from it) keeps counting main-loop decisions only. The
    /// solve time is still charged, and `conflict_cap` keeps any single
    /// probe from burning a main-loop call's worth of search — a capped
    /// probe answers `Unknown`, which every probing loop treats as "stop
    /// refining, the main loop still makes progress".
    pub fn probe(&mut self, assumptions: &[Lit], conflict_cap: u64) -> SolveResult {
        let budget = self.probe_budget(conflict_cap);
        let solve_start = Instant::now();
        let result = self.solver.solve_under_assumptions(assumptions, &budget);
        self.telemetry.solve_time += solve_start.elapsed();
        result
    }

    /// Runs the budget-capped destructive trimming pass ([`sat::trim_core`])
    /// over a fresh core; a no-op when trimming is disabled or the core is
    /// already minimal-sized. Probe time and conflict caps charge like
    /// [`SearchContext::probe`].
    pub fn trim(&mut self, core: Vec<Lit>) -> Vec<Lit> {
        if self.core_trim_probes == 0 || core.len() < 3 {
            return core;
        }
        let budget = self.probe_budget(TRIM_CONFLICT_CAP);
        let solve_start = Instant::now();
        let trimmed = sat::trim_core(&mut self.solver, core, &budget, self.core_trim_probes);
        self.telemetry.solve_time += solve_start.elapsed();
        trimmed
    }

    /// The search budget with a probe conflict cap applied (a caller's
    /// own, stricter cap still wins — a child can only tighten).
    fn probe_budget(&self, cap: u64) -> ResourceBudget {
        let cap = self.budget.conflict_cap().map_or(cap, |c| c.min(cap));
        self.budget.conflicts_per_call(cap)
    }

    /// True when core exhaustion may engage: the knob is on *and* the
    /// weights are diverse — the same gate as stratification, because
    /// both pay off through large per-core weights. On clustered weights
    /// the probes perturb the solver's saved phases (each probe searches
    /// under a single assumption, far from the main loop's trajectory)
    /// for bounds the main loop would prove in one cheap call anyway —
    /// measured ~2x extra conflicts on the quantized fidelity objective.
    /// (The search additionally skips cores worth a single quantum,
    /// where a probe cannot pay more than a main-loop call would.)
    pub fn exhaustion_enabled(&self) -> bool {
        self.core_exhaustion && self.weights_diverse()
    }

    /// RC2-style weight-diversity signal: more distinct quantized weights
    /// than the square root of the soft count. Derived from the original
    /// indicators (not residual weights), so it is stable across warm
    /// resumes.
    pub fn weights_diverse(&self) -> bool {
        let distinct = self
            .indicators
            .iter()
            .map(|&(_, w)| w.div_ceil(self.quantum))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        distinct * distinct > self.indicators.len()
    }

    /// Records one paid exhaustion step in the telemetry.
    pub fn count_exhaustion_step(&mut self) {
        self.telemetry.exhaustion_steps += 1;
    }

    /// Records the stratum count of this search in the telemetry (a
    /// gauge; `1` means stratification had nothing to split).
    pub fn record_strata(&mut self, strata: u64) {
        self.telemetry.strata = self.telemetry.strata.max(strata);
    }

    /// RC2-style soft hardening: any assumption whose remaining weight
    /// exceeds the incumbent-minus-lower-bound gap cannot be violated by a
    /// model better than the incumbent, so it is asserted hard (a unit
    /// clause) and dropped from the assumption lists for the rest of the
    /// search. `paid` is the lower bound proved so far; the upper bound is
    /// the better of the own incumbent and the race-shared one (both are
    /// backed by actual models, so the hardened formula stays satisfiable).
    ///
    /// Sound for the search's claim because hardening only excludes models
    /// whose quantized cost provably exceeds the incumbent's — every
    /// quantized-optimal model survives. Disabled while a clause exchange
    /// is attached (see [`SearchContext::attach_exchange`]).
    pub fn harden(
        &mut self,
        paid: u64,
        active: &mut Vec<(Lit, u64)>,
        pending: &mut Vec<Vec<(Lit, u64)>>,
    ) -> u64 {
        if !self.core_hardening || self.exchange_attached {
            return 0;
        }
        let own = if self.best_model.is_some() {
            self.best_q_cost
        } else {
            u64::MAX
        };
        let ub = own.min(self.shared_incumbent());
        if ub == u64::MAX {
            return 0;
        }
        let mut count = 0u64;
        let mut harden_list =
            |solver: &mut B, hardened: &mut Vec<Lit>, list: &mut Vec<(Lit, u64)>| {
                list.retain(|&(l, w)| {
                    if paid.saturating_add(w) > ub {
                        solver.add_clause(&[l]);
                        hardened.push(l);
                        count += 1;
                        false
                    } else {
                        true
                    }
                });
            };
        harden_list(&mut self.solver, &mut self.hardened, active);
        for stratum in pending.iter_mut() {
            harden_list(&mut self.solver, &mut self.hardened, stratum);
        }
        pending.retain(|s| !s.is_empty());
        self.telemetry.hardened_softs += count;
        count
    }

    /// Number of softs hardened so far (across resumes).
    pub fn hardened_count(&self) -> usize {
        self.hardened.len()
    }

    /// Partitions merged `(assumption, weight)` pairs into weight strata,
    /// highest-first. Weights within 2x of a stratum's heaviest member
    /// share its stratum (log-scale buckets), and at most
    /// [`SolveOptions::max_strata`] strata survive — the tail merges into
    /// the last. With stratification off the whole set is one stratum,
    /// recovering plain OLL.
    ///
    /// Stratification only engages when the weight *diversity* is high
    /// (RC2-style): more distinct weights than the square root of the
    /// soft count. Below that, weights are too clustered for
    /// highest-first search to order cores usefully, and the extra
    /// model-finding SAT call per stratum boundary is pure overhead —
    /// measured ~1.7x slower on the quantized fidelity objective, whose
    /// 473 softs collapse onto ~20 distinct quantized weights.
    pub fn stratify(&self, mut merged: Vec<(Lit, u64)>) -> Vec<Vec<(Lit, u64)>> {
        // Stable sort: equal weights keep indicator order, so the
        // partition is deterministic.
        merged.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        let cap = if self.stratify && self.weights_diverse() {
            self.max_strata
        } else {
            1
        };
        let mut strata: Vec<Vec<(Lit, u64)>> = Vec::new();
        for (l, w) in merged {
            let at_cap = strata.len() == cap;
            match strata.last_mut() {
                Some(s) if at_cap || w.saturating_mul(2) > s[0].1 => s.push((l, w)),
                _ => strata.push(vec![(l, w)]),
            }
        }
        strata
    }

    /// Evaluates the solver's current model against the *original*
    /// instance (the model may set relaxers true spuriously), records it
    /// when it beats the incumbent, and returns `(true cost, quantized
    /// cost)` — the quantized cost of *this* model drives the linear
    /// strategy's strengthening.
    pub fn observe_model(&mut self) -> (u64, u64) {
        let model = self.solver.model();
        let cost = self
            .instance
            .cost_of(&model)
            .expect("SAT model must satisfy hard clauses");
        let q_cost: u64 = self
            .indicators
            .iter()
            .filter(|&&(l, _)| {
                model.get(l.var().index()).copied().unwrap_or(false) == l.is_positive()
            })
            .map(|&(_, w)| w.div_ceil(self.quantum))
            .sum();
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_q_cost = q_cost;
            self.best_model = Some(model);
        }
        // Any model's quantized cost is a valid upper bound for the
        // racing peer group, incumbent or not.
        if let Some(bounds) = &self.bounds {
            bounds.publish_incumbent(q_cost);
        }
        (cost, q_cost)
    }

    /// The status a completed (exhausted) search may claim: exact-weight
    /// searches prove optimality, quantized ones only feasibility up to
    /// the quantization error.
    pub fn proved_status(&self) -> MaxSatStatus {
        if self.quantum == 1 {
            MaxSatStatus::Optimal
        } else {
            MaxSatStatus::Feasible
        }
    }

    /// The single exit path of every strategy: snapshots the backend's
    /// statistics into the telemetry and assembles the outcome around the
    /// incumbent model.
    pub fn finish(&mut self, status: MaxSatStatus, strategy: &'static str) -> MaxSatOutcome {
        let stats = *self.solver.stats();
        let base = &self.stats_base;
        let t = &mut self.telemetry;
        t.sat_calls = u64::from(self.iterations);
        t.conflicts = stats.conflicts - base.conflicts;
        t.decisions = stats.decisions - base.decisions;
        t.propagations = stats.propagations - base.propagations;
        t.restarts = stats.restarts - base.restarts;
        t.db_reductions = stats.reductions - base.reductions;
        t.clauses_exported = stats.clauses_exported - base.clauses_exported;
        t.clauses_imported = stats.clauses_imported - base.clauses_imported;
        t.useful_imports = stats.useful_imports - base.useful_imports;
        t.cross_call_imports = stats.cross_call_imports - base.cross_call_imports;
        t.compactions = stats.compactions - base.compactions;
        t.worker_panics = stats.worker_panics - base.worker_panics;
        // A gauge, not a counter: report the backend's current arena
        // footprint (summed over portfolio workers).
        t.arena_bytes = stats.arena_bytes;
        t.winning_worker = stats.last_winner;
        t.strategy = Some(strategy);
        let model = self.best_model.take();
        let cost = model.as_ref().map(|_| self.best_cost);
        MaxSatOutcome {
            status,
            model,
            cost,
            iterations: self.iterations,
            quantum: self.quantum,
            strategy,
            telemetry: *t,
        }
    }

    /// [`SearchContext::finish`] for searches that ran out of budget: a
    /// recorded model downgrades to `Feasible`, none at all is `Unknown`.
    pub fn finish_exhausted(&mut self, strategy: &'static str) -> MaxSatOutcome {
        let status = if self.has_model() {
            MaxSatStatus::Feasible
        } else {
            MaxSatStatus::Unknown
        };
        self.finish(status, strategy)
    }
}

/// One search strategy of the MaxSAT engine, running over a prepared
/// [`SearchContext`] until it can prove a status or exhausts the budget.
pub trait SearchStrategy {
    /// Short name for telemetry rows and experiment tables.
    fn name(&self) -> &'static str;

    /// Runs the search to completion (or budget exhaustion).
    fn search<B: SatBackend + Default>(&self, ctx: &mut SearchContext<'_, B>) -> MaxSatOutcome;
}

/// The model-improving linear SAT-UNSAT search (Open-WBO-Inc-MCS style):
/// each model strengthens the bound `cost ≤ best − 1` until UNSAT proves
/// optimality. The bound is passed as a single *assumption* on the
/// totalizer's smallest violated output (the ordering chain propagates the
/// rest), never asserted as a clause — so the clause database stays a
/// conservative extension of the instance and lemmas remain exchangeable.
pub struct LinearSatUnsat;

impl SearchStrategy for LinearSatUnsat {
    fn name(&self) -> &'static str {
        "linear-sat-unsat"
    }

    fn search<B: SatBackend + Default>(&self, ctx: &mut SearchContext<'_, B>) -> MaxSatOutcome {
        let mut totalizer: Option<Totalizer> = ctx.take_resume_totalizer();
        // The current strengthening bound: ¬o for the smallest attainable
        // sum above the target (ordering clauses propagate ¬ upward).
        let mut bound: Option<Lit> = None;
        // Warm resume with an incumbent: skip the initial model hunt and
        // go straight to strengthening the prior bound — the carried
        // learned clauses make the closing UNSAT proof cheap. Incumbents
        // already sitting on a proved floor finish without solving at all.
        if ctx.has_model() {
            if ctx.best_cost() == ctx.constant_cost() {
                let outcome = ctx.finish(MaxSatStatus::Optimal, self.name());
                ctx.stash_totalizer(totalizer);
                return outcome;
            }
            if ctx.best_q_cost() == 0 {
                let status = ctx.proved_status();
                let outcome = ctx.finish(status, self.name());
                ctx.stash_totalizer(totalizer);
                return outcome;
            }
            if totalizer.is_none() {
                let inputs = ctx.quantized_indicators();
                totalizer = Some(ctx.encode(|solver| Totalizer::build(solver, &inputs)));
            }
            let q_cost = ctx.best_q_cost();
            bound = totalizer
                .as_ref()
                .expect("just built")
                .assert_at_most(q_cost - 1)
                .first()
                .copied();
        }
        let outcome = loop {
            if ctx.budget_expired() {
                break ctx.finish_exhausted(self.name());
            }
            // Bound exchange: once the racing core-guided group has proved
            // a lower bound our incumbent meets, the incumbent *is* the
            // quantized optimum — the closing UNSAT call is unnecessary.
            // (Sound because no quantized model can cost less than a
            // proved lower bound, and the bound only ever rises.)
            if ctx.has_model() && ctx.best_q_cost() <= ctx.shared_lower_bound() {
                let status = ctx.proved_status();
                break ctx.finish(status, self.name());
            }
            let assumptions: Vec<Lit> = bound.into_iter().collect();
            match ctx.solve(&assumptions) {
                SolveResult::Sat => {
                    let (_cost, q_cost) = ctx.observe_model();
                    if ctx.best_cost() == ctx.constant_cost() {
                        // Can't do better than falsifying only empty softs.
                        break ctx.finish(MaxSatStatus::Optimal, self.name());
                    }
                    if q_cost == 0 {
                        // Quantized optimum reached; cannot strengthen.
                        let status = ctx.proved_status();
                        break ctx.finish(status, self.name());
                    }
                    // Lazily build the totalizer on first strengthening;
                    // its size is bounded by the number of attainable
                    // (quantized) weight sums.
                    if totalizer.is_none() {
                        let inputs = ctx.quantized_indicators();
                        totalizer = Some(ctx.encode(|solver| Totalizer::build(solver, &inputs)));
                    }
                    let tot = totalizer.as_ref().expect("just built");
                    // q_cost is an attainable sum, so the list is nonempty
                    // and the next call's model must strengthen strictly.
                    bound = tot.assert_at_most(q_cost - 1).first().copied();
                }
                SolveResult::Unsat => {
                    // No model below the bound: the incumbent is the
                    // (quantized) optimum. Without an incumbent the hard
                    // clauses themselves are unsatisfiable.
                    let status = if ctx.has_model() {
                        ctx.proved_status()
                    } else {
                        MaxSatStatus::Unsat
                    };
                    break ctx.finish(status, self.name());
                }
                SolveResult::Unknown => break ctx.finish_exhausted(self.name()),
            }
        };
        ctx.stash_totalizer(totalizer);
        outcome
    }
}

/// Where a core-guided assumption came from, so a core containing it can
/// walk the owning totalizer's bound one output upward.
type RelaxSource = (usize, u64, u64); // (totalizer index, output sum, weight)

/// OLL-style core-guided search, weight-aware end to end:
///
/// * **Stratification** — softs are partitioned into weight strata
///   ([`SearchContext::stratify`]) and searched highest-stratum-first;
///   each SAT answer with strata still pending yields an incumbent and
///   folds the next stratum into the assumption set. Heavy softs shape
///   the search before light ones dilute the cores.
/// * **Core trimming** — every fresh core is shrunk by a budget-capped
///   destructive pass ([`sat::trim_core`]) before its relaxation
///   totalizer is built, keeping the relaxation encoding small.
/// * **Core exhaustion** — after relaxing a core, the totalizer's bound
///   is tightened while UNSAT persists (RC2-style), paying multiple
///   weight units per core instead of rediscovering the same conflict
///   one main-loop call at a time. Engages only for cores worth more
///   than one weight unit.
/// * **Soft hardening** — once an incumbent exists, assumptions whose
///   remaining weight exceeds the incumbent-minus-lower-bound gap are
///   asserted hard ([`SearchContext::harden`]).
///
/// Every bound still travels as an assumption (hardened units are the
/// deliberate, session-recorded exception), and the first SAT answer
/// with *every* stratum active is the (quantized) optimum.
pub struct CoreGuided;

impl SearchStrategy for CoreGuided {
    fn name(&self) -> &'static str {
        "core-guided"
    }

    fn search<B: SatBackend + Default>(&self, ctx: &mut SearchContext<'_, B>) -> MaxSatOutcome {
        // Active assumptions with their remaining (quantized) weights,
        // plus the weight strata not yet folded in (highest-first).
        // Duplicate indicator literals merge by summing weights so cores
        // map back to unique assumptions. A warm resume starts from the
        // prior search's active set and unactivated strata — the lower
        // bound it paid for is implicit in the reduced weights, so no
        // core is re-derived. (The successor map restarts empty: walking
        // a carried totalizer's bound upward is an optimization, and
        // without it a repeated core still pays weight and terminates —
        // the bound strictly rises.)
        let (mut active, mut pending) = match ctx.take_resume_active() {
            Some(active) => (active, ctx.take_resume_pending()),
            None => {
                let mut merged: Vec<(Lit, u64)> = Vec::new();
                for (l, w) in ctx.quantized_indicators() {
                    let assumption = !l;
                    match merged.iter_mut().find(|(a, _)| *a == assumption) {
                        Some((_, total)) => *total += w,
                        None => merged.push((assumption, w)),
                    }
                }
                let mut strata = ctx.stratify(merged);
                let first = if strata.is_empty() {
                    Vec::new()
                } else {
                    strata.remove(0)
                };
                (first, strata)
            }
        };
        ctx.record_strata(1 + pending.len() as u64);
        let mut relaxations: Vec<Totalizer> = Vec::new();
        let mut successors: HashMap<Lit, RelaxSource> = HashMap::new();
        // Lower bound proved *by this call* (core payments), published to
        // a racing linear group through the bound exchange. Starts at 0
        // even on a warm resume — prior payments are implicit in the
        // reduced weights and were never shared — so everything published
        // is freshly proved from the conservative-extension clause DB.
        // Payments stay sound while strata are pending: a core over the
        // heavy strata lower-bounds the full objective because the
        // unfolded light softs can only add cost.
        let mut paid: u64 = 0;

        let outcome = loop {
            if ctx.budget_expired() {
                break ctx.finish_exhausted(self.name());
            }
            // An own incumbent (a stratum-fold model or an exhaustion
            // probe's) whose quantized cost meets the proved lower bound
            // *is* the quantized optimum — claim it without another call.
            if ctx.has_model() && ctx.best_q_cost() <= paid {
                let status = ctx.proved_status();
                break ctx.finish(status, self.name());
            }
            // Bound exchange: once a racing peer holds a *better* model
            // whose cost our own lower bound already matches, that
            // incumbent is the quantized optimum and the peer will prove
            // it — stop burning budget. No proof is claimed here (the
            // exhausted exit never contends for the win).
            if ctx.shared_incumbent() <= paid {
                break ctx.finish_exhausted(self.name());
            }
            let assumptions: Vec<Lit> = active.iter().map(|&(l, _)| l).collect();
            match ctx.solve(&assumptions) {
                SolveResult::Sat => {
                    // OLL invariant: a model under the current assumptions
                    // meets the lower bound exactly. With every stratum
                    // active it is the optimum; otherwise it is the
                    // incumbent that unlocks the next stratum (and soft
                    // hardening against the fresh upper bound).
                    ctx.observe_model();
                    if pending.is_empty() {
                        let status = ctx.proved_status();
                        break ctx.finish(status, self.name());
                    }
                    active.extend(pending.remove(0));
                    ctx.harden(paid, &mut active, &mut pending);
                }
                SolveResult::Unsat => {
                    let core = ctx.core();
                    if core.is_empty() {
                        // The conflict is independent of every assumption.
                        // Without hardened clauses that means the hard
                        // clauses themselves are unsatisfiable; with them
                        // the conflict may rest on a unit that is only
                        // sound relative to the incumbent, so no Unsat
                        // claim — the incumbent stands as Feasible.
                        if ctx.hardened_count() > 0 {
                            break ctx.finish_exhausted(self.name());
                        }
                        break ctx.finish(MaxSatStatus::Unsat, self.name());
                    }
                    let core = ctx.trim(core);
                    let min_w = core
                        .iter()
                        .filter_map(|c| active.iter().find(|(l, _)| l == c).map(|&(_, w)| w))
                        .min()
                        .expect("core literals are active assumptions");
                    paid += min_w;
                    ctx.publish_lower_bound(paid);
                    // Pay min_w into the lower bound: every core member's
                    // weight drops by it, and members reaching zero retire.
                    for c in &core {
                        let entry = active
                            .iter_mut()
                            .find(|(l, _)| l == c)
                            .expect("core ⊆ assumptions");
                        entry.1 -= min_w;
                        // First core appearance of a totalizer output:
                        // walk that totalizer's bound one output upward.
                        if let Some((t, sum, w)) = successors.remove(c) {
                            if let Some(next) = relaxations[t].output_for(sum + 1) {
                                active.push((!next, w));
                                successors.insert(!next, (t, sum + 1, w));
                            }
                        }
                    }
                    active.retain(|&(_, w)| w > 0);
                    // Relax the core: count its violated members and allow
                    // one for free (the lower bound already paid for it).
                    if core.len() > 1 {
                        let inputs: Vec<(Lit, u64)> = core.iter().map(|&c| (!c, 1)).collect();
                        let tot = ctx.encode(|solver| Totalizer::build(solver, &inputs));
                        // Exhaustion: tighten the fresh totalizer's bound
                        // while UNSAT persists, paying min_w per step — a
                        // probe at bound b proves every model violates ≥ b
                        // core members, i.e. costs ≥ paid + min_w more.
                        // Worth the probes only when min_w > 1: a unit-
                        // weight core pays no faster here than the main
                        // loop would, and the probes aren't free.
                        let mut bound = 2;
                        if ctx.exhaustion_enabled() && min_w > 1 {
                            while let Some(o) = tot.output_for(bound) {
                                match ctx.probe(&[!o], EXHAUST_CONFLICT_CAP) {
                                    SolveResult::Unsat => {
                                        paid += min_w;
                                        ctx.publish_lower_bound(paid);
                                        ctx.count_exhaustion_step();
                                        bound += 1;
                                    }
                                    SolveResult::Sat => {
                                        // A probe model is a real model of
                                        // the hard clauses — a free
                                        // incumbent candidate.
                                        ctx.observe_model();
                                        break;
                                    }
                                    SolveResult::Unknown => break,
                                }
                            }
                        }
                        // The surviving bound joins the assumptions; ¬o
                        // walks upward as later cores include it.
                        if let Some(o) = tot.output_for(bound) {
                            active.push((!o, min_w));
                            successors.insert(!o, (relaxations.len(), bound, min_w));
                        }
                        relaxations.push(tot);
                    }
                    ctx.harden(paid, &mut active, &mut pending);
                }
                SolveResult::Unknown => break ctx.finish_exhausted(self.name()),
            }
        };
        ctx.stash_active(active);
        ctx.stash_pending(pending);
        outcome
    }
}

/// Runs a [`DispatchPlan`] — the unified execution engine behind
/// [`Strategy::Race`].
///
/// Single-group plans (every worker running one strategy) execute
/// *inline*: one [`SearchContext`] whose backend takes the whole group's
/// width, no threads, no exchange — this is how small `Auto` requests
/// escape the race overhead entirely.
///
/// Mixed plans race a linear group against a core-guided group within
/// one shared (already armed) budget: the first group to return a
/// *proof* (`Optimal` or `Unsat`) wins and cancels its peer through the
/// budget's [`sat::CancelToken`] chain. Without a proof, the better
/// feasible answer is kept (ties favour the linear incumbent). Each
/// group gets a [`WorkerRole`]: the linear group keeps the base seed 0
/// (the historical default configuration), the core-guided group is
/// diversified from [`CORE_ROLE_SEED`] — so fault injection and
/// diagnostics can tell the groups apart.
///
/// The groups cooperate two ways, both sound because bounds travel as
/// assumptions and every clause database stays a conservative extension
/// of the shared instance:
///
/// * when `plan.sharing` is on, both attach to one [`ClauseExchange`]
///   restricted to the shared variable prefix, so instance-level lemmas
///   learned while one strategy refutes its bound prune the other
///   strategy's search too; a width-1 [`sat::PortfolioBackend`] rides
///   the port on its primary, while wider groups keep their internal
///   exchange as well;
/// * a [`RaceBounds`] pair is always attached: the linear group closes
///   early once its incumbent meets the core-guided group's proved lower
///   bound, and the core-guided group stops once the shared incumbent
///   provably meets its bound.
pub(crate) fn run_plan<B: SatBackend + Default + Send>(
    instance: &WcnfInstance,
    budget: &ResourceBudget,
    options: &SolveOptions,
    plan: DispatchPlan,
) -> MaxSatOutcome {
    // Single-strategy plans run inline — no race machinery at all.
    if plan.core_width == 0 {
        let opts = options.with_portfolio_width(plan.linear_width.max(1));
        let mut ctx = SearchContext::<B>::new(instance, budget, &opts);
        return LinearSatUnsat.search(&mut ctx);
    }
    if plan.linear_width == 0 {
        let opts = options.with_portfolio_width(plan.core_width.max(1));
        let mut ctx = SearchContext::<B>::new(instance, budget, &opts);
        return CoreGuided.search(&mut ctx);
    }

    let armed = budget.arm();
    let (worker_budget, abort) = armed.cancellable();
    // Both strategies encode the instance identically, so variables below
    // this mark mean the same thing to both; totalizer variables above it
    // are strategy-private and never cross.
    let shared_vars = instance.num_vars()
        + instance
            .soft_clauses()
            .iter()
            .filter(|s| s.lits.len() >= 2)
            .count();
    // Assumption-heavy MaxSAT solving spreads learned clauses over many
    // pseudo-decision levels, inflating LBD well past the portfolio
    // default — so the groups' exchange accepts glue up to 8 and longer
    // clauses (every export is still a consequence of the shared prefix).
    // The dispatcher decides whether sharing pays at all.
    let exchange = plan.sharing.then(|| {
        Arc::new(ClauseExchange::new(
            2,
            SharingConfig {
                lbd_max: 8,
                max_len: 64,
                var_limit: Some(shared_vars),
                ..SharingConfig::default()
            },
        ))
    });
    // Bound exchange rides even when clause sharing is off: it is two
    // atomics, free at any instance size.
    let bounds = Arc::new(RaceBounds::new());
    let first_proof: Mutex<Option<usize>> = Mutex::new(None);

    let run = |strategy: &dyn Fn(&mut SearchContext<'_, B>) -> MaxSatOutcome,
               group: usize,
               role: WorkerRole,
               width: usize| {
        let opts = options.with_portfolio_width(width);
        let mut ctx = SearchContext::<B>::new(instance, &worker_budget, &opts);
        debug_assert_eq!(ctx.shared_vars(), shared_vars);
        ctx.apply_role(&role);
        if let Some(exchange) = &exchange {
            ctx.attach_exchange(ExchangePort::new(exchange.clone(), group));
        }
        ctx.attach_bounds(bounds.clone());
        let outcome = strategy(&mut ctx);
        if matches!(outcome.status, MaxSatStatus::Optimal | MaxSatStatus::Unsat) {
            let mut slot = first_proof
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if slot.is_none() {
                *slot = Some(group);
                abort.cancel();
            }
        }
        outcome
    };

    // Each group runs behind a panic guard: a crashing strategy forfeits
    // its side of the race (its incumbent dies with it) while the survivor
    // keeps searching — the process never unwinds through the scope.
    let (linear_out, core_out) = std::thread::scope(|scope| {
        let linear = scope.spawn(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run(
                    &|ctx| LinearSatUnsat.search(ctx),
                    0,
                    WorkerRole {
                        label: "linear",
                        seed: 0,
                        sharing: None,
                    },
                    plan.linear_width,
                )
            }))
            .ok()
        });
        let core = scope.spawn(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run(
                    &|ctx| CoreGuided.search(ctx),
                    1,
                    WorkerRole {
                        label: "core-guided",
                        seed: CORE_ROLE_SEED,
                        sharing: None,
                    },
                    plan.core_width,
                )
            }))
            .ok()
        });
        (linear.join().ok().flatten(), core.join().ok().flatten())
    });

    let crashed = u64::from(linear_out.is_none()) + u64::from(core_out.is_none());
    let winner = *first_proof
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let (mut out, other) = match (linear_out, core_out) {
        (None, None) => {
            // Both racers crashed: nothing to salvage, but the caller
            // still gets a typed non-answer instead of a process panic.
            let mut telemetry = SolverTelemetry::new();
            telemetry.worker_panics = crashed;
            telemetry.strategy = Some("race");
            return MaxSatOutcome {
                status: MaxSatStatus::Unknown,
                model: None,
                cost: None,
                iterations: 0,
                quantum: 1,
                strategy: "race",
                telemetry,
            };
        }
        (Some(l), None) => (l, None),
        (None, Some(c)) => (c, None),
        (Some(l), Some(c)) => match winner {
            Some(1) => (c, Some(l)),
            Some(_) => (l, Some(c)),
            None => match (l.cost, c.cost) {
                // Budget ran dry on both: keep the better incumbent.
                (Some(lc), Some(cc)) if cc < lc => (c, Some(l)),
                (None, Some(_)) => (c, Some(l)),
                _ => (l, Some(c)),
            },
        },
    };
    // The race's total effort is both workers'; the strategy label stays
    // the winner's (absorb would otherwise take the loser's).
    let strategy = out.strategy;
    if let Some(other) = &other {
        out.telemetry.absorb(&other.telemetry);
    }
    out.telemetry.worker_panics += crashed;
    out.telemetry.strategy = Some(strategy);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::DefaultBackend;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    /// Weighted instance with a known optimum, solved by every strategy.
    fn weighted_instance() -> WcnfInstance {
        let mut inst = WcnfInstance::new();
        let a = inst.new_var().positive();
        let b = inst.new_var().positive();
        inst.add_hard([a, b]);
        inst.add_soft(5, [!a]);
        inst.add_soft(1, [!b]);
        inst
    }

    fn search_with<S: SearchStrategy>(strategy: &S, inst: &WcnfInstance) -> MaxSatOutcome {
        let mut ctx = SearchContext::<DefaultBackend>::new(
            inst,
            &ResourceBudget::unlimited(),
            &SolveOptions::default(),
        );
        strategy.search(&mut ctx)
    }

    #[test]
    fn strategies_agree_on_weighted_instance() {
        let inst = weighted_instance();
        let linear = search_with(&LinearSatUnsat, &inst);
        let core = search_with(&CoreGuided, &inst);
        assert_eq!(linear.status, MaxSatStatus::Optimal);
        assert_eq!(core.status, MaxSatStatus::Optimal);
        assert_eq!(linear.cost, Some(1));
        assert_eq!(core.cost, Some(1));
        assert_eq!(linear.strategy, "linear-sat-unsat");
        assert_eq!(core.strategy, "core-guided");
        assert_eq!(linear.telemetry.strategy, Some("linear-sat-unsat"));
        assert_eq!(core.telemetry.strategy, Some("core-guided"));
    }

    #[test]
    fn core_guided_handles_hard_unsat() {
        let mut inst = WcnfInstance::new();
        inst.reserve_vars(1);
        inst.add_hard([lit(1)]);
        inst.add_hard([lit(-1)]);
        inst.add_soft(1, [lit(1)]);
        let out = search_with(&CoreGuided, &inst);
        assert_eq!(out.status, MaxSatStatus::Unsat);
        assert!(out.model.is_none());
    }

    #[test]
    fn core_guided_relaxes_overlapping_cores() {
        // Three mutually exclusive unit softs: any two conflict, so the
        // optimum violates exactly two of them — the relaxation totalizer
        // must walk its bound upward across successive cores.
        let mut inst = WcnfInstance::new();
        let x: Vec<Lit> = (0..3).map(|_| inst.new_var().positive()).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                inst.add_hard([!x[i], !x[j]]);
            }
        }
        for &l in &x {
            inst.add_soft(1, [l]);
        }
        let out = search_with(&CoreGuided, &inst);
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(2));
    }

    #[test]
    fn core_guided_weighted_cores_split_weights() {
        // A core whose members have different weights pays the minimum and
        // keeps the residual active.
        let mut inst = WcnfInstance::new();
        let a = inst.new_var().positive();
        let b = inst.new_var().positive();
        inst.add_hard([!a, !b]); // a and b conflict
        inst.add_soft(3, [a]);
        inst.add_soft(5, [b]);
        inst.add_soft(2, [a, b]); // satisfied by either
        let out = search_with(&CoreGuided, &inst);
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(3), "violate the weight-3 soft, keep b");
    }

    /// A forced width-2 plan always races one worker per strategy — the
    /// path every heterogeneous test drives.
    fn mixed_plan(inst: &WcnfInstance) -> DispatchPlan {
        let plan = crate::dispatch::plan(
            &crate::dispatch::InstanceFeatures::of(inst),
            Strategy::Race,
            crate::dispatch::WidthHint::Forced(2),
        );
        assert_eq!((plan.linear_width, plan.core_width), (1, 1));
        plan
    }

    #[test]
    fn race_returns_optimal_and_merges_effort() {
        let inst = weighted_instance();
        let out = run_plan::<DefaultBackend>(
            &inst,
            &ResourceBudget::unlimited(),
            &SolveOptions::default(),
            mixed_plan(&inst),
        );
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(1));
        assert!(
            out.strategy == "linear-sat-unsat" || out.strategy == "core-guided",
            "winner must be one of the racing groups: {}",
            out.strategy
        );
        assert_eq!(out.telemetry.strategy, Some(out.strategy));
        // Both groups' SAT calls are charged.
        assert!(out.telemetry.sat_calls >= 2, "{}", out.telemetry);
    }

    #[test]
    fn small_auto_race_degenerates_to_one_inline_worker() {
        // The dispatcher resolves a small Auto race to a single worker of
        // the feature-preferred strategy (core-guided here — half the
        // softs are weighted); run_plan executes it inline with no race
        // machinery, and the answer matches the raced answer exactly.
        let inst = weighted_instance();
        let plan = crate::dispatch::plan(
            &crate::dispatch::InstanceFeatures::of(&inst),
            Strategy::Race,
            crate::dispatch::WidthHint::Auto,
        );
        assert_eq!((plan.linear_width, plan.core_width), (0, 1));
        let out = run_plan::<DefaultBackend>(
            &inst,
            &ResourceBudget::unlimited(),
            &SolveOptions::default(),
            plan,
        );
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(1));
        assert_eq!(out.strategy, "core-guided");

        // An unweighted objective keeps the historical linear degenerate.
        let mut unweighted = WcnfInstance::new();
        let a = unweighted.new_var().positive();
        let b = unweighted.new_var().positive();
        unweighted.add_hard([a, b]);
        unweighted.add_soft(1, [!a]);
        unweighted.add_soft(1, [!b]);
        let plan = crate::dispatch::plan(
            &crate::dispatch::InstanceFeatures::of(&unweighted),
            Strategy::Race,
            crate::dispatch::WidthHint::Auto,
        );
        assert_eq!((plan.linear_width, plan.core_width), (1, 0));
    }

    #[test]
    fn race_with_zero_budget_does_not_misreport() {
        let mut inst = WcnfInstance::new();
        let lits: Vec<Lit> = (0..20).map(|_| inst.new_var().positive()).collect();
        for w in lits.windows(2) {
            inst.add_hard([w[0], w[1]]);
        }
        for &l in &lits {
            inst.add_soft(1, [!l]);
        }
        let out = run_plan::<DefaultBackend>(
            &inst,
            &ResourceBudget::with_time(std::time::Duration::ZERO),
            &SolveOptions::default(),
            mixed_plan(&inst),
        );
        assert!(matches!(
            out.status,
            MaxSatStatus::Feasible | MaxSatStatus::Unknown
        ));
        if let (Some(model), Some(cost)) = (&out.model, out.cost) {
            assert_eq!(inst.cost_of(model), Some(cost));
        }
    }

    #[test]
    fn race_survives_panicking_racers_with_a_typed_nonanswer() {
        use sat::chaos::{silence_panic_reports, ChaosBackend, FaultPlan};
        silence_panic_reports();
        // Every solve call panics regardless of role, so both strategy
        // groups crash mid-search; the race must still return a typed
        // Unknown instead of unwinding.
        let previous = sat::chaos::install_plan(Some(FaultPlan::seeded(17).panic_prob(1.0)));
        let inst = weighted_instance();
        let out = run_plan::<ChaosBackend<DefaultBackend>>(
            &inst,
            &ResourceBudget::unlimited(),
            &SolveOptions::default(),
            mixed_plan(&inst),
        );
        sat::chaos::install_plan(previous);
        assert_eq!(out.status, MaxSatStatus::Unknown);
        assert_eq!(out.model, None);
        assert_eq!(
            out.telemetry.worker_panics, 2,
            "both crashed groups are counted"
        );
        assert_eq!(out.telemetry.strategy, Some("race"));
    }

    #[test]
    fn core_guided_crash_leaves_linear_to_finish() {
        use sat::chaos::{silence_panic_reports, ChaosBackend, FaultPlan};
        silence_panic_reports();
        // Target exactly the core-guided group's role seed: its worker
        // panics on the first solve call, and the linear group must
        // finish the race alone with a sound proof. The delay slows the
        // (untagged) linear group's solves so the core group reliably
        // reaches its panicking call before the race is decided.
        let previous = sat::chaos::install_plan(Some(
            FaultPlan::seeded(23)
                .panic_tag(CORE_ROLE_SEED)
                .delay_with(1.0, std::time::Duration::from_millis(20)),
        ));
        let inst = weighted_instance();
        let out = run_plan::<ChaosBackend<DefaultBackend>>(
            &inst,
            &ResourceBudget::unlimited(),
            &SolveOptions::default(),
            mixed_plan(&inst),
        );
        sat::chaos::install_plan(previous);
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(1));
        assert_eq!(out.strategy, "linear-sat-unsat");
        assert_eq!(
            out.telemetry.worker_panics, 1,
            "the crashed core-guided group is counted"
        );
    }

    #[test]
    fn race_bounds_are_monotone() {
        let b = RaceBounds::new();
        assert_eq!(b.lower(), 0);
        assert_eq!(b.incumbent(), u64::MAX);
        b.publish_lower(3);
        b.publish_lower(2);
        assert_eq!(b.lower(), 3, "the lower bound never regresses");
        b.publish_incumbent(9);
        b.publish_incumbent(12);
        assert_eq!(b.incumbent(), 9, "the incumbent never regresses");
    }

    #[test]
    fn linear_short_circuits_on_the_shared_lower_bound() {
        // A peer-proved lower bound equal to the optimum lets the linear
        // search skip its closing UNSAT call: same proof, one call fewer
        // (the backend is deterministic, so the model sequence matches).
        let inst = weighted_instance();
        let plain = search_with(&LinearSatUnsat, &inst);
        assert_eq!(plain.status, MaxSatStatus::Optimal);

        let mut ctx = SearchContext::<DefaultBackend>::new(
            &inst,
            &ResourceBudget::unlimited(),
            &SolveOptions::default(),
        );
        let bounds = Arc::new(RaceBounds::new());
        bounds.publish_lower(1); // the known quantized optimum
        ctx.attach_bounds(bounds);
        let out = LinearSatUnsat.search(&mut ctx);
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(1));
        assert_eq!(
            out.iterations,
            plain.iterations - 1,
            "the closing UNSAT call is skipped"
        );
    }

    #[test]
    fn core_guided_early_stop_never_claims_a_proof() {
        // A shared incumbent at the core-guided group's own lower bound
        // stops the search immediately — but as an exhausted Unknown,
        // never as a winning proof (this group holds no model).
        let inst = weighted_instance();
        let mut ctx = SearchContext::<DefaultBackend>::new(
            &inst,
            &ResourceBudget::unlimited(),
            &SolveOptions::default(),
        );
        let bounds = Arc::new(RaceBounds::new());
        bounds.publish_incumbent(0);
        ctx.attach_bounds(bounds);
        let out = CoreGuided.search(&mut ctx);
        assert_eq!(out.status, MaxSatStatus::Unknown);
        assert_eq!(out.iterations, 0, "not a single SAT call is spent");
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::LinearSatUnsat.name(), "linear-sat-unsat");
        assert_eq!(Strategy::CoreGuided.name(), "core-guided");
        assert_eq!(Strategy::Race.name(), "race");
        assert_eq!(Strategy::default(), Strategy::LinearSatUnsat);
    }
}

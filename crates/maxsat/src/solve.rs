//! The anytime MaxSAT engine's entry points and option/outcome types.
//!
//! Mirrors the behaviour of Open-WBO-Inc-MCS as the paper uses it: an
//! engine that keeps the best model found so far and returns it when the
//! budget expires — the property SATMAP relies on for large circuits. The
//! search itself is pluggable (see [`crate::strategy`]): the classic
//! model-improving [`crate::LinearSatUnsat`] loop (default), the
//! core-guided [`crate::CoreGuided`] lower-bounding search, or a
//! [`Strategy::Race`] of both with first-proof-wins semantics.
//!
//! The engine is generic over [`SatBackend`]; [`solve`] instantiates it
//! with the workspace default, and [`solve_with_backend`] lets callers
//! plug in alternatives. Budgets are deadline-based [`ResourceBudget`]s:
//! the engine arms the budget once and hands the *same deadline* to every
//! SAT call, so no call can overshoot the caller's allowance.

use sat::{ResourceBudget, SatBackend, SolverTelemetry};

use crate::dispatch::{self, DispatchPlan, InstanceFeatures, WidthHint};
use crate::session::MaxSatSession;
use crate::strategy::{
    run_plan, CoreGuided, LinearSatUnsat, SearchContext, SearchStrategy, Strategy,
};
use crate::wcnf::WcnfInstance;

/// Status of a completed MaxSAT search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MaxSatStatus {
    /// The returned model has provably minimal cost.
    Optimal,
    /// A model was found but the budget expired before proving optimality.
    Feasible,
    /// The hard clauses are unsatisfiable.
    Unsat,
    /// The budget expired before any model was found.
    Unknown,
}

/// Tunables of the MaxSAT engine beyond the resource budget.
///
/// # Examples
///
/// ```
/// use maxsat::SolveOptions;
/// let opts = SolveOptions::default().with_totalizer_units(1000);
/// assert_eq!(opts.totalizer_units, 1000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolveOptions {
    /// Number of quantization units the soft-weight range is divided into
    /// before building the generalized totalizer. The totalizer's size is
    /// bounded by the number of attainable weight sums, so heavy-weight
    /// instances are quantized down to roughly this many units; when every
    /// weight already fits (quantum 1) the search stays exact. Smaller
    /// values trade optimality precision for encoding size.
    pub totalizer_units: u64,
    /// Portfolio width requested from the backend before clauses load
    /// (see [`sat::SatBackend::set_portfolio_width`]); `None` keeps the
    /// backend's own default. Single-threaded backends ignore the hint.
    pub portfolio_width: Option<usize>,
    /// Which search strategy drives the optimization (linear SAT-UNSAT by
    /// default; see [`Strategy`]).
    pub strategy: Strategy,
    /// A pre-computed worker plan from the instance-feature dispatcher
    /// (see [`crate::dispatch`]). `None` makes the engine compute one from
    /// the instance itself; the routing layers pass richer features
    /// (device size, encoding estimate) and stamp the plan here.
    pub dispatch: Option<DispatchPlan>,
    /// Core-guided search only: partition the softs into weight strata
    /// (RC2-style, capped at [`SolveOptions::max_strata`]) and search
    /// highest-stratum-first, folding each stratum's proven bound into the
    /// next as assumptions. A no-op on uniform weights (one stratum).
    pub stratify: bool,
    /// Upper bound on the number of weight strata the partition may
    /// produce (the diversity cap); the tail merges into the last stratum.
    pub max_strata: usize,
    /// Core-guided search only: after relaxing a core, keep re-solving
    /// against the fresh totalizer's tightened bound while UNSAT persists,
    /// paying multiple weight units per core inside one search iteration.
    /// Only engages when the core's weight exceeds one quantum (unit-weight
    /// cores gain nothing per probe).
    pub core_exhaustion: bool,
    /// Core-guided search only: assert a soft hard once its remaining
    /// weight exceeds the incumbent-minus-lower-bound gap (no improving
    /// model can afford to falsify it). Automatically disabled while a
    /// clause exchange is attached — hardened clauses are sound only
    /// relative to this search's incumbent and must not leak to peers.
    pub core_hardening: bool,
    /// Core-guided search only: SAT-call cap for the destructive
    /// core-trimming pass ([`sat::trim_core`]) run before each relaxation;
    /// 0 disables trimming.
    pub core_trim_probes: u32,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            totalizer_units: 4000,
            portfolio_width: None,
            strategy: Strategy::default(),
            dispatch: None,
            stratify: true,
            max_strata: 8,
            core_exhaustion: true,
            core_hardening: true,
            core_trim_probes: 8,
        }
    }
}

impl SolveOptions {
    /// Returns a copy with the given totalizer quantization (clamped to at
    /// least 1 unit).
    pub fn with_totalizer_units(mut self, units: u64) -> Self {
        self.totalizer_units = units.max(1);
        self
    }

    /// Returns a copy requesting the given portfolio width (clamped to at
    /// least 1 worker).
    pub fn with_portfolio_width(mut self, width: usize) -> Self {
        self.portfolio_width = Some(width.max(1));
        self
    }

    /// Returns a copy selecting the given search strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Returns a copy carrying a pre-computed dispatch plan (see
    /// [`crate::dispatch::plan`]).
    pub fn with_dispatch(mut self, plan: DispatchPlan) -> Self {
        self.dispatch = Some(plan);
        self
    }

    /// Returns a copy with weight stratification switched on or off.
    pub fn with_stratify(mut self, on: bool) -> Self {
        self.stratify = on;
        self
    }

    /// Returns a copy with the given stratum diversity cap (clamped to at
    /// least 1).
    pub fn with_max_strata(mut self, cap: usize) -> Self {
        self.max_strata = cap.max(1);
        self
    }

    /// Returns a copy with core exhaustion switched on or off.
    pub fn with_core_exhaustion(mut self, on: bool) -> Self {
        self.core_exhaustion = on;
        self
    }

    /// Returns a copy with soft hardening switched on or off.
    pub fn with_core_hardening(mut self, on: bool) -> Self {
        self.core_hardening = on;
        self
    }

    /// Returns a copy with the given core-trimming probe cap (0 disables
    /// trimming).
    pub fn with_core_trim_probes(mut self, probes: u32) -> Self {
        self.core_trim_probes = probes;
        self
    }

    /// Returns a copy with every weight-aware core-guided refinement
    /// (stratification, exhaustion, hardening, trimming) switched off —
    /// the plain OLL search, kept reachable for A/B measurement.
    pub fn plain_core_guided(self) -> Self {
        self.with_stratify(false)
            .with_core_exhaustion(false)
            .with_core_hardening(false)
            .with_core_trim_probes(0)
    }
}

/// The plan this call runs under: the caller's pre-computed plan when
/// present, otherwise one sized from the instance's own features.
fn resolved_plan(instance: &WcnfInstance, options: &SolveOptions) -> DispatchPlan {
    options.dispatch.unwrap_or_else(|| {
        let hint = options
            .portfolio_width
            .map_or(WidthHint::Auto, WidthHint::Forced);
        dispatch::plan(&InstanceFeatures::of(instance), options.strategy, hint)
    })
}

/// Records the dispatch decision on the outcome's telemetry so it reaches
/// `RouteOutcome::to_json` and the NDJSON rows.
fn stamp_dispatch(outcome: &mut MaxSatOutcome, plan: DispatchPlan) {
    outcome.telemetry.dispatch_width = plan.total_width() as u32;
    outcome.telemetry.dispatch_mix = Some(plan.mix_label());
    outcome.telemetry.dispatch_sharing = plan.sharing;
    outcome.telemetry.dispatch_hardness = plan.hardness;
}

/// Result of [`solve`]: status plus the best model and its cost, if any.
#[derive(Clone, Debug)]
pub struct MaxSatOutcome {
    /// How the search ended.
    pub status: MaxSatStatus,
    /// Best model found (variable-indexed booleans), if any.
    pub model: Option<Vec<bool>>,
    /// Cost (total weight of falsified softs) of `model`.
    pub cost: Option<u64>,
    /// Number of SAT-solver invocations performed.
    pub iterations: u32,
    /// Weight quantum the totalizer was built with (`1` = exact weights;
    /// larger quanta can only claim [`MaxSatStatus::Feasible`]).
    pub quantum: u64,
    /// Name of the search strategy that produced this outcome — for a
    /// [`Strategy::Race`], the racer whose answer was kept.
    pub strategy: &'static str,
    /// Solver effort spent answering this call.
    pub telemetry: SolverTelemetry,
}

impl MaxSatOutcome {
    /// True if a model (optimal or not) is available.
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }
}

/// Solves a weighted partial MaxSAT instance with the default SAT backend.
///
/// Every soft clause gets an *indicator literal* that is true exactly when
/// the clause is falsified (unit softs reuse the negated literal; larger
/// softs get a fresh relaxer). A generalized totalizer over the indicators
/// then lets each iteration assert `cost ≤ best − 1` until UNSAT proves
/// optimality.
///
/// # Examples
///
/// ```
/// use maxsat::{WcnfInstance, solve, MaxSatStatus};
/// use sat::ResourceBudget;
///
/// let mut inst = WcnfInstance::new();
/// let a = inst.new_var().positive();
/// let b = inst.new_var().positive();
/// inst.add_hard([a, b]);      // a ∨ b
/// inst.add_soft(1, [!a]);     // prefer ¬a
/// inst.add_soft(1, [!b]);     // prefer ¬b
/// let out = solve(&inst, ResourceBudget::unlimited());
/// assert_eq!(out.status, MaxSatStatus::Optimal);
/// assert_eq!(out.cost, Some(1)); // exactly one soft must break
/// ```
pub fn solve(instance: &WcnfInstance, budget: ResourceBudget) -> MaxSatOutcome {
    solve_with_backend::<sat::DefaultBackend>(instance, budget)
}

/// [`solve`] with an explicit [`SatBackend`] implementation.
pub fn solve_with_backend<B: SatBackend + Default + Send>(
    instance: &WcnfInstance,
    budget: ResourceBudget,
) -> MaxSatOutcome {
    solve_with_options::<B>(instance, &budget, &SolveOptions::default())
}

/// [`solve`] with an explicit backend and engine tunables: dispatches the
/// selected [`Strategy`] over a freshly encoded
/// [`SearchContext`](crate::SearchContext). (`Send` bounds the backend so
/// [`Strategy::Race`] can run its heterogeneous worker groups on scoped
/// threads.)
///
/// [`Strategy::Race`] runs through the unified plan engine
/// (`crate::strategy::run_plan`): the instance-feature dispatcher sizes
/// a linear + core-guided worker set (see [`crate::dispatch`]), and small
/// instances degenerate to a single inline linear search with no race
/// overhead at all.
pub fn solve_with_options<B: SatBackend + Default + Send>(
    instance: &WcnfInstance,
    budget: &ResourceBudget,
    options: &SolveOptions,
) -> MaxSatOutcome {
    let plan = resolved_plan(instance, options);
    let mut outcome = match options.strategy {
        Strategy::LinearSatUnsat => {
            let mut ctx = SearchContext::<B>::new(instance, budget, options);
            LinearSatUnsat.search(&mut ctx)
        }
        Strategy::CoreGuided => {
            let mut ctx = SearchContext::<B>::new(instance, budget, options);
            CoreGuided.search(&mut ctx)
        }
        Strategy::Race => run_plan::<B>(instance, budget, options, plan),
    };
    stamp_dispatch(&mut outcome, plan);
    outcome
}

/// [`solve_with_options`] with warm-start session reuse: a prior solve of
/// the *same* instance leaves its solver (clause arena, learned clauses,
/// saved phases), incumbent, and strategy progress in `session`, and this
/// call resumes from all of it instead of encoding and searching from
/// scratch. On return, `session` holds the updated state for the next call.
///
/// The caller must pass the same instance the session came from — that is
/// the soundness contract, exactly as for incremental SAT solving; the
/// routing layers key sessions by a canonical request fingerprint to
/// guarantee it, and [`MaxSatSession::compatible`] additionally rejects
/// obvious shape mismatches (falling back to a cold solve, never
/// corrupting). [`Strategy::Race`] never resumes: its two racers hold
/// divergent private encodings; the session is left untouched so a later
/// non-race call can still use it.
///
/// Warm outcomes report `telemetry.warm_start = true` with
/// `telemetry.reused_clauses` counting the carried arena. See
/// [`MaxSatSession`] for the conservative-extension argument for why
/// clause reuse cannot change answers.
pub fn solve_with_session<B: SatBackend + Default + Send>(
    instance: &WcnfInstance,
    budget: &ResourceBudget,
    options: &SolveOptions,
    session: &mut Option<MaxSatSession<B>>,
) -> MaxSatOutcome {
    let plan = resolved_plan(instance, options);
    if options.strategy == Strategy::Race {
        let mut outcome = run_plan::<B>(instance, budget, options, plan);
        stamp_dispatch(&mut outcome, plan);
        return outcome;
    }
    let resumed = session.take().filter(|s| s.compatible(instance, options));
    let mut ctx = match resumed {
        Some(s) => SearchContext::resume(s, instance, budget, options),
        None => SearchContext::<B>::new(instance, budget, options),
    };
    let mut outcome = match options.strategy {
        Strategy::LinearSatUnsat => LinearSatUnsat.search(&mut ctx),
        Strategy::CoreGuided => CoreGuided.search(&mut ctx),
        Strategy::Race => unreachable!("race handled above"),
    };
    *session = Some(ctx.into_session(options.strategy, options, &outcome));
    stamp_dispatch(&mut outcome, plan);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::Lit;
    use std::time::Duration;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn pure_sat_no_softs() {
        let mut inst = WcnfInstance::new();
        inst.reserve_vars(2);
        inst.add_hard([lit(1), lit(2)]);
        let out = solve(&inst, ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(0));
    }

    #[test]
    fn hard_unsat() {
        let mut inst = WcnfInstance::new();
        inst.reserve_vars(1);
        inst.add_hard([lit(1)]);
        inst.add_hard([lit(-1)]);
        inst.add_soft(1, [lit(1)]);
        let out = solve(&inst, ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Unsat);
        assert!(!out.has_model());
    }

    #[test]
    fn paper_example_4() {
        // Hard = {¬a ∨ b}, Soft = {b, a ∧ ¬b as two clauses is not the same;
        // the paper's soft "a∧¬b" is a single conjunctive formula. We encode
        // it via a fresh variable t with t ↔ a∧¬b and soft t.
        let mut inst = WcnfInstance::new();
        let a = inst.new_var().positive();
        let b = inst.new_var().positive();
        let t = inst.new_var().positive();
        inst.add_hard([!a, b]);
        // t ↔ (a ∧ ¬b)
        inst.add_hard([!t, a]);
        inst.add_hard([!t, !b]);
        inst.add_hard([t, !a, b]);
        inst.add_soft(1, [b]);
        inst.add_soft(1, [t]);
        let out = solve(&inst, ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        // Exactly one of the two softs can hold (they are contradictory
        // under Hard), so minimal falsified weight is 1.
        assert_eq!(out.cost, Some(1));
    }

    #[test]
    fn weighted_example_12() {
        // Hard = {a ∨ b}, Soft = {(¬a, 5), (¬b, 1)} → keep ¬a, break ¬b.
        let mut inst = WcnfInstance::new();
        let a = inst.new_var().positive();
        let b = inst.new_var().positive();
        inst.add_hard([a, b]);
        inst.add_soft(5, [!a]);
        inst.add_soft(1, [!b]);
        let out = solve(&inst, ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(1));
        let m = out.model.expect("model");
        assert!(!m[a.var().index()]);
        assert!(m[b.var().index()]);
    }

    #[test]
    fn non_unit_softs() {
        // Softs are clauses, not just units.
        let mut inst = WcnfInstance::new();
        let a = inst.new_var().positive();
        let b = inst.new_var().positive();
        let c = inst.new_var().positive();
        inst.add_hard([!a, !b]); // a,b not both
        inst.add_soft(2, [a, c]);
        inst.add_soft(3, [b, c]);
        inst.add_soft(4, [!c]);
        // Setting c true satisfies the first two (weight 5) and breaks ¬c
        // (weight 4) → cost 4. Setting c false: must break one of the first
        // two (cost ≥ 2 with a=true,b=false → breaks (b∨c): cost 3; or
        // b=true: breaks (a∨c): cost 2). Optimal cost = 2.
        let out = solve(&inst, ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(2));
    }

    #[test]
    fn empty_soft_contributes_constant_cost() {
        let mut inst = WcnfInstance::new();
        let a = inst.new_var().positive();
        inst.add_hard([a]);
        inst.add_soft(7, []);
        inst.add_soft(1, [!a]);
        let out = solve(&inst, ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(8));
    }

    #[test]
    fn anytime_budget_returns_feasible_or_unknown() {
        // A larger instance with a tiny budget must not claim optimality
        // falsely and must not panic.
        let mut inst = WcnfInstance::new();
        let n = 30;
        let lits: Vec<Lit> = (0..n).map(|_| inst.new_var().positive()).collect();
        for w in lits.windows(2) {
            inst.add_hard([w[0], w[1]]);
        }
        for &l in &lits {
            inst.add_soft(1, [!l]);
        }
        let out = solve(&inst, ResourceBudget::with_time(Duration::from_millis(0)));
        assert!(matches!(
            out.status,
            MaxSatStatus::Feasible | MaxSatStatus::Unknown
        ));
    }

    #[test]
    fn telemetry_reports_effort() {
        let mut inst = WcnfInstance::new();
        let a = inst.new_var().positive();
        let b = inst.new_var().positive();
        inst.add_hard([a, b]);
        inst.add_soft(1, [!a]);
        inst.add_soft(1, [!b]);
        let out = solve(&inst, ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.telemetry.sat_calls, u64::from(out.iterations));
        assert!(out.telemetry.sat_calls >= 1);
    }

    #[test]
    fn conflict_cap_still_terminates_with_answer_or_unknown() {
        let mut inst = WcnfInstance::new();
        let lits: Vec<Lit> = (0..12).map(|_| inst.new_var().positive()).collect();
        for w in lits.windows(2) {
            inst.add_hard([w[0], w[1]]);
        }
        for &l in &lits {
            inst.add_soft(1, [!l]);
        }
        let out = solve(&inst, ResourceBudget::unlimited().conflicts_per_call(1));
        // With a 1-conflict cap per call the engine may stop early but must
        // never misreport optimality of a worse-than-found model.
        if let (Some(model), Some(cost)) = (&out.model, out.cost) {
            assert_eq!(inst.cost_of(model), Some(cost));
        }
    }

    /// A small weighted instance with a nontrivial optimum, for the
    /// session tests.
    fn session_instance() -> WcnfInstance {
        let mut inst = WcnfInstance::new();
        let lits: Vec<Lit> = (0..8).map(|_| inst.new_var().positive()).collect();
        for w in lits.windows(2) {
            inst.add_hard([w[0], w[1]]);
        }
        for (i, &l) in lits.iter().enumerate() {
            inst.add_soft(1 + (i as u64 % 3), [!l]);
        }
        inst
    }

    #[test]
    fn warm_session_reaches_the_cold_optimum_faster() {
        for strategy in [Strategy::LinearSatUnsat, Strategy::CoreGuided] {
            let inst = session_instance();
            let options = SolveOptions::default().with_strategy(strategy);
            let mut session = None;
            let cold = solve_with_session::<sat::DefaultBackend>(
                &inst,
                &ResourceBudget::unlimited(),
                &options,
                &mut session,
            );
            assert_eq!(cold.status, MaxSatStatus::Optimal);
            assert!(!cold.telemetry.warm_start);
            assert_eq!(cold.telemetry.reused_clauses, 0);
            let s = session.as_ref().expect("cold solve leaves a session");
            assert_eq!(s.best_cost(), cold.cost);
            assert!(s.reusable_clauses() > 0);

            let warm = solve_with_session::<sat::DefaultBackend>(
                &inst,
                &ResourceBudget::unlimited(),
                &options,
                &mut session,
            );
            assert_eq!(warm.status, cold.status);
            assert_eq!(warm.cost, cold.cost, "strategy {strategy:?}");
            assert!(warm.telemetry.warm_start);
            assert!(warm.telemetry.reused_clauses > 0);
            // Resuming from the proved optimum needs at most one SAT call
            // (linear: one UNSAT under the seeded bound; OLL: one SAT
            // under the carried active set).
            assert!(warm.iterations <= 1, "strategy {strategy:?}");
            assert!(session.is_some(), "warm solve re-deposits the session");
        }
    }

    #[test]
    fn incompatible_session_degrades_to_a_cold_solve() {
        let inst = session_instance();
        let options = SolveOptions::default();
        let mut session = None;
        let _ = solve_with_session::<sat::DefaultBackend>(
            &inst,
            &ResourceBudget::unlimited(),
            &options,
            &mut session,
        );
        // A different instance shape must not resume from the session.
        let mut other = WcnfInstance::new();
        let a = other.new_var().positive();
        other.add_hard([a]);
        other.add_soft(1, [!a]);
        let out = solve_with_session::<sat::DefaultBackend>(
            &other,
            &ResourceBudget::unlimited(),
            &options,
            &mut session,
        );
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(1));
        assert!(!out.telemetry.warm_start);
        // A strategy switch must not resume either (the carried totalizer
        // encoding is strategy-private).
        let core_opts = options.with_strategy(Strategy::CoreGuided);
        let out = solve_with_session::<sat::DefaultBackend>(
            &other,
            &ResourceBudget::unlimited(),
            &core_opts,
            &mut session,
        );
        assert_eq!(out.cost, Some(1));
        assert!(!out.telemetry.warm_start);
    }

    #[test]
    fn forked_sessions_warm_start_independently() {
        let inst = session_instance();
        let options = SolveOptions::default();
        let mut session = None;
        let cold = solve_with_session::<sat::DefaultBackend>(
            &inst,
            &ResourceBudget::unlimited(),
            &options,
            &mut session,
        );
        let base = session.take().expect("session recorded");
        for _ in 0..2 {
            let mut fork = Some(base.fork().expect("solver backend can snapshot"));
            let warm = solve_with_session::<sat::DefaultBackend>(
                &inst,
                &ResourceBudget::unlimited(),
                &options,
                &mut fork,
            );
            assert_eq!(warm.cost, cold.cost);
            assert!(warm.telemetry.warm_start);
        }
    }

    #[test]
    fn race_strategy_leaves_the_session_untouched() {
        let inst = session_instance();
        let options = SolveOptions::default();
        let mut session = None;
        let cold = solve_with_session::<sat::DefaultBackend>(
            &inst,
            &ResourceBudget::unlimited(),
            &options,
            &mut session,
        );
        let race_opts = options.with_strategy(Strategy::Race);
        let raced = solve_with_session::<sat::DefaultBackend>(
            &inst,
            &ResourceBudget::unlimited(),
            &race_opts,
            &mut session,
        );
        assert_eq!(raced.cost, cold.cost);
        assert!(!raced.telemetry.warm_start);
        // The linear session survived the race and still resumes.
        let warm = solve_with_session::<sat::DefaultBackend>(
            &inst,
            &ResourceBudget::unlimited(),
            &options,
            &mut session,
        );
        assert_eq!(warm.cost, cold.cost);
        assert!(warm.telemetry.warm_start);
    }

    /// Brute-force reference for small weighted instances.
    fn brute_force(inst: &WcnfInstance) -> Option<u64> {
        let n = inst.num_vars();
        assert!(n <= 16);
        let mut best: Option<u64> = None;
        for mask in 0u32..(1 << n) {
            let model: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            if let Some(c) = inst.cost_of(&model) {
                best = Some(best.map_or(c, |b: u64| b.min(c)));
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..40 {
            let n = rng.gen_range(2..=6);
            let mut inst = WcnfInstance::new();
            inst.reserve_vars(n);
            for _ in 0..rng.gen_range(0..8) {
                let len = rng.gen_range(1..=3);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(1..=n as i64);
                        Lit::from_dimacs(if rng.gen_bool(0.5) { v } else { -v })
                    })
                    .collect();
                inst.add_hard(lits);
            }
            for _ in 0..rng.gen_range(1..6) {
                let len = rng.gen_range(1..=2);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(1..=n as i64);
                        Lit::from_dimacs(if rng.gen_bool(0.5) { v } else { -v })
                    })
                    .collect();
                inst.add_soft(rng.gen_range(1..5), lits);
            }
            let expect = brute_force(&inst);
            let out = solve(&inst, ResourceBudget::unlimited());
            match expect {
                None => assert_eq!(out.status, MaxSatStatus::Unsat),
                Some(c) => {
                    assert_eq!(out.status, MaxSatStatus::Optimal);
                    assert_eq!(out.cost, Some(c));
                }
            }
        }
    }
}

//! Weighted partial MaxSAT instances and the WCNF text format.
//!
//! The paper's SATMAP tool emits WCNF and calls Open-WBO-Inc; this module
//! provides the same interchange format (classic `p wcnf <vars> <clauses>
//! <top>` header) so instances can be inspected or exported to external
//! solvers.

use std::fmt::Write as _;

use sat::Lit;

/// A soft clause: a disjunction of literals with a positive weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoftClause {
    /// Weight gained when the clause is satisfied.
    pub weight: u64,
    /// The literals of the clause.
    pub lits: Vec<Lit>,
}

/// A weighted partial MaxSAT instance: hard clauses that must hold and soft
/// clauses whose total satisfied weight is maximized.
///
/// # Examples
///
/// ```
/// use maxsat::WcnfInstance;
/// use sat::{Lit, Var};
///
/// let mut inst = WcnfInstance::new();
/// let a = inst.new_var().positive();
/// let b = inst.new_var().positive();
/// inst.add_hard([a, b]);
/// inst.add_soft(1, [!a]);
/// inst.add_soft(1, [!b]);
/// assert_eq!(inst.num_vars(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WcnfInstance {
    num_vars: usize,
    hard: Vec<Vec<Lit>>,
    soft: Vec<SoftClause>,
}

impl WcnfInstance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> sat::Var {
        let v = sat::Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a hard clause.
    pub fn add_hard<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.hard.push(lits);
    }

    /// Adds a soft clause with the given `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `weight == 0`.
    pub fn add_soft<I: IntoIterator<Item = Lit>>(&mut self, weight: u64, lits: I) {
        assert!(weight > 0, "soft clause weight must be positive");
        let lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.soft.push(SoftClause { weight, lits });
    }

    /// The hard clauses.
    pub fn hard_clauses(&self) -> &[Vec<Lit>] {
        &self.hard
    }

    /// The soft clauses.
    pub fn soft_clauses(&self) -> &[SoftClause] {
        &self.soft
    }

    /// Sum of all soft weights (the worst possible cost plus one is used as
    /// the WCNF "top" weight).
    pub fn total_soft_weight(&self) -> u64 {
        self.soft.iter().map(|s| s.weight).sum()
    }

    /// Cost of `model` (indexed by variable): total weight of *falsified*
    /// soft clauses, or `None` if a hard clause is violated.
    pub fn cost_of(&self, model: &[bool]) -> Option<u64> {
        let sat_lit =
            |l: &Lit| model.get(l.var().index()).copied().unwrap_or(false) == l.is_positive();
        for h in &self.hard {
            if !h.iter().any(&sat_lit) {
                return None;
            }
        }
        Some(
            self.soft
                .iter()
                .filter(|s| !s.lits.iter().any(&sat_lit))
                .map(|s| s.weight)
                .sum(),
        )
    }

    /// Renders the instance in classic WCNF format.
    pub fn to_wcnf(&self) -> String {
        let top = self.total_soft_weight() + 1;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "p wcnf {} {} {}",
            self.num_vars,
            self.hard.len() + self.soft.len(),
            top
        );
        for h in &self.hard {
            let _ = write!(out, "{top} ");
            for l in h {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        for s in &self.soft {
            let _ = write!(out, "{} ", s.weight);
            for l in &s.lits {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Parses a classic-format WCNF document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line.
    pub fn parse_wcnf(text: &str) -> Result<Self, String> {
        let mut inst = WcnfInstance::new();
        let mut top: Option<u64> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.first() != Some(&"wcnf") || parts.len() < 4 {
                    return Err(format!("line {}: bad wcnf header", lineno + 1));
                }
                let vars: usize = parts[1]
                    .parse()
                    .map_err(|_| format!("line {}: bad var count", lineno + 1))?;
                inst.reserve_vars(vars);
                top = Some(
                    parts[3]
                        .parse()
                        .map_err(|_| format!("line {}: bad top weight", lineno + 1))?,
                );
                continue;
            }
            let mut toks = line.split_whitespace();
            let weight: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: missing weight", lineno + 1))?;
            let mut lits = Vec::new();
            for t in toks {
                let v: i64 = t
                    .parse()
                    .map_err(|_| format!("line {}: bad literal '{t}'", lineno + 1))?;
                if v == 0 {
                    break;
                }
                lits.push(Lit::from_dimacs(v));
            }
            match top {
                Some(t) if weight >= t => inst.add_hard(lits),
                _ => inst.add_soft(weight, lits),
            }
        }
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn wcnf_round_trip() {
        let mut inst = WcnfInstance::new();
        inst.reserve_vars(3);
        inst.add_hard([lit(1), lit(-2)]);
        inst.add_soft(5, [lit(3)]);
        inst.add_soft(2, [lit(-1), lit(2)]);
        let text = inst.to_wcnf();
        let parsed = WcnfInstance::parse_wcnf(&text).expect("parses");
        assert_eq!(parsed.hard_clauses().len(), 1);
        assert_eq!(parsed.soft_clauses().len(), 2);
        assert_eq!(parsed.total_soft_weight(), 7);
    }

    #[test]
    fn cost_of_model() {
        let mut inst = WcnfInstance::new();
        inst.reserve_vars(2);
        inst.add_hard([lit(1)]);
        inst.add_soft(3, [lit(2)]);
        // x1=true, x2=false: hard ok, soft falsified.
        assert_eq!(inst.cost_of(&[true, false]), Some(3));
        // x1=false violates the hard clause.
        assert_eq!(inst.cost_of(&[false, true]), None);
        assert_eq!(inst.cost_of(&[true, true]), Some(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let mut inst = WcnfInstance::new();
        inst.add_soft(0, [lit(1)]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(WcnfInstance::parse_wcnf("p cnf 1 1\n").is_err());
        assert!(WcnfInstance::parse_wcnf("p wcnf a b c\n").is_err());
        assert!(WcnfInstance::parse_wcnf("nonsense\n").is_err());
    }
}

//! Strategy-equivalence properties: `LinearSatUnsat`, `CoreGuided`, and
//! the first-proof-wins race must report identical optimal costs on random
//! small weighted instances (exact search, quantum = 1), plus directed
//! regressions on the pigeonhole placement family where the core-guided
//! strategy must reach the proof in fewer SAT calls — and win the race
//! with cross-call clause imports on the books.

use maxsat::{
    solve_with_options, MaxSatOutcome, MaxSatStatus, SolveOptions, Strategy, WcnfInstance,
};
use proptest::prelude::*;
use sat::{DefaultBackend, Lit, PortfolioBackend, ResourceBudget};

/// Brute-force reference for small weighted instances: minimal falsified
/// soft weight over all assignments, `None` when the hards are UNSAT.
fn brute_force(inst: &WcnfInstance) -> Option<u64> {
    let n = inst.num_vars();
    assert!(n <= 16);
    let mut best: Option<u64> = None;
    for mask in 0u32..(1 << n) {
        let model: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        if let Some(c) = inst.cost_of(&model) {
            best = Some(best.map_or(c, |b: u64| b.min(c)));
        }
    }
    best
}

fn solve_strategy(inst: &WcnfInstance, strategy: Strategy) -> MaxSatOutcome {
    // A huge unit count keeps quantum = 1 (exact) on these tiny weights.
    let options = SolveOptions::default()
        .with_totalizer_units(u64::MAX)
        .with_strategy(strategy);
    solve_with_options::<DefaultBackend>(inst, &ResourceBudget::unlimited(), &options)
}

/// The pigeonhole placement family: hard per-hole exclusivity, a
/// `placed_p ↔ (x_p0 ∨ … ∨ x_p,h−1)` definition per pigeon, and a *unit*
/// soft on each `placed_p`. Optimum is `max(0, pigeons - holes)`.
///
/// The unit-soft shape matters: the solver's negative default phase makes
/// the first incumbent place nobody, and phase saving walks the linear
/// strategy's bound down one pigeon per SAT call — while the core-guided
/// strategy assumes everyone placed up front and needs only one core per
/// pigeon that genuinely cannot fit.
fn placement(pigeons: usize, holes: usize) -> WcnfInstance {
    let mut inst = WcnfInstance::new();
    let cell = |p: usize, h: usize| sat::Var::new(p * holes + h).positive();
    let placed = |p: usize| sat::Var::new(pigeons * holes + p).positive();
    inst.reserve_vars(pigeons * holes + pigeons);
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                inst.add_hard([!cell(p1, h), !cell(p2, h)]);
            }
        }
    }
    for p in 0..pigeons {
        // placed_p → some hole; any hole → placed_p.
        let mut row: Vec<sat::Lit> = vec![!placed(p)];
        row.extend((0..holes).map(|h| cell(p, h)));
        inst.add_hard(row);
        for h in 0..holes {
            inst.add_hard([!cell(p, h), placed(p)]);
        }
        inst.add_soft(1, [placed(p)]);
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The weight-aware refinements (stratification, core exhaustion, soft
    /// hardening — all on by default) are conservative: on random weighted
    /// instances whose distinct unit-soft weights arm the diversity gate,
    /// the refined search reports the same cost as brute force and as a
    /// plain `CoreGuided` with every refinement disabled.
    #[test]
    fn weighted_refinements_match_brute_force_and_plain_core_guided(
        num_vars in 3usize..=7,
        hard in prop::collection::vec(
            prop::collection::vec((1i64..=7, prop::bool::ANY), 1..=3), 0..10),
    ) {
        let m = num_vars as i64;
        let clamp = |(v, neg): (i64, bool)| {
            let v = (v - 1) % m + 1;
            Lit::from_dimacs(if neg { -v } else { v })
        };
        let mut inst = WcnfInstance::new();
        inst.reserve_vars(num_vars);
        for c in hard {
            inst.add_hard(c.into_iter().map(clamp));
        }
        // One unit soft per variable with pairwise-distinct weights, so
        // distinct² > soft-count and the stratified path actually runs.
        for v in 0..num_vars {
            inst.add_soft(v as u64 + 2, [sat::Var::new(v).positive()]);
        }

        let expect = brute_force(&inst);
        let refined = solve_strategy(&inst, Strategy::CoreGuided);
        let plain_options = SolveOptions::default()
            .with_totalizer_units(u64::MAX)
            .with_strategy(Strategy::CoreGuided)
            .plain_core_guided();
        let plain = solve_with_options::<DefaultBackend>(
            &inst, &ResourceBudget::unlimited(), &plain_options);
        for (label, out) in [("refined", &refined), ("plain", &plain)] {
            match expect {
                None => prop_assert_eq!(out.status, MaxSatStatus::Unsat, "{}", label),
                Some(c) => {
                    prop_assert_eq!(out.status, MaxSatStatus::Optimal, "{}", label);
                    prop_assert_eq!(out.cost, Some(c), "{}", label);
                    let model = out.model.as_ref().expect("optimal implies model");
                    prop_assert_eq!(inst.cost_of(model), Some(c), "{}", label);
                }
            }
        }
    }

    /// All three strategies agree with each other — and with brute force —
    /// on random small weighted partial MaxSAT instances.
    #[test]
    fn strategies_report_identical_optimal_costs(
        num_vars in 2usize..=6,
        hard in prop::collection::vec(
            prop::collection::vec((1i64..=6, prop::bool::ANY), 1..=3), 0..8),
        soft in prop::collection::vec(
            (prop::collection::vec((1i64..=6, prop::bool::ANY), 1..=2), 1u64..5), 1..6),
    ) {
        let m = num_vars as i64;
        let clamp = |(v, neg): (i64, bool)| {
            let v = (v - 1) % m + 1;
            Lit::from_dimacs(if neg { -v } else { v })
        };
        let mut inst = WcnfInstance::new();
        inst.reserve_vars(num_vars);
        for c in hard {
            inst.add_hard(c.into_iter().map(clamp));
        }
        for (c, w) in soft {
            inst.add_soft(w, c.into_iter().map(clamp));
        }

        let expect = brute_force(&inst);
        let linear = solve_strategy(&inst, Strategy::LinearSatUnsat);
        let core = solve_strategy(&inst, Strategy::CoreGuided);
        let race = solve_strategy(&inst, Strategy::Race);
        for (label, out) in [("linear", &linear), ("core-guided", &core), ("race", &race)] {
            match expect {
                None => prop_assert_eq!(out.status, MaxSatStatus::Unsat, "{}", label),
                Some(c) => {
                    prop_assert_eq!(out.status, MaxSatStatus::Optimal, "{}", label);
                    prop_assert_eq!(out.cost, Some(c), "{}", label);
                    let model = out.model.as_ref().expect("optimal implies model");
                    prop_assert_eq!(inst.cost_of(model), Some(c), "{}", label);
                }
            }
        }
    }
}

#[test]
fn core_guided_wins_satisfiable_pigeonhole_in_fewer_calls() {
    // Everybody fits (optimum 0), but the default negative phase starts
    // the linear search from a nobody-placed incumbent and walks the
    // bound down, while core-guided's all-placed assumptions are
    // satisfiable on the very first call.
    let inst = placement(6, 6);
    let linear = solve_strategy(&inst, Strategy::LinearSatUnsat);
    let core = solve_strategy(&inst, Strategy::CoreGuided);
    assert_eq!(linear.status, MaxSatStatus::Optimal);
    assert_eq!(core.status, MaxSatStatus::Optimal);
    assert_eq!(linear.cost, Some(0));
    assert_eq!(core.cost, Some(0));
    assert_eq!(core.iterations, 1, "assumptions are satisfiable outright");
    assert!(
        core.iterations < linear.iterations,
        "core-guided must prove the pigeonhole optimum in fewer SAT calls \
         ({} vs {})",
        core.iterations,
        linear.iterations
    );
}

#[test]
fn overfull_pigeonhole_pays_one_core_per_extra_pigeon() {
    // One pigeon too many: a single core raises the lower bound to the
    // optimum, so core-guided needs exactly one UNSAT and one SAT call.
    let inst = placement(5, 4);
    let core = solve_strategy(&inst, Strategy::CoreGuided);
    assert_eq!(core.status, MaxSatStatus::Optimal);
    assert_eq!(core.cost, Some(1));
    assert_eq!(core.iterations, 2, "one core, then the optimal model");
    let linear = solve_strategy(&inst, Strategy::LinearSatUnsat);
    assert_eq!(linear.cost, Some(1));
    assert!(core.iterations < linear.iterations);
}

/// Four clauses over `(gate, x, y)` whose conjunction forces `¬gate`,
/// but only through a case split on `x`/`y` — never by unit propagation
/// at assumption level (every clause still has two free literals once
/// `gate` is assumed).
fn add_search_refuted(inst: &mut WcnfInstance, gate: Lit) {
    let x = inst.new_var().positive();
    let y = inst.new_var().positive();
    inst.add_hard([!gate, x, y]);
    inst.add_hard([!gate, !x, y]);
    inst.add_hard([!gate, x, !y]);
    inst.add_hard([!gate, !x, !y]);
}

#[test]
fn exhaustion_pays_extra_weight_units_inside_one_relaxation() {
    // Exhaustion only ever pays on a *non-minimal* core (a minimal core
    // always admits a model violating exactly one member). Plant one: the
    // binary chain a→p, b→¬p makes {a, b} the first, propagation-found
    // core, while two search-only gadgets force ¬a and ¬b individually —
    // so every model violates BOTH core members and the probe at totalizer
    // bound 2 is UNSAT, paying a second min-weight unit inside the same
    // relaxation.
    let mut inst = WcnfInstance::new();
    let a = inst.new_var().positive();
    let b = inst.new_var().positive();
    let p = inst.new_var().positive();
    inst.add_hard([!a, p]);
    inst.add_hard([!b, !p]);
    add_search_refuted(&mut inst, a);
    add_search_refuted(&mut inst, b);
    inst.add_soft(5, [a]);
    inst.add_soft(6, [b]);

    let out = solve_strategy(&inst, Strategy::CoreGuided);
    assert_eq!(out.status, MaxSatStatus::Optimal);
    assert_eq!(out.cost, Some(11));
    assert_eq!(out.cost, brute_force(&inst));
    assert!(
        out.telemetry.exhaustion_steps > 0,
        "the bound-2 probe must pay a counted exhaustion step: {}",
        out.telemetry
    );
    // Cost-equal to the un-refined search, as always.
    let plain_options = SolveOptions::default()
        .with_totalizer_units(u64::MAX)
        .with_strategy(Strategy::CoreGuided)
        .plain_core_guided();
    let plain =
        solve_with_options::<DefaultBackend>(&inst, &ResourceBudget::unlimited(), &plain_options);
    assert_eq!(plain.cost, Some(11));
}

/// Appends `pairs` mutually exclusive weighted soft pairs — unit
/// propagation yields one tiny core per pair for the core-guided search,
/// while the linear search must build one global weighted totalizer over
/// all of them and refute its final bound through a joint counting proof.
fn add_weighted_pairs(inst: &mut WcnfInstance, pairs: usize) {
    let base = inst.num_vars();
    inst.reserve_vars(base + 2 * pairs);
    for i in 0..pairs {
        let a = sat::Var::new(base + 2 * i).positive();
        let b = sat::Var::new(base + 2 * i + 1).positive();
        inst.add_hard([!a, !b]);
        inst.add_soft(2 * i as u64 + 1, [a]);
        inst.add_soft(2 * i as u64 + 2, [b]);
    }
}

/// Appends one pigeonhole placement block over fresh variables, in the
/// raw soft-row shape (each pigeon's row is itself the soft clause):
/// learned clauses stay over the cell variables, which keeps them inside
/// the racers' shared prefix and below the exchange's glue threshold.
fn add_placement_block(inst: &mut WcnfInstance, pigeons: usize, holes: usize) {
    let base = inst.num_vars();
    let cell = |p: usize, h: usize| sat::Var::new(base + p * holes + h).positive();
    inst.reserve_vars(base + pigeons * holes);
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                inst.add_hard([!cell(p1, h), !cell(p2, h)]);
            }
        }
    }
    for p in 0..pigeons {
        inst.add_soft(1, (0..holes).map(|h| cell(p, h)));
    }
}

/// A *hard* satisfiable permutation block (n pigeons, n holes, rows and
/// exclusivity all hard): every SAT call of every strategy must re-search
/// it, so both racers keep publishing shared-prefix lemmas throughout the
/// race — the traffic behind the cross-call-import acceptance probe.
fn add_hard_permutation(inst: &mut WcnfInstance, n: usize) {
    let base = inst.num_vars();
    let cell = |p: usize, h: usize| sat::Var::new(base + p * n + h).positive();
    inst.reserve_vars(base + n * n);
    for h in 0..n {
        for p1 in 0..n {
            for p2 in (p1 + 1)..n {
                inst.add_hard([!cell(p1, h), !cell(p2, h)]);
            }
        }
    }
    for p in 0..n {
        inst.add_hard((0..n).map(|h| cell(p, h)));
    }
}

#[test]
fn race_on_pigeonhole_family_is_won_by_core_guided_with_cross_call_imports() {
    // The acceptance probe: weighted exclusive pairs, two overfull
    // pigeonhole blocks, and a hard satisfiable permutation block.
    // Core-guided pays one propagation-cheap core per pair and one
    // refutation per block (order-of-magnitude faster than the linear
    // search's global weighted totalizer and joint counting proof,
    // measured ~35x in release and ~40x in debug), so it wins the race
    // deterministically — and its later calls import lemmas published
    // into the racers' shared exchange during earlier calls (nonzero
    // cross-call imports; probed at 26-103 across repeated runs). Width 2
    // splits into width-1 backends that ride the race-level exchange.
    let mut inst = WcnfInstance::new();
    add_weighted_pairs(&mut inst, 30);
    add_placement_block(&mut inst, 7, 6);
    add_placement_block(&mut inst, 6, 5);
    add_hard_permutation(&mut inst, 9);
    // Optimum: min weight of each pair (Σ (2i+1) for i < 30) plus one
    // unplaced pigeon per block.
    let expected: u64 = (0..30).map(|i| 2 * i as u64 + 1).sum::<u64>() + 2;

    let options = SolveOptions::default()
        .with_totalizer_units(u64::MAX)
        .with_strategy(Strategy::Race)
        .with_portfolio_width(2);
    let out = solve_with_options::<PortfolioBackend<DefaultBackend>>(
        &inst,
        &ResourceBudget::unlimited(),
        &options,
    );
    assert_eq!(out.status, MaxSatStatus::Optimal);
    assert_eq!(out.cost, Some(expected));
    assert_eq!(
        out.strategy, "core-guided",
        "the core-guided racer must win the pair+placement race"
    );
    assert_eq!(out.telemetry.strategy, Some("core-guided"));
    assert!(
        out.telemetry.cross_call_imports > 0,
        "later SAT calls must reuse lemmas exported during earlier ones: {}",
        out.telemetry
    );
}

/// The full acceptance-probe instance: weighted exclusive pairs, two
/// overfull placement blocks, a hard permutation block. 60 distinct soft
/// weights over 73 softs arm the diversity gate, so the stratified path
/// (and hardening against stratum-fold incumbents) genuinely runs.
fn diverse_weighted_instance() -> (WcnfInstance, u64) {
    let mut inst = WcnfInstance::new();
    add_weighted_pairs(&mut inst, 30);
    add_placement_block(&mut inst, 7, 6);
    add_placement_block(&mut inst, 6, 5);
    add_hard_permutation(&mut inst, 9);
    let expected: u64 = (0..30).map(|i| 2 * i as u64 + 1).sum::<u64>() + 2;
    (inst, expected)
}

#[test]
fn stratified_search_records_strata_and_hardened_softs() {
    let (inst, expected) = diverse_weighted_instance();
    let out = solve_strategy(&inst, Strategy::CoreGuided);
    assert_eq!(out.status, MaxSatStatus::Optimal);
    assert_eq!(out.cost, Some(expected));
    assert!(
        out.telemetry.strata > 1,
        "60 distinct weights must stratify: {}",
        out.telemetry
    );
    assert!(
        out.telemetry.hardened_softs > 0,
        "heavy softs must harden against the stratum-fold incumbents: {}",
        out.telemetry
    );
}

#[test]
fn warm_started_stratified_solve_resumes_mid_stratum() {
    // A conflict-starved first solve stops with the heaviest stratum still
    // in flight and the lighter strata pending; the session records both.
    // The unlimited resume must pick the search up from that state and
    // still land on the true optimum — the stashed bounds travel as
    // assumptions, so the carried clause DB stays a conservative
    // extension.
    let (inst, expected) = diverse_weighted_instance();
    let options = SolveOptions::default()
        .with_totalizer_units(u64::MAX)
        .with_strategy(Strategy::CoreGuided);
    let mut session = None;
    let starved = ResourceBudget::unlimited().conflicts_per_call(0);
    let first =
        maxsat::solve_with_session::<DefaultBackend>(&inst, &starved, &options, &mut session);
    assert_ne!(first.status, MaxSatStatus::Optimal);
    assert!(
        first.telemetry.strata > 1,
        "the interrupted solve already stratified: {}",
        first.telemetry
    );
    assert!(session.is_some(), "an interrupted solve leaves a session");

    let warm = maxsat::solve_with_session::<DefaultBackend>(
        &inst,
        &ResourceBudget::unlimited(),
        &options,
        &mut session,
    );
    assert_eq!(warm.status, MaxSatStatus::Optimal);
    assert_eq!(warm.cost, Some(expected));
    assert!(warm.telemetry.warm_start, "{}", warm.telemetry);
    let model = warm.model.as_ref().expect("optimal implies model");
    assert_eq!(inst.cost_of(model), Some(expected));
}

#[test]
fn race_equals_linear_across_widths() {
    // Same costs whether the race runs over serial backends or sharing
    // portfolios — racing and sharing change the route, never the answer.
    for pigeons in 3..=5usize {
        let inst = placement(pigeons, 3);
        let linear = solve_strategy(&inst, Strategy::LinearSatUnsat);
        let options = SolveOptions::default()
            .with_strategy(Strategy::Race)
            .with_portfolio_width(2);
        let race = solve_with_options::<PortfolioBackend<DefaultBackend>>(
            &inst,
            &ResourceBudget::unlimited(),
            &options,
        );
        assert_eq!(race.status, linear.status, "placement({pigeons}, 3)");
        assert_eq!(race.cost, linear.cost, "placement({pigeons}, 3)");
    }
}

//! Logical quantum circuits.

use crate::gate::{Gate, Qubit, TwoQubitKind};

/// A logical quantum circuit: an ordered sequence of gate applications over
/// `num_qubits` logical qubits.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Gate};
/// let mut c = Circuit::new(3);
/// c.push(Gate::h(0));
/// c.push(Gate::cx(0, 1));
/// c.push(Gate::cx(1, 2));
/// assert_eq!(c.num_two_qubit_gates(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    name: String,
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` logical qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            name: String::new(),
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates an empty named circuit.
    pub fn named(name: &str, num_qubits: usize) -> Self {
        Circuit {
            name: name.to_string(),
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// The circuit's name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    /// Number of logical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of range or a two-qubit gate has equal
    /// operands.
    pub fn push(&mut self, gate: Gate) {
        assert!(
            gate.min_qubits() <= self.num_qubits,
            "gate operand out of range"
        );
        if let Gate::Two { a, b, .. } = &gate {
            assert_ne!(a, b, "two-qubit gate operands must differ");
        }
        self.gates.push(gate);
    }

    /// All gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates (the size measure used throughout the
    /// paper's evaluation).
    pub fn num_two_qubit_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// The two-qubit interactions in program order: `(gate_index, a, b)`.
    pub fn two_qubit_interactions(&self) -> Vec<(usize, Qubit, Qubit)> {
        self.gates
            .iter()
            .enumerate()
            .filter_map(|(i, g)| match g {
                Gate::Two { a, b, .. } => Some((i, *a, *b)),
                Gate::One { .. } => None,
            })
            .collect()
    }

    /// Splits the circuit into consecutive slices of at most
    /// `two_qubit_gates_per_slice` two-qubit gates each (the paper's "slice
    /// size"), keeping single-qubit gates attached to the slice of the next
    /// two-qubit gate (trailing single-qubit gates join the last slice).
    ///
    /// # Panics
    ///
    /// Panics if `two_qubit_gates_per_slice == 0`.
    pub fn slices(&self, two_qubit_gates_per_slice: usize) -> Vec<Circuit> {
        assert!(two_qubit_gates_per_slice > 0, "slice size must be positive");
        let mut out = Vec::new();
        let mut current = Circuit::new(self.num_qubits);
        let mut pending: Vec<Gate> = Vec::new(); // 1q gates awaiting their 2q gate
        let mut count = 0;
        for g in &self.gates {
            if !g.is_two_qubit() {
                pending.push(g.clone());
                continue;
            }
            if count == two_qubit_gates_per_slice {
                out.push(std::mem::replace(
                    &mut current,
                    Circuit::new(self.num_qubits),
                ));
                count = 0;
            }
            for p in pending.drain(..) {
                current.push(p);
            }
            current.push(g.clone());
            count += 1;
        }
        for p in pending {
            current.push(p); // trailing 1q gates join the last slice
        }
        if !current.is_empty() || out.is_empty() {
            out.push(current);
        }
        out
    }

    /// Concatenates `other` onto this circuit.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit has.
    pub fn extend_from(&mut self, other: &Circuit) {
        assert!(other.num_qubits <= self.num_qubits, "qubit count mismatch");
        for g in &other.gates {
            self.push(g.clone());
        }
    }

    /// Repeats this circuit `times` times (the cyclic structure of QAOA).
    pub fn repeated(&self, times: usize) -> Circuit {
        let mut out = Circuit::named(&format!("{}x{}", self.name, times), self.num_qubits);
        for _ in 0..times {
            out.extend_from(self);
        }
        out
    }

    /// Partitions gates into topological layers: gates in a layer act on
    /// disjoint qubits, and every gate appears after all gates it depends
    /// on. Returns gate indices per layer.
    pub fn topological_layers(&self) -> Vec<Vec<usize>> {
        let mut layer_of_qubit: Vec<usize> = vec![0; self.num_qubits];
        let mut layers: Vec<Vec<usize>> = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            let layer = g
                .qubits()
                .iter()
                .map(|q| layer_of_qubit[q.0])
                .max()
                .unwrap_or(0);
            if layer == layers.len() {
                layers.push(Vec::new());
            }
            layers[layer].push(i);
            for q in g.qubits() {
                layer_of_qubit[q.0] = layer + 1;
            }
        }
        layers
    }

    /// The set of distinct interacting logical-qubit pairs with multiplicity
    /// (the "interaction graph"), as `((min, max), count)` sorted by pair.
    pub fn interaction_histogram(&self) -> Vec<((usize, usize), usize)> {
        use std::collections::BTreeMap;
        let mut hist: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for g in &self.gates {
            if let Gate::Two { a, b, .. } = g {
                let key = (a.0.min(b.0), a.0.max(b.0));
                *hist.entry(key).or_default() += 1;
            }
        }
        hist.into_iter().collect()
    }

    /// Appends a CX (convenience used pervasively by generators/tests).
    pub fn cx(&mut self, a: usize, b: usize) {
        self.push(Gate::cx(a, b));
    }

    /// Appends an H gate.
    pub fn h(&mut self, q: usize) {
        self.push(Gate::h(q));
    }

    /// Appends an RZZ interaction with angle `theta`.
    pub fn rzz(&mut self, a: usize, b: usize, theta: f64) {
        self.push(Gate::Two {
            kind: TwoQubitKind::Rzz,
            a: Qubit(a),
            b: Qubit(b),
            param: Some(theta),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::OneQubitKind;

    fn sample() -> Circuit {
        // The paper's Fig. 3(a) running example.
        let mut c = Circuit::named("fig3", 4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        c
    }

    #[test]
    fn counts() {
        let c = sample();
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_two_qubit_gates(), 4);
        assert_eq!(c.two_qubit_interactions().len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_operand() {
        let mut c = Circuit::new(2);
        c.cx(0, 2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn rejects_equal_operands() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }

    #[test]
    fn slicing_by_two_qubit_count() {
        let mut c = sample();
        c.h(0); // trailing 1q gate
        let slices = c.slices(2);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].num_two_qubit_gates(), 2);
        assert_eq!(slices[1].num_two_qubit_gates(), 2);
        assert_eq!(slices[1].len(), 3); // includes the trailing H
                                        // Re-assembly preserves the circuit.
        let mut rebuilt = Circuit::new(4);
        for s in &slices {
            rebuilt.extend_from(s);
        }
        assert_eq!(rebuilt.gates(), c.gates());
    }

    #[test]
    fn one_qubit_gates_attach_to_following_slice() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.h(0); // belongs to the next slice (precedes its 2q gate)
        c.cx(0, 1);
        let slices = c.slices(1);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].len(), 1);
        assert_eq!(slices[1].len(), 2);
    }

    #[test]
    fn empty_circuit_slices() {
        let c = Circuit::new(3);
        let slices = c.slices(10);
        assert_eq!(slices.len(), 1);
        assert!(slices[0].is_empty());
    }

    #[test]
    fn repetition() {
        let c = sample();
        let r = c.repeated(3);
        assert_eq!(r.num_two_qubit_gates(), 12);
        assert_eq!(r.num_qubits(), 4);
    }

    #[test]
    fn layers_respect_dependencies() {
        let mut c = Circuit::new(3);
        c.cx(0, 1); // layer 0
        c.cx(1, 2); // layer 1 (depends on q1)
        c.push(Gate::One {
            kind: OneQubitKind::H,
            qubit: Qubit(0),
            param: None,
        }); // layer 1 (q0 free after layer 0)
        let layers = c.topological_layers();
        assert_eq!(layers, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn interaction_histogram_counts_pairs() {
        let c = sample();
        let hist = c.interaction_histogram();
        assert_eq!(
            hist,
            vec![((0, 1), 1), ((0, 2), 1), ((0, 3), 1), ((2, 3), 1)]
        );
    }
}

//! Circuit generators.
//!
//! The paper evaluates on 160 circuits derived from RevLib, Quipper, and
//! ScaffoldCC. We do not ship those artifacts; these generators produce the
//! same *families* — reversible arithmetic built from Toffoli/CNOT
//! networks, QFT, Ising chains, graycode chains — at controlled sizes (see
//! DESIGN.md, substitutions table).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;
use crate::gate::{Gate, OneQubitKind, Qubit};

fn one(c: &mut Circuit, kind: OneQubitKind, q: usize) {
    c.push(Gate::One {
        kind,
        qubit: Qubit(q),
        param: None,
    });
}

fn rz(c: &mut Circuit, q: usize, angle: f64) {
    c.push(Gate::One {
        kind: OneQubitKind::Rz,
        qubit: Qubit(q),
        param: Some(angle),
    });
}

/// Appends the standard 6-CNOT decomposition of a Toffoli (CCX) gate with
/// controls `a`, `b` and target `t`.
pub fn push_toffoli(c: &mut Circuit, a: usize, b: usize, t: usize) {
    one(c, OneQubitKind::H, t);
    c.cx(b, t);
    one(c, OneQubitKind::Tdg, t);
    c.cx(a, t);
    one(c, OneQubitKind::T, t);
    c.cx(b, t);
    one(c, OneQubitKind::Tdg, t);
    c.cx(a, t);
    one(c, OneQubitKind::T, b);
    one(c, OneQubitKind::T, t);
    one(c, OneQubitKind::H, t);
    c.cx(a, b);
    one(c, OneQubitKind::T, a);
    one(c, OneQubitKind::Tdg, b);
    c.cx(a, b);
}

/// Quantum Fourier transform on `n` qubits, controlled phases decomposed
/// into two CNOTs and an RZ each.
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::named(&format!("qft_{n}"), n);
    for i in 0..n {
        c.h(i);
        for j in (i + 1)..n {
            let angle = std::f64::consts::PI / (1 << (j - i)) as f64;
            // Controlled-phase decomposition cp(j → i).
            rz(&mut c, i, angle / 2.0);
            c.cx(j, i);
            rz(&mut c, i, -angle / 2.0);
            c.cx(j, i);
        }
    }
    c
}

/// A transverse-field Ising-model simulation circuit: `layers` rounds of
/// nearest-neighbor ZZ couplings along a line plus single-qubit rotations
/// (matches the `ising_model_*` benchmarks).
pub fn ising_model(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::named(&format!("ising_model_{n}"), n);
    for layer in 0..layers {
        for q in 0..n {
            rz(&mut c, q, 0.1 * (layer + 1) as f64);
        }
        for q in 0..n.saturating_sub(1) {
            // ZZ interaction decomposed as CX · RZ · CX.
            c.cx(q, q + 1);
            rz(&mut c, q + 1, 0.3);
            c.cx(q, q + 1);
        }
    }
    c
}

/// Graycode chain: a ladder of CNOTs along a line (matches `graycode6_47`).
pub fn graycode(n: usize) -> Circuit {
    let mut c = Circuit::named(&format!("graycode{n}"), n);
    for q in 0..n.saturating_sub(1) {
        c.cx(q, q + 1);
    }
    c
}

/// A Cuccaro-style ripple-carry adder on two `bits`-bit registers plus
/// carry-in/out ancillas (`2 * bits + 2` qubits), built from MAJ/UMA blocks.
pub fn ripple_adder(bits: usize) -> Circuit {
    assert!(bits >= 1, "adder needs at least one bit");
    let n = 2 * bits + 2;
    let mut c = Circuit::named(&format!("adder_{bits}"), n);
    // Register layout: cin = 0, a_i = 1 + 2i, b_i = 2 + 2i, cout = n - 1.
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        push_toffoli(c, x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        push_toffoli(c, x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };
    maj(&mut c, 0, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(bits - 1), n - 1);
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, 0, b(0), a(0));
    c
}

/// A reversible "mod counter" network in the spirit of RevLib's `4mod5` /
/// `mod5d1` circuits: `rounds` rounds of Toffolis with rotating
/// controls/target followed by a CNOT cascade.
pub fn mod_counter(n: usize, rounds: usize) -> Circuit {
    assert!(n >= 3, "mod counter needs at least 3 qubits");
    let mut c = Circuit::named(&format!("mod{n}_counter"), n);
    for r in 0..rounds {
        let a = r % n;
        let b = (r + 1) % n;
        let t = (r + 2) % n;
        push_toffoli(&mut c, a, b, t);
        c.cx(t, (t + 1) % n);
    }
    c
}

/// A random circuit of `num_two_qubit` CX gates whose interaction pairs are
/// drawn with a locality window: the partner of qubit `a` is within
/// `locality` positions on a virtual line (1 = nearest-neighbor-heavy,
/// `n - 1` = fully random). Single-qubit gates are sprinkled with density
/// `sq_density` per two-qubit gate.
pub fn random_local(
    n: usize,
    num_two_qubit: usize,
    locality: usize,
    sq_density: f64,
    seed: u64,
) -> Circuit {
    assert!(n >= 2, "need at least 2 qubits");
    let locality = locality.clamp(1, n - 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(&format!("random_{n}_{num_two_qubit}"), n);
    let sq_kinds = [
        OneQubitKind::H,
        OneQubitKind::X,
        OneQubitKind::T,
        OneQubitKind::Tdg,
        OneQubitKind::S,
    ];
    for _ in 0..num_two_qubit {
        let a = rng.gen_range(0..n);
        let lo = a.saturating_sub(locality);
        let hi = (a + locality).min(n - 1);
        let mut b = rng.gen_range(lo..=hi);
        while b == a {
            b = rng.gen_range(lo..=hi);
        }
        c.cx(a, b);
        while rng.gen_bool(sq_density.clamp(0.0, 0.95)) {
            let kind = sq_kinds[rng.gen_range(0..sq_kinds.len())];
            one(&mut c, kind, rng.gen_range(0..n));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toffoli_has_six_cnots() {
        let mut c = Circuit::new(3);
        push_toffoli(&mut c, 0, 1, 2);
        assert_eq!(c.num_two_qubit_gates(), 6);
    }

    #[test]
    fn qft_gate_count() {
        // QFT has n(n-1)/2 controlled phases, each 2 CX.
        for n in 2..7 {
            let c = qft(n);
            assert_eq!(c.num_two_qubit_gates(), n * (n - 1));
            assert_eq!(c.num_qubits(), n);
        }
    }

    #[test]
    fn ising_is_nearest_neighbor() {
        let c = ising_model(6, 3);
        for ((a, b), _) in c.interaction_histogram() {
            assert_eq!(b - a, 1, "ising must be nearest-neighbor on the line");
        }
        assert_eq!(c.num_two_qubit_gates(), 3 * 5 * 2);
    }

    #[test]
    fn graycode_count() {
        assert_eq!(graycode(6).num_two_qubit_gates(), 5);
    }

    #[test]
    fn adder_structure() {
        let c = ripple_adder(3);
        assert_eq!(c.num_qubits(), 8);
        // 2·bits MAJ/UMA toffolis à 6 CX + surrounding CNOTs.
        assert!(c.num_two_qubit_gates() > 36);
    }

    #[test]
    fn mod_counter_size_scales_with_rounds() {
        let small = mod_counter(5, 2);
        let large = mod_counter(5, 8);
        assert!(large.num_two_qubit_gates() > small.num_two_qubit_gates());
        assert_eq!(small.num_two_qubit_gates(), 2 * 7);
    }

    #[test]
    fn random_local_is_deterministic_per_seed() {
        let a = random_local(8, 50, 3, 0.3, 7);
        let b = random_local(8, 50, 3, 0.3, 7);
        let c = random_local(8, 50, 3, 0.3, 8);
        assert_eq!(a.gates(), b.gates());
        assert_ne!(a.gates(), c.gates());
        assert_eq!(a.num_two_qubit_gates(), 50);
    }

    #[test]
    fn random_local_respects_window() {
        let c = random_local(10, 200, 2, 0.0, 3);
        for ((a, b), _) in c.interaction_histogram() {
            assert!(b - a <= 2, "pair ({a},{b}) violates locality window");
        }
    }
}

//! The request/response surface of the routing API.
//!
//! Every router in the workspace serves the same two types:
//!
//! * [`RouteRequest`] — *what to route and under which resources*: the
//!   circuit, the device graph, and a [`RouteSpec`] of per-request knobs
//!   (budget, objective, slicing, encoding quantization, parallelism hint,
//!   and an optional repeated-structure declaration);
//! * [`RouteOutcome`] — *what happened*: the routed circuit or a typed
//!   [`RouteError`], always together with the [`sat::SolverTelemetry`]
//!   spent, the wall-clock time of the attempt, and solver-specific
//!   diagnostics.
//!
//! Requests make budgets and objectives a property of the *call*, not the
//! router: the same boxed [`crate::Router`] can serve an unlimited
//! interactive request and a 2-second sweep request back to back. The
//! budget threads unchanged through every nested MaxSAT and SAT call (see
//! [`sat::ResourceBudget`]), and the parallelism hint sizes the SAT
//! portfolio at request time from [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, RouteRequest, Parallelism};
//! use std::time::Duration;
//!
//! let mut c = Circuit::new(2);
//! c.cx(0, 1);
//! let g = arch::devices::linear(2);
//! let request = RouteRequest::new(&c, &g)
//!     .with_budget(Duration::from_secs(2))
//!     .with_parallelism(Parallelism::Auto);
//! assert!(request.validate().is_ok());
//! assert!(request.parallelism().resolve() >= 1);
//! ```

use std::time::{Duration, Instant};

use arch::{ConnectivityGraph, NoiseModel};
use sat::{ResourceBudget, SolverTelemetry};

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::routed::RoutedCircuit;
use crate::router::RouteError;

/// What the MaxSAT objective minimizes (ignored by pure heuristics).
#[derive(Clone, Debug, Default)]
pub enum Objective {
    /// Minimize the number of inserted SWAPs (the paper's main mode).
    #[default]
    SwapCount,
    /// Maximize circuit fidelity under a noise model (the paper's Q6 mode):
    /// soft-clause weights encode per-edge log-infidelities of SWAPs and of
    /// the two-qubit gates themselves.
    Fidelity(NoiseModel),
}

/// Per-request override of a router's slicing strategy (Section V of the
/// paper). Routers without a slicing notion ignore it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Slicing {
    /// Keep whatever the router was constructed with.
    #[default]
    RouterDefault,
    /// Solve one monolithic instance (NL-SATMAP behaviour).
    Monolithic,
    /// Locally optimal relaxation with this many two-qubit gates per slice.
    Sliced(usize),
}

pub use sat::MAX_AUTO_WIDTH;

/// Which MaxSAT search strategy the SAT-based routers run per request
/// (pure heuristics ignore it). Mirrors `maxsat::Strategy` without a
/// dependency on the engine crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Let the engine pick per solver call from the built instance's
    /// features: objectives dominated by weighted softs (fidelity mode)
    /// run the stratified core-guided search, everything else the
    /// paper's linear search. Unweighted requests therefore behave
    /// exactly like [`SearchStrategy::Linear`].
    #[default]
    Auto,
    /// Model-improving linear SAT-UNSAT search (the paper's behaviour).
    Linear,
    /// OLL-style core-guided lower-bounding search.
    CoreGuided,
    /// Race both strategies; the first proof wins and cancels its peer.
    Race,
}

/// How many diversified SAT workers a request may race per solver call.
///
/// The width is resolved when the router acts on the request, not when the
/// router is built — so one process can serve wide interactive requests
/// and narrow ones from an already-saturated suite sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker, no racing (deterministic wall-clock, least overhead).
    #[default]
    Serial,
    /// Size the portfolio from [`std::thread::available_parallelism`],
    /// divided by the `SATMAP_JOBS` worker count when an experiment sweep
    /// already saturates the cores, and clamped to [`MAX_AUTO_WIDTH`].
    Auto,
    /// Exactly this many workers (clamped to at least 1).
    Width(usize),
}

impl Parallelism {
    /// The concrete worker count this hint resolves to right now.
    pub fn resolve(&self) -> usize {
        match *self {
            Parallelism::Serial => 1,
            Parallelism::Width(w) => w.max(1),
            Parallelism::Auto => sat::auto_width(),
        }
    }

    /// The worker count for a solver call on an instance of
    /// `instance_size` variables + clauses. `Auto` degrades to width 1
    /// below [`sat::DEFAULT_MIN_INSTANCE_SIZE`]: at fig3 scale a width-4
    /// race measured ~1.4x *slower* than serial (thread spawn and clone
    /// overhead dominate), so small instances solve inline. An explicit
    /// [`Parallelism::Width`] always forces its width — the override tests
    /// and benches use to race small instances anyway.
    pub fn resolve_for_instance(&self, instance_size: usize) -> usize {
        match *self {
            Parallelism::Serial => 1,
            Parallelism::Width(w) => w.max(1),
            Parallelism::Auto => {
                if instance_size < sat::DEFAULT_MIN_INSTANCE_SIZE {
                    1
                } else {
                    sat::auto_width()
                }
            }
        }
    }

    /// Automatic width when `jobs` route calls run concurrently: the
    /// available cores split across jobs, clamped to `1..=`
    /// [`MAX_AUTO_WIDTH`] (see [`sat::auto_width_for_jobs`]).
    pub fn auto_for_jobs(jobs: usize) -> usize {
        sat::auto_width_for_jobs(jobs)
    }
}

/// Declares that the request's circuit is `prefix ; C ; C ; … ; C`: a
/// gate prefix followed by `cycles` identical copies of a subcircuit
/// (QAOA's shape, Section VI of the paper). Cyclic-aware routers solve the
/// subcircuit once and stitch copies; everyone else routes the flat gate
/// list and loses nothing but time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepeatedStructure {
    /// Number of leading gates (by index) forming the prefix. The prefix
    /// must not contain two-qubit gates.
    pub prefix_len: usize,
    /// How many identical copies of the subcircuit follow the prefix.
    pub cycles: usize,
}

/// The per-request knobs of a [`RouteRequest`], separated out so sweep
/// harnesses can apply one spec across many circuits.
///
/// # Examples
///
/// ```
/// use circuit::{RouteSpec, Slicing};
/// use std::time::Duration;
/// let spec = RouteSpec {
///     budget: Duration::from_secs(2).into(),
///     slicing: Slicing::Sliced(10),
///     ..RouteSpec::default()
/// };
/// assert_eq!(spec.slicing, Slicing::Sliced(10));
/// ```
#[derive(Clone, Debug, Default)]
pub struct RouteSpec {
    /// Compilation budget for the whole request; armed once when routing
    /// starts and inherited by every nested MaxSAT/SAT call.
    pub budget: ResourceBudget,
    /// Optimization objective.
    pub objective: Objective,
    /// Slicing override for routers with a locally optimal relaxation.
    pub slicing: Slicing,
    /// Override of the paper's `n` (SWAP slots per gap); `None` keeps the
    /// router default of 1.
    pub swaps_per_gap: Option<usize>,
    /// Override of the MaxSAT totalizer weight quantization (see
    /// `maxsat::SolveOptions::totalizer_units`).
    pub totalizer_units: Option<u64>,
    /// How many diversified SAT workers to race per solver call.
    pub parallelism: Parallelism,
    /// Which MaxSAT search strategy drives the optimization.
    pub strategy: SearchStrategy,
    /// Repeated-structure declaration for cyclic-aware routers.
    pub repetition: Option<RepeatedStructure>,
    /// Caller-assigned correlation id, stamped into the outcome's
    /// telemetry and JSON row so server responses, sweep rows, and client
    /// logs are joinable. Latency-metadata only, like the budget: it is
    /// **excluded** from [`RouteRequest::fingerprint`], so two requests
    /// that differ only in id share cache entries and warm-start sessions.
    pub request_id: Option<u64>,
}

/// One routing request: a circuit, a device, and the [`RouteSpec`] knobs.
///
/// Build with [`RouteRequest::new`] plus the `with_*` methods, or apply a
/// prebuilt spec with [`RouteRequest::with_spec`]. Routers answer with a
/// [`RouteOutcome`].
#[derive(Clone, Debug)]
pub struct RouteRequest<'a> {
    circuit: &'a Circuit,
    graph: &'a ConnectivityGraph,
    spec: RouteSpec,
}

impl<'a> RouteRequest<'a> {
    /// A request with default knobs: unlimited budget, swap-count
    /// objective, router-default slicing, serial solving.
    pub fn new(circuit: &'a Circuit, graph: &'a ConnectivityGraph) -> Self {
        Self::with_spec(circuit, graph, RouteSpec::default())
    }

    /// A request carrying a prebuilt spec.
    pub fn with_spec(circuit: &'a Circuit, graph: &'a ConnectivityGraph, spec: RouteSpec) -> Self {
        RouteRequest {
            circuit,
            graph,
            spec,
        }
    }

    /// Sets the compilation budget (a plain [`Duration`] converts to a
    /// wall-clock budget).
    #[must_use]
    pub fn with_budget(mut self, budget: impl Into<ResourceBudget>) -> Self {
        self.spec.budget = budget.into();
        self
    }

    /// Sets the optimization objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.spec.objective = objective;
        self
    }

    /// Sets the slicing override.
    #[must_use]
    pub fn with_slicing(mut self, slicing: Slicing) -> Self {
        self.spec.slicing = slicing;
        self
    }

    /// Sets the number of SWAP slots per gap (the paper's `n`).
    #[must_use]
    pub fn with_swaps_per_gap(mut self, n: usize) -> Self {
        self.spec.swaps_per_gap = Some(n);
        self
    }

    /// Sets the totalizer weight quantization.
    #[must_use]
    pub fn with_totalizer_units(mut self, units: u64) -> Self {
        self.spec.totalizer_units = Some(units);
        self
    }

    /// Sets the parallelism hint.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.spec.parallelism = parallelism;
        self
    }

    /// Sets the MaxSAT search strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.spec.strategy = strategy;
        self
    }

    /// Declares the circuit's repeated structure.
    #[must_use]
    pub fn with_repetition(mut self, repetition: RepeatedStructure) -> Self {
        self.spec.repetition = Some(repetition);
        self
    }

    /// Attaches a caller-assigned correlation id (see
    /// [`RouteSpec::request_id`]).
    #[must_use]
    pub fn with_request_id(mut self, id: u64) -> Self {
        self.spec.request_id = Some(id);
        self
    }

    /// The circuit to route.
    pub fn circuit(&self) -> &'a Circuit {
        self.circuit
    }

    /// The device connectivity graph.
    pub fn graph(&self) -> &'a ConnectivityGraph {
        self.graph
    }

    /// The full spec.
    pub fn spec(&self) -> &RouteSpec {
        &self.spec
    }

    /// The (unarmed) request budget.
    pub fn budget(&self) -> &ResourceBudget {
        &self.spec.budget
    }

    /// The optimization objective.
    pub fn objective(&self) -> &Objective {
        &self.spec.objective
    }

    /// The slicing override.
    pub fn slicing(&self) -> Slicing {
        self.spec.slicing
    }

    /// The `n`-swaps-per-gap override.
    pub fn swaps_per_gap(&self) -> Option<usize> {
        self.spec.swaps_per_gap
    }

    /// The totalizer quantization override.
    pub fn totalizer_units(&self) -> Option<u64> {
        self.spec.totalizer_units
    }

    /// The parallelism hint.
    pub fn parallelism(&self) -> Parallelism {
        self.spec.parallelism
    }

    /// The MaxSAT search strategy.
    pub fn strategy(&self) -> SearchStrategy {
        self.spec.strategy
    }

    /// The repeated-structure declaration, if any.
    pub fn repetition(&self) -> Option<RepeatedStructure> {
        self.spec.repetition
    }

    /// The caller-assigned correlation id, if any.
    pub fn request_id(&self) -> Option<u64> {
        self.spec.request_id
    }

    /// Checks the preconditions shared by every router, so malformed
    /// inputs fail with [`RouteError::InvalidRequest`] before any solver
    /// work starts.
    ///
    /// # Errors
    ///
    /// [`RouteError::InvalidRequest`] when the circuit has no qubits, the
    /// device has no qubits, the circuit needs more logical qubits than
    /// the device has physical ones, the device graph is disconnected (and
    /// the circuit has two-qubit gates), a knob is degenerate (zero swap
    /// slots per gap, zero-gate slices), or a declared repetition does not
    /// match the gate list.
    pub fn validate(&self) -> Result<(), RouteError> {
        let invalid = |why: String| Err(RouteError::InvalidRequest(why));
        if self.circuit.num_qubits() == 0 {
            return invalid("circuit has no qubits".into());
        }
        if self.graph.num_qubits() == 0 {
            return invalid("device has no qubits".into());
        }
        if self.circuit.num_qubits() > self.graph.num_qubits() {
            return invalid(format!(
                "{} logical qubits exceed {} physical qubits",
                self.circuit.num_qubits(),
                self.graph.num_qubits()
            ));
        }
        if self.circuit.num_two_qubit_gates() > 0
            && self.circuit.num_qubits() > 1
            && !self.graph.is_connected()
        {
            // A disconnected device may still work if the interaction
            // graph fits inside one component, but none of the paper's
            // devices are disconnected; reject for clarity.
            return invalid("device connectivity graph is disconnected".into());
        }
        if self.spec.swaps_per_gap == Some(0) {
            return invalid("swaps_per_gap must be at least 1".into());
        }
        if self.spec.slicing == Slicing::Sliced(0) {
            return invalid("slice size must be at least 1".into());
        }
        if let Some(rep) = self.spec.repetition {
            self.validate_repetition(rep)?;
        }
        Ok(())
    }

    fn validate_repetition(&self, rep: RepeatedStructure) -> Result<(), RouteError> {
        let invalid = |why: String| Err(RouteError::InvalidRequest(why));
        if rep.cycles == 0 {
            return invalid("repetition must have at least one cycle".into());
        }
        let gates = self.circuit.gates();
        if rep.prefix_len > gates.len() {
            return invalid(format!(
                "repetition prefix of {} gates exceeds the {}-gate circuit",
                rep.prefix_len,
                gates.len()
            ));
        }
        if gates[..rep.prefix_len].iter().any(|g| g.is_two_qubit()) {
            return invalid("repetition prefix must not contain two-qubit gates".into());
        }
        let body = &gates[rep.prefix_len..];
        if !body.len().is_multiple_of(rep.cycles) {
            return invalid(format!(
                "{} gates after the prefix do not divide into {} cycles",
                body.len(),
                rep.cycles
            ));
        }
        let sub_len = body.len() / rep.cycles;
        let first = &body[..sub_len];
        for c in 1..rep.cycles {
            if &body[c * sub_len..(c + 1) * sub_len] != first {
                return invalid(format!("cycle {c} differs from the first repetition"));
            }
        }
        Ok(())
    }

    /// The declared subcircuit bounds `(prefix_len, sub_len)` when a
    /// repetition is present (after [`RouteRequest::validate`] succeeded).
    pub fn repeated_subcircuit_len(&self) -> Option<(usize, usize)> {
        let rep = self.spec.repetition?;
        let body = self.circuit.len().checked_sub(rep.prefix_len)?;
        Some((rep.prefix_len, body / rep.cycles.max(1)))
    }

    /// A canonical 64-bit fingerprint of everything that determines the
    /// routing *answer*: the gate list, the device graph, and the
    /// answer-relevant spec knobs (objective — including the noise model's
    /// error rates under [`Objective::Fidelity`] — slicing, swaps per gap,
    /// totalizer quantization, search strategy, repetition).
    ///
    /// The budget, the parallelism hint, and the correlation
    /// [`RouteSpec::request_id`] are deliberately **excluded**: they change
    /// how long the answer takes (or how it is logged), not what it is, so
    /// a request retried with a bigger budget or resubmitted under a new
    /// server id maps to the same cache key (and can warm-start from the
    /// earlier attempt's session).
    /// Conversely every fingerprint-relevant knob is also hashed by value,
    /// so two specs that resolve identically collide on purpose.
    ///
    /// The hash is FNV-1a over a canonical byte serialization — stable
    /// across processes and platforms (floats hash via [`f64::to_bits`]),
    /// unlike [`std::hash::RandomState`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        // Circuit: arity tag + mnemonic + operands + parameter per gate.
        h.usize(self.circuit.num_qubits());
        h.usize(self.circuit.len());
        for gate in self.circuit.gates() {
            match gate {
                Gate::One { kind, qubit, param } => {
                    h.byte(1);
                    h.str(kind.qasm_name());
                    h.usize(qubit.0);
                    h.f64(param.unwrap_or(0.0));
                }
                Gate::Two { kind, a, b, param } => {
                    h.byte(2);
                    h.str(kind.qasm_name());
                    h.usize(a.0);
                    h.usize(b.0);
                    h.f64(param.unwrap_or(0.0));
                }
            }
        }
        // Device: size + edge list (names are cosmetic and excluded).
        h.usize(self.graph.num_qubits());
        h.usize(self.graph.num_edges());
        for &(a, b) in self.graph.edges() {
            h.usize(a);
            h.usize(b);
        }
        // Spec: only the answer-relevant knobs.
        match &self.spec.objective {
            Objective::SwapCount => h.byte(0),
            Objective::Fidelity(noise) => {
                h.byte(1);
                for q in 0..self.graph.num_qubits() {
                    h.f64(noise.sq_error(q));
                }
                for &(a, b) in self.graph.edges() {
                    h.f64(noise.cx_error(a, b));
                }
            }
        }
        match self.spec.slicing {
            Slicing::RouterDefault => h.byte(0),
            Slicing::Monolithic => h.byte(1),
            Slicing::Sliced(n) => {
                h.byte(2);
                h.usize(n);
            }
        }
        h.usize(self.spec.swaps_per_gap.map_or(0, |n| n + 1));
        h.u64(self.spec.totalizer_units.map_or(0, |u| u.wrapping_add(1)));
        h.byte(match self.spec.strategy {
            SearchStrategy::Linear => 0,
            SearchStrategy::CoreGuided => 1,
            SearchStrategy::Race => 2,
            SearchStrategy::Auto => 3,
        });
        match self.spec.repetition {
            None => h.byte(0),
            Some(rep) => {
                h.byte(1);
                h.usize(rep.prefix_len);
                h.usize(rep.cycles);
            }
        }
        h.finish()
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across processes —
/// exactly what a persistent cache key needs (the std hasher is seeded
/// per-process by design).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// How trustworthy a served [`RouteOutcome`] is — the stamp a resilience
/// layer (retry ladder, heuristic fallback) leaves so callers and caches
/// can tell a proven answer from a best-effort one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RouteQuality {
    /// The answer carries the router's full proof strength (for SATMAP's
    /// monolithic mode, optimal modulo the configured knobs), served on
    /// the first attempt. The default: plain routers without a supervisor
    /// produce either this or a typed failure.
    #[default]
    Optimal,
    /// Same proof strength as [`RouteQuality::Optimal`], but reached after
    /// `n` failed attempts via warm-started retries (the session's clause
    /// DB and bounds are a conservative extension of the instance, so the
    /// re-solve proves the *same* optimum, just faster).
    WarmRetry(u32),
    /// Best-effort only: the escalation ladder fell back to a heuristic
    /// router, or the solver returned an incumbent it could not prove
    /// optimal before the budget died. Usable, but not canonical — caches
    /// must never memoize it as the answer for the fingerprint.
    Degraded,
}

impl RouteQuality {
    /// Stable lowercase label for JSON rows (`optimal` / `warm_retry` /
    /// `degraded`; retry counts travel in the separate `attempts` field).
    pub fn label(&self) -> &'static str {
        match self {
            RouteQuality::Optimal => "optimal",
            RouteQuality::WarmRetry(_) => "warm_retry",
            RouteQuality::Degraded => "degraded",
        }
    }

    /// True when the answer carries the router's full proof strength
    /// (first-attempt or warm-retried — both are equally trustworthy).
    pub fn is_proven(&self) -> bool {
        !matches!(self, RouteQuality::Degraded)
    }
}

impl std::fmt::Display for RouteQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteQuality::WarmRetry(n) => write!(f, "warm_retry({n})"),
            other => f.write_str(other.label()),
        }
    }
}

/// The response to a [`RouteRequest`]: the routed circuit or a typed
/// failure, always carrying the solver effort spent, the wall-clock time
/// of the attempt, and solver-specific diagnostics.
///
/// Failed attempts carry their telemetry too — a timed-out run is exactly
/// the one whose effort the experiment tables must not under-report.
#[derive(Clone, Debug)]
pub struct RouteOutcome {
    router: String,
    result: Result<RoutedCircuit, RouteError>,
    telemetry: SolverTelemetry,
    wall_time: Duration,
    diagnostics: Vec<(String, String)>,
    quality: RouteQuality,
    attempts: u32,
}

impl RouteOutcome {
    /// Assembles an outcome from its parts.
    pub fn new(
        router: &str,
        result: Result<RoutedCircuit, RouteError>,
        telemetry: SolverTelemetry,
        wall_time: Duration,
    ) -> Self {
        RouteOutcome {
            router: router.to_string(),
            result,
            telemetry,
            wall_time,
            diagnostics: Vec::new(),
            quality: RouteQuality::Optimal,
            attempts: 1,
        }
    }

    /// Runs `f`, timing it, and wraps its result and telemetry — the
    /// one-liner router implementations build their outcome with.
    pub fn capture(
        router: &str,
        f: impl FnOnce() -> (Result<RoutedCircuit, RouteError>, SolverTelemetry),
    ) -> Self {
        let started = Instant::now();
        let (result, telemetry) = f();
        Self::new(router, result, telemetry, started.elapsed())
    }

    /// Appends a solver-specific diagnostic key/value pair.
    #[must_use]
    pub fn with_diagnostic(mut self, key: &str, value: impl ToString) -> Self {
        self.diagnostics.push((key.to_string(), value.to_string()));
        self
    }

    /// Returns a copy with the result replaced, keeping telemetry, wall
    /// time, and diagnostics — for harnesses that re-judge a result (e.g.
    /// after independent verification).
    #[must_use]
    pub fn with_result(mut self, result: Result<RoutedCircuit, RouteError>) -> Self {
        self.result = result;
        self
    }

    /// Name of the router that served the request.
    pub fn router(&self) -> &str {
        &self.router
    }

    /// The routed circuit or the typed failure.
    pub fn result(&self) -> &Result<RoutedCircuit, RouteError> {
        &self.result
    }

    /// The routed circuit, when routing succeeded.
    pub fn routed(&self) -> Option<&RoutedCircuit> {
        self.result.as_ref().ok()
    }

    /// The failure, when routing failed.
    pub fn error(&self) -> Option<&RouteError> {
        self.result.as_ref().err()
    }

    /// True when routing produced a solution.
    pub fn solved(&self) -> bool {
        self.result.is_ok()
    }

    /// Consumes the outcome, keeping only the result.
    #[allow(clippy::missing_errors_doc)]
    pub fn into_result(self) -> Result<RoutedCircuit, RouteError> {
        self.result
    }

    /// Consumes the outcome into `(result, telemetry)`.
    #[allow(clippy::missing_errors_doc)]
    pub fn into_parts(self) -> (Result<RoutedCircuit, RouteError>, SolverTelemetry) {
        (self.result, self.telemetry)
    }

    /// Solver effort spent on the attempt (empty for pure heuristics).
    pub fn telemetry(&self) -> &SolverTelemetry {
        &self.telemetry
    }

    /// Mutable access to the telemetry — the hook caches and warm-start
    /// layers use to stamp `cache_hit`/`warm_start` onto an outcome they
    /// serve or replay.
    pub fn telemetry_mut(&mut self) -> &mut SolverTelemetry {
        &mut self.telemetry
    }

    /// Wall-clock duration of the attempt.
    pub fn wall_time(&self) -> Duration {
        self.wall_time
    }

    /// Returns the outcome stamped with a quality grade (see
    /// [`RouteQuality`]; new outcomes default to
    /// [`RouteQuality::Optimal`]).
    #[must_use]
    pub fn with_quality(mut self, quality: RouteQuality) -> Self {
        self.quality = quality;
        self
    }

    /// Returns the outcome stamped with the number of attempts a
    /// supervisor spent serving it (new outcomes default to 1).
    #[must_use]
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.attempts = attempts.max(1);
        self
    }

    /// Returns the outcome stamped with the request's correlation id (see
    /// [`RouteSpec::request_id`]). The id lives in the telemetry so it
    /// survives `absorb` aggregation and lands in the JSON row; serving
    /// layers (registry, cache, supervisor, daemon) stamp it from the
    /// request they answered, which also re-stamps cache replays with the
    /// *new* request's id.
    #[must_use]
    pub fn with_request_id(mut self, id: Option<u64>) -> Self {
        if id.is_some() {
            self.telemetry.request_id = id;
        }
        self
    }

    /// The trustworthiness grade of this answer.
    pub fn quality(&self) -> RouteQuality {
        self.quality
    }

    /// How many attempts (first try + retries + fallback) served this
    /// outcome. 1 for plain, unsupervised routing.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// All solver-specific diagnostics, in insertion order.
    pub fn diagnostics(&self) -> &[(String, String)] {
        &self.diagnostics
    }

    /// Looks up one diagnostic by key.
    pub fn diagnostic(&self, key: &str) -> Option<&str> {
        self.diagnostics
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the outcome as one JSON object — the row schema shared
    /// by the experiment sweeps (`SATMAP_ROWS_JSON`) and the bench report
    /// (`BENCH_satmap.json`).
    pub fn to_json(&self) -> String {
        let t = &self.telemetry;
        let mut out = String::from("{");
        out.push_str(&format!("\"router\":\"{}\"", escape_json(&self.router)));
        out.push_str(&format!(",\"solved\":{}", self.solved()));
        match &self.result {
            Ok(routed) => {
                out.push_str(&format!(",\"swaps\":{}", routed.swap_count()));
                out.push_str(&format!(",\"added_gates\":{}", routed.added_gates()));
                out.push_str(",\"error\":null");
            }
            Err(e) => {
                out.push_str(",\"swaps\":null,\"added_gates\":null");
                out.push_str(&format!(",\"error\":\"{}\"", escape_json(&e.to_string())));
            }
        }
        out.push_str(&format!(",\"wall_s\":{:.6}", self.wall_time.as_secs_f64()));
        out.push_str(&format!(",\"sat_calls\":{}", t.sat_calls));
        out.push_str(&format!(",\"conflicts\":{}", t.conflicts));
        out.push_str(&format!(",\"decisions\":{}", t.decisions));
        out.push_str(&format!(",\"propagations\":{}", t.propagations));
        out.push_str(&format!(",\"restarts\":{}", t.restarts));
        out.push_str(&format!(",\"db_reductions\":{}", t.db_reductions));
        out.push_str(&format!(",\"clauses_exported\":{}", t.clauses_exported));
        out.push_str(&format!(",\"clauses_imported\":{}", t.clauses_imported));
        out.push_str(&format!(",\"useful_imports\":{}", t.useful_imports));
        out.push_str(&format!(",\"cross_call_imports\":{}", t.cross_call_imports));
        out.push_str(&format!(",\"compactions\":{}", t.compactions));
        out.push_str(&format!(",\"arena_bytes\":{}", t.arena_bytes));
        match t.request_id {
            Some(id) => out.push_str(&format!(",\"request_id\":{id}")),
            None => out.push_str(",\"request_id\":null"),
        }
        out.push_str(&format!(",\"quality\":\"{}\"", self.quality.label()));
        out.push_str(&format!(",\"attempts\":{}", self.attempts));
        out.push_str(&format!(",\"worker_panics\":{}", t.worker_panics));
        out.push_str(&format!(",\"cache_hit\":{}", t.cache_hit));
        out.push_str(&format!(",\"warm_start\":{}", t.warm_start));
        out.push_str(&format!(",\"reused_clauses\":{}", t.reused_clauses));
        out.push_str(&format!(",\"encode_s\":{:.6}", t.encode_time.as_secs_f64()));
        out.push_str(&format!(",\"solve_s\":{:.6}", t.solve_time.as_secs_f64()));
        out.push_str(&format!(",\"slices\":{}", t.slices));
        out.push_str(&format!(",\"backtracks\":{}", t.backtracks));
        match t.winning_worker {
            Some(w) => out.push_str(&format!(",\"winning_worker\":{w}")),
            None => out.push_str(",\"winning_worker\":null"),
        }
        match t.strategy {
            Some(s) => out.push_str(&format!(",\"strategy\":\"{}\"", escape_json(s))),
            None => out.push_str(",\"strategy\":null"),
        }
        out.push_str(&format!(",\"dispatch_width\":{}", t.dispatch_width));
        match t.dispatch_mix {
            Some(m) => out.push_str(&format!(",\"dispatch_mix\":\"{}\"", escape_json(m))),
            None => out.push_str(",\"dispatch_mix\":null"),
        }
        out.push_str(&format!(",\"dispatch_sharing\":{}", t.dispatch_sharing));
        out.push_str(&format!(",\"dispatch_hardness\":{}", t.dispatch_hardness));
        out.push_str(&format!(",\"strata\":{}", t.strata));
        out.push_str(&format!(",\"exhaustion_steps\":{}", t.exhaustion_steps));
        out.push_str(&format!(",\"hardened_softs\":{}", t.hardened_softs));
        out.push_str(",\"diagnostics\":{");
        for (i, (k, v)) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal — shared by
/// the harnesses that extend the [`RouteOutcome::to_json`] row schema with
/// their own fields.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routed::RoutedOp;

    fn fig3() -> Circuit {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        c
    }

    #[test]
    fn builder_sets_every_knob() {
        let c = fig3();
        let g = arch::devices::tokyo();
        let req = RouteRequest::new(&c, &g)
            .with_budget(Duration::from_secs(1))
            .with_objective(Objective::SwapCount)
            .with_slicing(Slicing::Sliced(5))
            .with_swaps_per_gap(2)
            .with_totalizer_units(100)
            .with_parallelism(Parallelism::Width(3));
        assert_eq!(req.slicing(), Slicing::Sliced(5));
        assert_eq!(req.swaps_per_gap(), Some(2));
        assert_eq!(req.totalizer_units(), Some(100));
        assert_eq!(req.parallelism().resolve(), 3);
        assert_eq!(
            req.budget().remaining_time(),
            Some(Duration::from_secs(1)),
            "unarmed budget reports its full allowance"
        );
        assert!(req.validate().is_ok());
    }

    #[test]
    fn validate_rejects_oversized_circuit() {
        let c = Circuit::new(3);
        let g = arch::devices::linear(2);
        let err = RouteRequest::new(&c, &g).validate().unwrap_err();
        assert!(matches!(err, RouteError::InvalidRequest(_)), "{err}");
        assert!(err.to_string().contains("3 logical"));
    }

    #[test]
    fn validate_rejects_zero_qubit_circuit_and_device() {
        let empty = Circuit::new(0);
        let g = arch::devices::linear(2);
        assert!(matches!(
            RouteRequest::new(&empty, &g).validate(),
            Err(RouteError::InvalidRequest(_))
        ));
        let c = Circuit::new(0);
        let g0 = arch::ConnectivityGraph::from_edges(0, []);
        assert!(matches!(
            RouteRequest::new(&c, &g0).validate(),
            Err(RouteError::InvalidRequest(_))
        ));
    }

    #[test]
    fn validate_rejects_disconnected_device() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let g = arch::ConnectivityGraph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(matches!(
            RouteRequest::new(&c, &g).validate(),
            Err(RouteError::InvalidRequest(_))
        ));
        // Gate-free circuits tolerate disconnection (no movement needed).
        let free = Circuit::new(3);
        assert!(RouteRequest::new(&free, &g).validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_knobs() {
        let c = fig3();
        let g = arch::devices::tokyo();
        assert!(matches!(
            RouteRequest::new(&c, &g).with_swaps_per_gap(0).validate(),
            Err(RouteError::InvalidRequest(_))
        ));
        assert!(matches!(
            RouteRequest::new(&c, &g)
                .with_slicing(Slicing::Sliced(0))
                .validate(),
            Err(RouteError::InvalidRequest(_))
        ));
    }

    #[test]
    fn validate_checks_repetition_shape() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.cx(0, 1);
        let g = arch::devices::linear(2);
        let ok = RouteRequest::new(&c, &g).with_repetition(RepeatedStructure {
            prefix_len: 1,
            cycles: 2,
        });
        assert!(ok.validate().is_ok());
        assert_eq!(ok.repeated_subcircuit_len(), Some((1, 1)));

        for bad in [
            RepeatedStructure {
                prefix_len: 1,
                cycles: 0,
            },
            RepeatedStructure {
                prefix_len: 9,
                cycles: 1,
            },
            RepeatedStructure {
                prefix_len: 0,
                cycles: 2, // prefix would contain a 2q gate boundary mismatch
            },
        ] {
            let req = RouteRequest::new(&c, &g).with_repetition(bad);
            assert!(
                matches!(req.validate(), Err(RouteError::InvalidRequest(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn parallelism_resolution_is_bounded() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Width(0).resolve(), 1);
        assert_eq!(Parallelism::Width(5).resolve(), 5);
        let auto = Parallelism::Auto.resolve();
        assert!((1..=MAX_AUTO_WIDTH).contains(&auto));
        // Saturating the machine with jobs shrinks the portfolio.
        assert_eq!(Parallelism::auto_for_jobs(usize::MAX), 1);
        assert!(Parallelism::auto_for_jobs(1) >= Parallelism::auto_for_jobs(4));
    }

    #[test]
    fn outcome_accessors_and_json() {
        let routed = RoutedCircuit::new(vec![0, 1], vec![RoutedOp::Logical(0)]);
        let outcome = RouteOutcome::new(
            "satmap",
            Ok(routed),
            SolverTelemetry::default(),
            Duration::from_millis(5),
        )
        .with_diagnostic("slice", 25);
        assert!(outcome.solved());
        assert_eq!(outcome.router(), "satmap");
        assert_eq!(outcome.diagnostic("slice"), Some("25"));
        assert!(outcome.routed().is_some());
        let json = outcome.to_json();
        assert!(json.contains("\"router\":\"satmap\""));
        assert!(json.contains("\"solved\":true"));
        assert!(json.contains("\"error\":null"));
        assert!(json.contains("\"dispatch_width\":0"));
        assert!(json.contains("\"dispatch_mix\":null"));
        assert!(json.contains("\"dispatch_sharing\":false"));
        assert!(json.contains("\"dispatch_hardness\":0"));
        assert!(json.contains("\"diagnostics\":{\"slice\":\"25\"}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn failed_outcome_keeps_telemetry_and_reports_error_json() {
        let telemetry = SolverTelemetry {
            sat_calls: 3,
            ..SolverTelemetry::default()
        };
        let outcome = RouteOutcome::new(
            "olsq",
            Err(RouteError::Timeout),
            telemetry,
            Duration::from_millis(7),
        );
        assert!(!outcome.solved());
        assert_eq!(outcome.telemetry().sat_calls, 3);
        let json = outcome.to_json();
        assert!(json.contains("\"solved\":false"));
        assert!(json.contains("budget"));
        assert!(json.contains("\"swaps\":null"));
    }

    #[test]
    fn capture_times_the_closure() {
        let outcome = RouteOutcome::capture("x", || {
            std::thread::sleep(Duration::from_millis(2));
            (Err(RouteError::Timeout), SolverTelemetry::default())
        });
        assert!(outcome.wall_time() >= Duration::from_millis(2));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn json_carries_cache_and_warm_start_fields() {
        let telemetry = SolverTelemetry {
            cache_hit: true,
            warm_start: true,
            reused_clauses: 42,
            ..SolverTelemetry::default()
        };
        let outcome = RouteOutcome::new(
            "satmap",
            Err(RouteError::Timeout),
            telemetry,
            Duration::from_millis(1),
        );
        let json = outcome.to_json();
        assert!(json.contains("\"cache_hit\":true"));
        assert!(json.contains("\"warm_start\":true"));
        assert!(json.contains("\"reused_clauses\":42"));
    }

    #[test]
    fn quality_and_attempts_default_and_stamp_into_json() {
        let routed = RoutedCircuit::new(vec![0, 1], vec![RoutedOp::Logical(0)]);
        let outcome = RouteOutcome::new(
            "satmap",
            Ok(routed),
            SolverTelemetry {
                worker_panics: 2,
                ..SolverTelemetry::default()
            },
            Duration::from_millis(1),
        );
        assert_eq!(outcome.quality(), RouteQuality::Optimal);
        assert_eq!(outcome.attempts(), 1);
        assert!(outcome.quality().is_proven());
        let json = outcome.to_json();
        assert!(json.contains("\"quality\":\"optimal\""));
        assert!(json.contains("\"attempts\":1"));
        assert!(json.contains("\"worker_panics\":2"));

        let retried = outcome
            .clone()
            .with_quality(RouteQuality::WarmRetry(2))
            .with_attempts(3);
        assert_eq!(retried.quality(), RouteQuality::WarmRetry(2));
        assert!(retried.quality().is_proven());
        assert_eq!(retried.quality().to_string(), "warm_retry(2)");
        assert!(retried.to_json().contains("\"quality\":\"warm_retry\""));
        assert!(retried.to_json().contains("\"attempts\":3"));

        let degraded = outcome
            .with_quality(RouteQuality::Degraded)
            .with_attempts(0);
        assert!(!degraded.quality().is_proven());
        assert_eq!(degraded.attempts(), 1, "attempts clamp to at least 1");
        assert!(degraded.to_json().contains("\"quality\":\"degraded\""));
    }

    #[test]
    fn request_id_threads_into_telemetry_and_json_but_not_fingerprint() {
        let c = fig3();
        let g = arch::devices::tokyo();
        let req = RouteRequest::new(&c, &g).with_request_id(77);
        assert_eq!(req.request_id(), Some(77));
        // Ids are latency/logging metadata: the cache key ignores them.
        assert_eq!(
            req.fingerprint(),
            RouteRequest::new(&c, &g).fingerprint(),
            "request_id must not perturb the fingerprint"
        );
        let outcome = RouteOutcome::new(
            "satmap",
            Err(RouteError::Timeout),
            SolverTelemetry::default(),
            Duration::from_millis(1),
        );
        assert!(outcome.to_json().contains("\"request_id\":null"));
        let stamped = outcome.clone().with_request_id(req.request_id());
        assert_eq!(stamped.telemetry().request_id, Some(77));
        assert!(stamped.to_json().contains("\"request_id\":77"));
        // Stamping None keeps an existing id (cache replays re-stamp with
        // the new request's id only when one is present).
        assert_eq!(
            stamped.with_request_id(None).telemetry().request_id,
            Some(77)
        );
    }

    #[test]
    fn fingerprint_is_deterministic_and_canonical() {
        let c = fig3();
        let g = arch::devices::tokyo();
        let base = RouteRequest::new(&c, &g).fingerprint();
        assert_eq!(base, RouteRequest::new(&c, &g).fingerprint());
        // Latency-only knobs do not perturb the key: a retried request
        // with a bigger budget or a different width hits the same entry.
        assert_eq!(
            base,
            RouteRequest::new(&c, &g)
                .with_budget(Duration::from_secs(9))
                .with_parallelism(Parallelism::Width(4))
                .fingerprint()
        );
    }

    #[test]
    fn fingerprint_separates_answer_relevant_inputs() {
        let c = fig3();
        let g = arch::devices::tokyo();
        let base = RouteRequest::new(&c, &g).fingerprint();
        // One mutated gate.
        let mut c2 = fig3();
        c2.cx(1, 2);
        assert_ne!(base, RouteRequest::new(&c2, &g).fingerprint());
        // A different device.
        let g2 = arch::devices::tokyo_minus();
        assert_ne!(base, RouteRequest::new(&c, &g2).fingerprint());
        // Each answer-relevant knob.
        assert_ne!(
            base,
            RouteRequest::new(&c, &g)
                .with_slicing(Slicing::Monolithic)
                .fingerprint()
        );
        assert_ne!(
            base,
            RouteRequest::new(&c, &g)
                .with_swaps_per_gap(2)
                .fingerprint()
        );
        assert_ne!(
            base,
            RouteRequest::new(&c, &g)
                .with_totalizer_units(100)
                .fingerprint()
        );
        assert_ne!(
            base,
            RouteRequest::new(&c, &g)
                .with_strategy(SearchStrategy::CoreGuided)
                .fingerprint()
        );
        assert_ne!(
            base,
            RouteRequest::new(&c, &g)
                .with_objective(Objective::Fidelity(arch::NoiseModel::synthetic(&g, 7)))
                .fingerprint()
        );
        // Two distinct noise seeds give distinct error rates.
        assert_ne!(
            RouteRequest::new(&c, &g)
                .with_objective(Objective::Fidelity(arch::NoiseModel::synthetic(&g, 7)))
                .fingerprint(),
            RouteRequest::new(&c, &g)
                .with_objective(Objective::Fidelity(arch::NoiseModel::synthetic(&g, 8)))
                .fingerprint()
        );
    }

    #[test]
    fn auto_parallelism_degrades_to_serial_on_small_instances() {
        assert_eq!(Parallelism::Auto.resolve_for_instance(0), 1);
        assert_eq!(
            Parallelism::Auto.resolve_for_instance(sat::DEFAULT_MIN_INSTANCE_SIZE - 1),
            1
        );
        assert_eq!(
            Parallelism::Auto.resolve_for_instance(sat::DEFAULT_MIN_INSTANCE_SIZE),
            Parallelism::Auto.resolve()
        );
        // An explicit width overrides the gate (the test escape hatch).
        assert_eq!(Parallelism::Width(4).resolve_for_instance(0), 4);
        assert_eq!(Parallelism::Serial.resolve_for_instance(usize::MAX), 1);
    }
}

//! The common interface implemented by every QMR solver in this repository
//! (SATMAP, its relaxations, the heuristic baselines, and the
//! constraint-based baselines).

use arch::ConnectivityGraph;
use sat::SolverTelemetry;

use crate::circuit::Circuit;
use crate::routed::RoutedCircuit;

/// Why routing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The solver's resource budget expired before any solution was found.
    Timeout,
    /// The instance is unsatisfiable under the solver's constraints (e.g.
    /// more logical than physical qubits, or a disconnected device).
    Unsatisfiable(String),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Timeout => write!(f, "routing budget exhausted"),
            RouteError::Unsatisfiable(why) => write!(f, "instance unsatisfiable: {why}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A qubit mapping and routing algorithm.
pub trait Router {
    /// Short identifier used in experiment tables (e.g. `"satmap"`).
    fn name(&self) -> &str;

    /// Solves QMR for `circuit` on `graph`.
    ///
    /// # Errors
    ///
    /// [`RouteError::Timeout`] if the budget expired without a solution;
    /// [`RouteError::Unsatisfiable`] if no solution exists.
    fn route(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
    ) -> Result<RoutedCircuit, RouteError>;

    /// Like [`Router::route`], additionally reporting the solver effort
    /// spent. Heuristic routers use no SAT solver and return an empty
    /// [`SolverTelemetry`]; constraint-based routers override this so the
    /// experiment harness can report solver effort next to solution
    /// quality.
    ///
    /// The telemetry is returned *alongside* the result (not inside `Ok`)
    /// so effort spent on failed attempts — timeouts in particular — still
    /// reaches the caller; a timed-out run is exactly the one whose effort
    /// the experiment tables must not under-report.
    fn route_with_telemetry(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
    ) -> (Result<RoutedCircuit, RouteError>, SolverTelemetry) {
        (self.route(circuit, graph), SolverTelemetry::default())
    }
}

/// Validates the common preconditions shared by all routers.
///
/// # Errors
///
/// Returns [`RouteError::Unsatisfiable`] when the circuit cannot fit.
pub fn check_fits(circuit: &Circuit, graph: &ConnectivityGraph) -> Result<(), RouteError> {
    if circuit.num_qubits() > graph.num_qubits() {
        return Err(RouteError::Unsatisfiable(format!(
            "{} logical qubits exceed {} physical qubits",
            circuit.num_qubits(),
            graph.num_qubits()
        )));
    }
    if circuit.num_two_qubit_gates() > 0 && !graph.is_connected() && circuit.num_qubits() > 1 {
        // A disconnected device may still work if the interaction graph
        // fits inside one component, but none of the paper's devices are
        // disconnected; reject for clarity.
        return Err(RouteError::Unsatisfiable(
            "device connectivity graph is disconnected".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_fits_rejects_oversized() {
        let g = arch::devices::linear(2);
        let c = Circuit::new(3);
        assert!(matches!(
            check_fits(&c, &g),
            Err(RouteError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn check_fits_accepts_ok() {
        let g = arch::devices::tokyo();
        let c = Circuit::new(16);
        assert!(check_fits(&c, &g).is_ok());
    }

    #[test]
    fn error_display() {
        assert!(RouteError::Timeout.to_string().contains("budget"));
        assert!(RouteError::Unsatisfiable("x".into())
            .to_string()
            .contains('x'));
    }
}

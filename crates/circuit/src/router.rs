//! The common interface implemented by every QMR solver in this repository
//! (SATMAP, its relaxations, the heuristic baselines, and the
//! constraint-based baselines).
//!
//! Routers are *request-driven*: the single entry point
//! [`Router::route_request`] takes a [`RouteRequest`] (circuit + device +
//! per-request budget/objective/parallelism knobs) and answers with a
//! [`RouteOutcome`] (routed circuit or typed failure, always with
//! telemetry and wall-clock timing). The trait is dyn-safe, so harnesses
//! dispatch through `Box<dyn Router>` — typically obtained from a router
//! registry — instead of naming concrete solver types.

use arch::ConnectivityGraph;

use crate::circuit::Circuit;
use crate::request::{RouteOutcome, RouteRequest};
use crate::routed::RoutedCircuit;

/// Why routing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The request was malformed before any solving started: the circuit
    /// cannot fit the device, the device graph is disconnected, or a knob
    /// is degenerate (see [`RouteRequest::validate`]).
    InvalidRequest(String),
    /// The solver's resource budget expired before any solution was found.
    Timeout,
    /// The instance is unsatisfiable under the solver's constraints (e.g.
    /// no schedule exists within the configured swaps-per-gap).
    Unsatisfiable(String),
    /// Admission control shed the request before any encoding was paid
    /// for: its predicted encoding size exceeds what the budgeted solver
    /// could finish (see the supervisor's admission limit). Retry with a
    /// bigger budget, a heuristic router, or a smaller circuit.
    Overloaded(String),
    /// The solver crashed (a panic was caught at an isolation boundary)
    /// and no usable partial answer survived. Retryable: supervisors treat
    /// it like a timeout and re-attempt or degrade.
    Internal(String),
    /// The client (or an operator) cancelled the request while it was
    /// queued or solving — the per-request abort handle fired. Not
    /// retryable: cancellation is the caller saying *stop*, so supervisors
    /// return it immediately instead of escalating or degrading.
    Cancelled,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            RouteError::Timeout => write!(f, "routing budget exhausted"),
            RouteError::Unsatisfiable(why) => write!(f, "instance unsatisfiable: {why}"),
            RouteError::Overloaded(why) => write!(f, "request shed by admission control: {why}"),
            RouteError::Internal(why) => write!(f, "internal solver failure: {why}"),
            RouteError::Cancelled => write!(f, "request cancelled by abort handle"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A qubit mapping and routing algorithm.
///
/// Implementations provide [`Router::route_request`]; the convenience
/// [`Router::route`] wraps a default request (unlimited budget, serial
/// solving) for callers that only want the routed circuit.
pub trait Router {
    /// Short identifier used in experiment tables (e.g. `"satmap"`).
    fn name(&self) -> &str;

    /// Solves QMR for the request, returning a [`RouteOutcome`] that
    /// always carries the solver effort spent and the wall-clock time of
    /// the attempt — including effort spent on failed attempts, which the
    /// experiment tables must not under-report.
    fn route_request(&self, request: &RouteRequest<'_>) -> RouteOutcome;

    /// Convenience wrapper: routes `circuit` on `graph` under a default
    /// request and discards telemetry.
    ///
    /// # Errors
    ///
    /// [`RouteError::InvalidRequest`] for malformed inputs,
    /// [`RouteError::Timeout`] if the budget expired without a solution,
    /// [`RouteError::Unsatisfiable`] if no solution exists.
    fn route(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
    ) -> Result<RoutedCircuit, RouteError> {
        self.route_request(&RouteRequest::new(circuit, graph))
            .into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::SolverTelemetry;

    #[test]
    fn error_display() {
        assert!(RouteError::Timeout.to_string().contains("budget"));
        assert!(RouteError::Unsatisfiable("x".into())
            .to_string()
            .contains('x'));
        assert!(RouteError::InvalidRequest("y".into())
            .to_string()
            .contains("invalid request: y"));
        assert!(RouteError::Overloaded("too big".into())
            .to_string()
            .contains("admission control: too big"));
        assert!(RouteError::Internal("worker died".into())
            .to_string()
            .contains("internal solver failure: worker died"));
        assert!(RouteError::Cancelled.to_string().contains("cancelled"));
    }

    /// A stub proving the trait is dyn-safe and that the provided `route`
    /// delegates through `route_request`.
    struct Always;

    impl Router for Always {
        fn name(&self) -> &str {
            "always"
        }

        fn route_request(&self, request: &RouteRequest<'_>) -> RouteOutcome {
            RouteOutcome::capture(self.name(), || {
                (
                    request.validate().map(|()| {
                        crate::RoutedCircuit::new(
                            (0..request.circuit().num_qubits()).collect(),
                            Vec::new(),
                        )
                    }),
                    SolverTelemetry::default(),
                )
            })
        }
    }

    #[test]
    fn provided_route_goes_through_route_request() {
        let c = Circuit::new(2);
        let g = arch::devices::linear(2);
        let boxed: Box<dyn Router> = Box::new(Always);
        let routed = boxed.route(&c, &g).expect("routes");
        assert_eq!(routed.swap_count(), 0);

        let oversized = Circuit::new(9);
        assert!(matches!(
            boxed.route(&oversized, &g),
            Err(RouteError::InvalidRequest(_))
        ));
    }
}

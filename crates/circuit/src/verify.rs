//! Independent QMR-solution verifier.
//!
//! The paper: *"To ensure correctness of our QMR solutions, we implemented
//! an independent verifier. The verifier traverses a circuit, evaluating
//! its effects on an initial map and checking that all two-qubit gates act
//! on connected qubits."* This module is that verifier; every router in the
//! repository (SATMAP, the relaxations, and all baselines) is checked
//! against it in tests and experiments.

use arch::ConnectivityGraph;

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::routed::{RoutedCircuit, RoutedOp};

/// Why a routed circuit failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The initial map is not an injective function into the device.
    BadInitialMap {
        /// Explanation.
        detail: String,
    },
    /// A SWAP was applied on a non-edge.
    SwapOnNonEdge {
        /// Index into the op sequence.
        op_index: usize,
        /// The offending pair.
        pair: (usize, usize),
    },
    /// A two-qubit gate executed on non-adjacent physical qubits.
    GateOnNonAdjacent {
        /// Index of the logical gate.
        gate_index: usize,
        /// Where its operands were mapped.
        pair: (usize, usize),
    },
    /// The routed ops do not replay the source gates exactly once in order.
    GateSequenceMismatch {
        /// Explanation.
        detail: String,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BadInitialMap { detail } => write!(f, "bad initial map: {detail}"),
            VerifyError::SwapOnNonEdge { op_index, pair } => {
                write!(
                    f,
                    "op {op_index}: swap on non-edge ({}, {})",
                    pair.0, pair.1
                )
            }
            VerifyError::GateOnNonAdjacent { gate_index, pair } => write!(
                f,
                "gate {gate_index} executes on non-adjacent physical qubits ({}, {})",
                pair.0, pair.1
            ),
            VerifyError::GateSequenceMismatch { detail } => {
                write!(f, "gate sequence mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies `routed` as a QMR solution for `source` on `graph`.
///
/// Checks that:
/// 1. the initial map is injective and within the device;
/// 2. every logical gate appears exactly once, in an order consistent with
///    the circuit's data dependencies (gates on disjoint qubits commute, so
///    any topological linearization of the gate DAG is accepted — SATMAP
///    emits strict program order, heuristic routers may interleave);
/// 3. every SWAP acts on an edge of the connectivity graph;
/// 4. every two-qubit gate acts on adjacent physical qubits under the map
///    in effect at its position.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, RoutedCircuit, RoutedOp, verify::verify};
/// let g = arch::devices::linear(3);
/// let mut c = Circuit::new(2);
/// c.cx(0, 1);
/// let routed = RoutedCircuit::new(vec![0, 1], vec![RoutedOp::Logical(0)]);
/// assert!(verify(&c, &g, &routed).is_ok());
/// ```
pub fn verify(
    source: &Circuit,
    graph: &ConnectivityGraph,
    routed: &RoutedCircuit,
) -> Result<(), VerifyError> {
    let n_logical = source.num_qubits();
    let n_phys = graph.num_qubits();
    let map = routed.initial_map();

    if map.len() != n_logical {
        return Err(VerifyError::BadInitialMap {
            detail: format!("map covers {} qubits, circuit has {n_logical}", map.len()),
        });
    }
    let mut used = vec![false; n_phys];
    for (q, &p) in map.iter().enumerate() {
        if p >= n_phys {
            return Err(VerifyError::BadInitialMap {
                detail: format!("logical q{q} mapped to nonexistent p{p}"),
            });
        }
        if used[p] {
            return Err(VerifyError::BadInitialMap {
                detail: format!("physical p{p} assigned twice"),
            });
        }
        used[p] = true;
    }

    // Per-qubit program order: gate k may only run once every earlier gate
    // sharing a qubit with it has run.
    let mut pending_per_qubit: Vec<std::collections::VecDeque<usize>> =
        vec![std::collections::VecDeque::new(); n_logical];
    for (k, g) in source.gates().iter().enumerate() {
        for q in g.qubits() {
            pending_per_qubit[q.0].push_back(k);
        }
    }
    let mut executed = vec![false; source.len()];
    let mut num_executed = 0usize;

    let mut current = map.to_vec();
    for (i, op) in routed.ops().iter().enumerate() {
        match *op {
            RoutedOp::Swap(a, b) => {
                if a == b {
                    continue; // no-op swap
                }
                if a >= n_phys || b >= n_phys || !graph.are_adjacent(a, b) {
                    return Err(VerifyError::SwapOnNonEdge {
                        op_index: i,
                        pair: (a, b),
                    });
                }
                for m in current.iter_mut() {
                    if *m == a {
                        *m = b;
                    } else if *m == b {
                        *m = a;
                    }
                }
            }
            RoutedOp::Logical(k) => {
                let Some(gate) = source.gates().get(k) else {
                    return Err(VerifyError::GateSequenceMismatch {
                        detail: format!("gate index {k} out of range at op {i}"),
                    });
                };
                if executed[k] {
                    return Err(VerifyError::GateSequenceMismatch {
                        detail: format!("gate {k} executed twice (op {i})"),
                    });
                }
                for q in gate.qubits() {
                    match pending_per_qubit[q.0].front() {
                        Some(&head) if head == k => {}
                        _ => {
                            return Err(VerifyError::GateSequenceMismatch {
                                detail: format!(
                                    "gate {k} at op {i} runs before an earlier gate on {q}"
                                ),
                            });
                        }
                    }
                }
                for q in gate.qubits() {
                    pending_per_qubit[q.0].pop_front();
                }
                executed[k] = true;
                num_executed += 1;
                if let Gate::Two { a, b, .. } = gate {
                    let (pa, pb) = (current[a.0], current[b.0]);
                    if !graph.are_adjacent(pa, pb) {
                        return Err(VerifyError::GateOnNonAdjacent {
                            gate_index: k,
                            pair: (pa, pb),
                        });
                    }
                }
            }
        }
    }
    if num_executed != source.len() {
        return Err(VerifyError::GateSequenceMismatch {
            detail: format!("only {num_executed} of {} gates executed", source.len()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        c
    }

    /// The paper's Fig. 3(b) connectivity: p0–p1–p2–p3 path with p1–p3?
    /// Fig. 3(b) shows a path p0–p1–p2–p3 plus edge p1–p3 is absent; the
    /// example solution uses edges (p0,p1), (p1,p2), (p2,p3).
    fn fig3_graph() -> ConnectivityGraph {
        ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn accepts_paper_solution() {
        // Fig. 3 bottom: q0→p1, q1→p0, q2→p2, q3→p3; swap(p2,p3) before
        // gate 4.
        let routed = RoutedCircuit::new(
            vec![1, 0, 2, 3],
            vec![
                RoutedOp::Logical(0),
                RoutedOp::Logical(1),
                RoutedOp::Logical(2),
                RoutedOp::Swap(2, 3),
                RoutedOp::Logical(3),
            ],
        );
        verify(&fig3_circuit(), &fig3_graph(), &routed).expect("paper solution verifies");
        assert_eq!(routed.swap_count(), 1);
    }

    #[test]
    fn rejects_gate_on_non_adjacent() {
        // Without the swap, gate 4 (q0,q3) sits on (p1,p3): not adjacent.
        let routed = RoutedCircuit::new(vec![1, 0, 2, 3], (0..4).map(RoutedOp::Logical).collect());
        let err = verify(&fig3_circuit(), &fig3_graph(), &routed).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::GateOnNonAdjacent { gate_index: 3, .. }
        ));
    }

    #[test]
    fn rejects_swap_on_non_edge() {
        let routed = RoutedCircuit::new(
            vec![1, 0, 2, 3],
            vec![RoutedOp::Swap(0, 3), RoutedOp::Logical(0)],
        );
        let err = verify(&fig3_circuit(), &fig3_graph(), &routed).unwrap_err();
        assert!(matches!(err, VerifyError::SwapOnNonEdge { .. }));
    }

    #[test]
    fn rejects_non_injective_map() {
        let routed = RoutedCircuit::new(vec![1, 1, 2, 3], vec![]);
        let err = verify(&fig3_circuit(), &fig3_graph(), &routed).unwrap_err();
        assert!(matches!(err, VerifyError::BadInitialMap { .. }));
    }

    #[test]
    fn rejects_missing_gates() {
        let routed = RoutedCircuit::new(vec![1, 0, 2, 3], vec![RoutedOp::Logical(0)]);
        let err = verify(&fig3_circuit(), &fig3_graph(), &routed).unwrap_err();
        assert!(matches!(err, VerifyError::GateSequenceMismatch { .. }));
    }

    #[test]
    fn rejects_out_of_order_gates() {
        // Gates 0 and 1 share q0, so running 1 before 0 is invalid.
        let routed = RoutedCircuit::new(
            vec![1, 0, 2, 3],
            vec![RoutedOp::Logical(1), RoutedOp::Logical(0)],
        );
        let err = verify(&fig3_circuit(), &fig3_graph(), &routed).unwrap_err();
        assert!(matches!(err, VerifyError::GateSequenceMismatch { .. }));
    }

    #[test]
    fn accepts_commuting_reorder() {
        // cx(0,1) and cx(2,3) act on disjoint qubits: either order is fine.
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        let g = ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let routed = RoutedCircuit::new(
            vec![0, 1, 2, 3],
            vec![RoutedOp::Logical(1), RoutedOp::Logical(0)],
        );
        verify(&c, &g, &routed).expect("commuting gates may interleave");
    }

    #[test]
    fn rejects_double_execution() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let g = ConnectivityGraph::from_edges(2, [(0, 1)]);
        let routed =
            RoutedCircuit::new(vec![0, 1], vec![RoutedOp::Logical(0), RoutedOp::Logical(0)]);
        let err = verify(&c, &g, &routed).unwrap_err();
        assert!(matches!(err, VerifyError::GateSequenceMismatch { .. }));
    }

    #[test]
    fn noop_swaps_allowed() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let g = arch::devices::linear(2);
        let routed =
            RoutedCircuit::new(vec![0, 1], vec![RoutedOp::Swap(1, 1), RoutedOp::Logical(0)]);
        verify(&c, &g, &routed).expect("no-op swap is fine");
    }

    #[test]
    fn one_qubit_gates_never_fail_adjacency() {
        let mut c = Circuit::new(1);
        c.h(0);
        let g = arch::devices::linear(3);
        let routed = RoutedCircuit::new(vec![2], vec![RoutedOp::Logical(0)]);
        verify(&c, &g, &routed).expect("1q gates are location-free");
    }
}

//! Gates and logical qubits.

use std::fmt;

/// A logical qubit, identified by a dense index within its circuit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Qubit(pub usize);

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Kinds of single-qubit gates.
///
/// The specific unitary is irrelevant for mapping and routing (only gate
/// *arity* and operands matter), but kinds are preserved so circuits
/// round-trip through OpenQASM.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum OneQubitKind {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate S.
    S,
    /// S-dagger.
    Sdg,
    /// T gate.
    T,
    /// T-dagger.
    Tdg,
    /// X-rotation by the attached parameter.
    Rx,
    /// Y-rotation by the attached parameter.
    Ry,
    /// Z-rotation by the attached parameter.
    Rz,
}

impl OneQubitKind {
    /// OpenQASM mnemonic.
    pub fn qasm_name(self) -> &'static str {
        match self {
            OneQubitKind::H => "h",
            OneQubitKind::X => "x",
            OneQubitKind::Y => "y",
            OneQubitKind::Z => "z",
            OneQubitKind::S => "s",
            OneQubitKind::Sdg => "sdg",
            OneQubitKind::T => "t",
            OneQubitKind::Tdg => "tdg",
            OneQubitKind::Rx => "rx",
            OneQubitKind::Ry => "ry",
            OneQubitKind::Rz => "rz",
        }
    }

    /// True if the kind takes an angle parameter.
    pub fn has_param(self) -> bool {
        matches!(self, OneQubitKind::Rx | OneQubitKind::Ry | OneQubitKind::Rz)
    }
}

/// Kinds of two-qubit gates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TwoQubitKind {
    /// Controlled-X (CNOT); first operand is the control.
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// Parameterized ZZ interaction (QAOA's `rzz`).
    Rzz,
}

impl TwoQubitKind {
    /// OpenQASM mnemonic.
    pub fn qasm_name(self) -> &'static str {
        match self {
            TwoQubitKind::Cx => "cx",
            TwoQubitKind::Cz => "cz",
            TwoQubitKind::Rzz => "rzz",
        }
    }

    /// True if the kind takes an angle parameter.
    pub fn has_param(self) -> bool {
        matches!(self, TwoQubitKind::Rzz)
    }
}

/// A gate application in a logical circuit.
#[derive(Clone, PartialEq, Debug)]
pub enum Gate {
    /// A single-qubit gate.
    One {
        /// Gate kind.
        kind: OneQubitKind,
        /// Operand.
        qubit: Qubit,
        /// Rotation angle for parameterized kinds.
        param: Option<f64>,
    },
    /// A two-qubit gate.
    Two {
        /// Gate kind.
        kind: TwoQubitKind,
        /// First operand (control for CX).
        a: Qubit,
        /// Second operand (target for CX).
        b: Qubit,
        /// Rotation angle for parameterized kinds.
        param: Option<f64>,
    },
}

impl Gate {
    /// Convenience constructor for a CX gate.
    pub fn cx(a: usize, b: usize) -> Self {
        Gate::Two {
            kind: TwoQubitKind::Cx,
            a: Qubit(a),
            b: Qubit(b),
            param: None,
        }
    }

    /// Convenience constructor for an H gate.
    pub fn h(q: usize) -> Self {
        Gate::One {
            kind: OneQubitKind::H,
            qubit: Qubit(q),
            param: None,
        }
    }

    /// True for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Two { .. })
    }

    /// The operands of this gate (one or two qubits).
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            Gate::One { qubit, .. } => vec![*qubit],
            Gate::Two { a, b, .. } => vec![*a, *b],
        }
    }

    /// Largest operand index plus one.
    pub fn min_qubits(&self) -> usize {
        self.qubits().iter().map(|q| q.0 + 1).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_helpers() {
        let g = Gate::cx(0, 2);
        assert!(g.is_two_qubit());
        assert_eq!(g.qubits(), vec![Qubit(0), Qubit(2)]);
        assert_eq!(g.min_qubits(), 3);
        let h = Gate::h(1);
        assert!(!h.is_two_qubit());
        assert_eq!(h.min_qubits(), 2);
    }

    #[test]
    fn qasm_names() {
        assert_eq!(OneQubitKind::Sdg.qasm_name(), "sdg");
        assert_eq!(TwoQubitKind::Cx.qasm_name(), "cx");
        assert!(OneQubitKind::Rz.has_param());
        assert!(!OneQubitKind::H.has_param());
        assert!(TwoQubitKind::Rzz.has_param());
    }
}

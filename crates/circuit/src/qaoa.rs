//! QAOA MaxCut circuits on random 3-regular graphs (Section VI of the
//! paper: the canonical *cyclic circuit* workload).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::circuit::Circuit;
use crate::gate::{Gate, OneQubitKind, Qubit};

/// A random simple 3-regular graph on `n` vertices (edges as `(a, b)` with
/// `a < b`), generated with the configuration model and rejection sampling.
///
/// # Panics
///
/// Panics if `n` is odd or `n < 4` (no 3-regular graph exists).
pub fn three_regular_graph(n: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "3-regular graphs need even n ≥ 4"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    'retry: loop {
        // Three half-edges ("stubs") per vertex, paired uniformly.
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| [v, v, v]).collect();
        stubs.shuffle(&mut rng);
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(3 * n / 2);
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            if a == b {
                continue 'retry; // self-loop
            }
            if edges.contains(&(a, b)) {
                continue 'retry; // multi-edge
            }
            edges.push((a, b));
        }
        edges.sort_unstable();
        return edges;
    }
}

/// Builds the repeated QAOA subcircuit `C_{γ,β}` for MaxCut on `edges`:
/// one `rzz(2γ)` per graph edge followed by an `rx(2β)` mixer on every
/// qubit. This is the unit the cyclic relaxation solves in isolation.
pub fn qaoa_subcircuit(n: usize, edges: &[(usize, usize)], gamma: f64, beta: f64) -> Circuit {
    let mut c = Circuit::named("qaoa_cycle", n);
    for &(a, b) in edges {
        c.rzz(a, b, 2.0 * gamma);
    }
    for q in 0..n {
        c.push(Gate::One {
            kind: OneQubitKind::Rx,
            qubit: Qubit(q),
            param: Some(2.0 * beta),
        });
    }
    c
}

/// A full QAOA MaxCut circuit: Hadamard layer then `cycles` repetitions of
/// the subcircuit (each cycle's angles differ, but the *structure* — all
/// that matters for QMR — is identical, footnote 1 of the paper).
pub fn qaoa_maxcut(n: usize, cycles: usize, seed: u64) -> Circuit {
    let edges = three_regular_graph(n, seed);
    let mut c = Circuit::named(&format!("qaoa_{n}q_{cycles}c"), n);
    for q in 0..n {
        c.h(q);
    }
    for cycle in 0..cycles {
        let gamma = 0.4 + 0.05 * cycle as f64;
        let beta = 0.3 - 0.02 * cycle as f64;
        c.extend_from(&qaoa_subcircuit(n, &edges, gamma, beta));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_regular_is_three_regular() {
        for n in [4usize, 6, 8, 10, 16] {
            let edges = three_regular_graph(n, 42);
            assert_eq!(edges.len(), 3 * n / 2);
            let mut degree = vec![0usize; n];
            for &(a, b) in &edges {
                assert!(a < b, "canonical orientation");
                degree[a] += 1;
                degree[b] += 1;
            }
            assert!(degree.iter().all(|&d| d == 3), "n={n}: {degree:?}");
            // Simple graph: no duplicate edges.
            let mut dedup = edges.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), edges.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(three_regular_graph(8, 1), three_regular_graph(8, 1));
        assert_ne!(three_regular_graph(8, 1), three_regular_graph(8, 2));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_n_rejected() {
        let _ = three_regular_graph(5, 0);
    }

    #[test]
    fn subcircuit_two_qubit_count() {
        let edges = three_regular_graph(6, 3);
        let sub = qaoa_subcircuit(6, &edges, 0.4, 0.3);
        assert_eq!(sub.num_two_qubit_gates(), 9); // 3n/2 = 9 edges
    }

    #[test]
    fn full_circuit_repeats_structure() {
        let c2 = qaoa_maxcut(6, 2, 5);
        let c4 = qaoa_maxcut(6, 4, 5);
        assert_eq!(c2.num_two_qubit_gates(), 18);
        assert_eq!(c4.num_two_qubit_gates(), 36);
        // Same interaction histogram shape (structure repeats).
        let h2: Vec<_> = c2.interaction_histogram().iter().map(|&(p, _)| p).collect();
        let h4: Vec<_> = c4.interaction_histogram().iter().map(|&(p, _)| p).collect();
        assert_eq!(h2, h4);
    }
}

//! Quantum-circuit IR, benchmarks, and QMR solution checking.
//!
//! The circuit substrate of the SATMAP (MICRO 2022) reproduction:
//!
//! * [`Circuit`] / [`Gate`] — the logical-circuit IR, with slicing and
//!   repetition (the structures the paper's relaxations exploit);
//! * [`qasm`] — an OpenQASM 2.0 subset parser/printer;
//! * [`generators`], [`qaoa`], [`suite`] — benchmark families standing in
//!   for the paper's RevLib/Quipper/ScaffoldCC collection and its QAOA
//!   workloads;
//! * [`RoutedCircuit`] — QMR solutions (initial map + gates + SWAPs);
//! * [`verify`] — the independent solution verifier;
//! * [`Router`] / [`RouteRequest`] / [`RouteOutcome`] — the request-driven
//!   interface every mapping algorithm implements (see [`request`]).
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, Gate};
//! let mut c = Circuit::new(3);
//! c.h(0);
//! c.cx(0, 1);
//! c.cx(1, 2);
//! assert_eq!(c.num_two_qubit_gates(), 2);
//! assert_eq!(c.slices(1).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod gate;
pub mod generators;
pub mod qaoa;
pub mod qasm;
pub mod request;
mod routed;
mod router;
pub mod suite;
pub mod verify;

pub use circuit::Circuit;
pub use gate::{Gate, OneQubitKind, Qubit, TwoQubitKind};
pub use request::{
    escape_json, Objective, Parallelism, RepeatedStructure, RouteOutcome, RouteQuality,
    RouteRequest, RouteSpec, SearchStrategy, Slicing,
};
pub use routed::{RoutedCircuit, RoutedOp};
pub use router::{RouteError, Router};

//! Routed (physical) circuits: the output of a QMR solver.

use arch::ConnectivityGraph;

/// One operation of a routed circuit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoutedOp {
    /// The logical gate with this index (into the source [`crate::Circuit`])
    /// executes here, at wherever the current map places its operands.
    Logical(usize),
    /// A SWAP of two physical qubits inserted by routing.
    Swap(usize, usize),
}

/// A solution to the QMR problem: an initial logical→physical map plus the
/// original gates interleaved with inserted SWAPs.
///
/// Use [`crate::verify::verify`] to check a routed circuit against its
/// source circuit and device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutedCircuit {
    /// `initial_map[q]` is the physical qubit initially holding logical `q`.
    initial_map: Vec<usize>,
    ops: Vec<RoutedOp>,
}

impl RoutedCircuit {
    /// Creates a routed circuit from an initial map and an op sequence.
    pub fn new(initial_map: Vec<usize>, ops: Vec<RoutedOp>) -> Self {
        RoutedCircuit { initial_map, ops }
    }

    /// The initial logical→physical map.
    pub fn initial_map(&self) -> &[usize] {
        &self.initial_map
    }

    /// The operation sequence.
    pub fn ops(&self) -> &[RoutedOp] {
        &self.ops
    }

    /// Number of inserted SWAP operations.
    pub fn swap_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, RoutedOp::Swap(a, b) if a != b))
            .count()
    }

    /// Number of *added* CNOT gates, the paper's cost metric
    /// (each SWAP decomposes into 3 CNOTs).
    pub fn added_gates(&self) -> usize {
        3 * self.swap_count()
    }

    /// The final logical→physical map after all swaps execute.
    pub fn final_map(&self) -> Vec<usize> {
        let mut phys_to_logical: Vec<Option<usize>> = Vec::new();
        let max_phys = self.initial_map.iter().copied().max().unwrap_or(0);
        let mut upper = max_phys;
        for op in &self.ops {
            if let RoutedOp::Swap(a, b) = op {
                upper = upper.max(*a).max(*b);
            }
        }
        phys_to_logical.resize(upper + 1, None);
        for (q, &p) in self.initial_map.iter().enumerate() {
            phys_to_logical[p] = Some(q);
        }
        for op in &self.ops {
            if let RoutedOp::Swap(a, b) = op {
                phys_to_logical.swap(*a, *b);
            }
        }
        let mut map = vec![usize::MAX; self.initial_map.len()];
        for (p, q) in phys_to_logical.iter().enumerate() {
            if let Some(q) = q {
                map[*q] = p;
            }
        }
        map
    }

    /// Lowers the routed circuit to a *physical* [`crate::Circuit`] over the
    /// device's qubits: every logical gate is re-addressed to the physical
    /// qubits holding its operands at that point, and every SWAP becomes
    /// three CNOTs (the paper's cost model).
    ///
    /// # Panics
    ///
    /// Panics if an op references a gate index outside `source`.
    pub fn to_physical_circuit(&self, source: &crate::Circuit, num_phys: usize) -> crate::Circuit {
        use crate::gate::{Gate, Qubit};
        let mut map = self.initial_map.clone();
        let mut out = crate::Circuit::named(&format!("{}_physical", source.name()), num_phys);
        for op in &self.ops {
            match *op {
                RoutedOp::Swap(a, b) => {
                    if a != b {
                        out.cx(a, b);
                        out.cx(b, a);
                        out.cx(a, b);
                        for m in map.iter_mut() {
                            if *m == a {
                                *m = b;
                            } else if *m == b {
                                *m = a;
                            }
                        }
                    }
                }
                RoutedOp::Logical(k) => match &source.gates()[k] {
                    Gate::One { kind, qubit, param } => out.push(Gate::One {
                        kind: *kind,
                        qubit: Qubit(map[qubit.0]),
                        param: *param,
                    }),
                    Gate::Two { kind, a, b, param } => out.push(Gate::Two {
                        kind: *kind,
                        a: Qubit(map[a.0]),
                        b: Qubit(map[b.0]),
                        param: *param,
                    }),
                },
            }
        }
        out
    }

    /// Total log-infidelity of the routed circuit under `noise`: the sum of
    /// `-ln(fidelity)` over inserted SWAPs and executed two-qubit gates.
    /// Lower is better; `exp(-result)` is the success probability.
    pub fn log_infidelity(
        &self,
        source: &crate::Circuit,
        graph: &ConnectivityGraph,
        noise: &arch::NoiseModel,
    ) -> f64 {
        let _ = graph;
        let mut map = self.initial_map.clone();
        let mut total = 0.0f64;
        for op in &self.ops {
            match op {
                RoutedOp::Swap(a, b) => {
                    if a != b {
                        total += -noise.swap_fidelity(*a, *b).ln();
                        for m in map.iter_mut() {
                            if *m == *a {
                                *m = *b;
                            } else if *m == *b {
                                *m = *a;
                            }
                        }
                    }
                }
                RoutedOp::Logical(k) => {
                    if let crate::Gate::Two { a, b, .. } = &source.gates()[*k] {
                        total += -noise.cx_fidelity(map[a.0], map[b.0]).ln();
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_count_ignores_noops() {
        let r = RoutedCircuit::new(
            vec![0, 1],
            vec![
                RoutedOp::Swap(0, 0),
                RoutedOp::Logical(0),
                RoutedOp::Swap(0, 1),
            ],
        );
        assert_eq!(r.swap_count(), 1);
        assert_eq!(r.added_gates(), 3);
    }

    #[test]
    fn final_map_tracks_swaps() {
        // Paper running example: initial q0→p1, q1→p0, q2→p2, q3→p3;
        // swap(p2,p3) before the 4th gate.
        let r = RoutedCircuit::new(
            vec![1, 0, 2, 3],
            vec![
                RoutedOp::Logical(0),
                RoutedOp::Logical(1),
                RoutedOp::Logical(2),
                RoutedOp::Swap(2, 3),
                RoutedOp::Logical(3),
            ],
        );
        assert_eq!(r.final_map(), vec![1, 0, 3, 2]);
    }

    #[test]
    fn final_map_without_swaps_is_initial() {
        let r = RoutedCircuit::new(vec![2, 0, 1], vec![RoutedOp::Logical(0)]);
        assert_eq!(r.final_map(), vec![2, 0, 1]);
    }

    #[test]
    fn physical_lowering_readdresses_gates() {
        let mut c = crate::Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let r = RoutedCircuit::new(
            vec![2, 1],
            vec![
                RoutedOp::Logical(0),
                RoutedOp::Swap(2, 3),
                RoutedOp::Logical(1),
            ],
        );
        let phys = r.to_physical_circuit(&c, 4);
        assert_eq!(phys.num_qubits(), 4);
        // H lands on p2; swap becomes 3 CX; CX lands on (p3, p1).
        assert_eq!(phys.len(), 1 + 3 + 1);
        assert_eq!(phys.num_two_qubit_gates(), 4);
        match &phys.gates()[4] {
            crate::Gate::Two { a, b, .. } => {
                assert_eq!((a.0, b.0), (3, 1));
            }
            g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn log_infidelity_counts_swaps_and_gates() {
        let g = arch::devices::tokyo_minus();
        let noise = arch::NoiseModel::synthetic(&g, 3);
        let mut c = crate::Circuit::new(2);
        c.cx(0, 1);
        let cheap = RoutedCircuit::new(vec![0, 1], vec![RoutedOp::Logical(0)]);
        let costly = RoutedCircuit::new(
            vec![0, 1],
            vec![
                RoutedOp::Swap(1, 2),
                RoutedOp::Swap(1, 2),
                RoutedOp::Logical(0),
            ],
        );
        let f_cheap = cheap.log_infidelity(&c, &g, &noise);
        let f_costly = costly.log_infidelity(&c, &g, &noise);
        assert!(f_costly > f_cheap);
    }
}

//! The 160-circuit benchmark suite.
//!
//! Stands in for the RevLib/Quipper/ScaffoldCC collection of the paper
//! (their footnote 3): a deterministic suite spanning 3–16 logical qubits
//! and ~5–3000 two-qubit gates with a median near the paper's 123. The
//! first 40 entries carry the names (and approximate sizes) of the small
//! RevLib circuits that appear in the paper's figures; the remainder are
//! named by family and scale. See DESIGN.md for the substitution rationale.

use crate::circuit::Circuit;
use crate::generators;

/// A named benchmark circuit.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name (unique within the suite).
    pub name: String,
    /// The circuit.
    pub circuit: Circuit,
}

/// Deterministic 64-bit FNV-1a hash for per-benchmark seeds.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Families used to synthesize benchmark content.
#[derive(Clone, Copy, Debug)]
enum Family {
    /// Reversible arithmetic (Toffoli networks): locality-biased random CX.
    Reversible,
    /// Ripple-carry adder.
    Adder,
    /// Mod-counter Toffoli rounds.
    ModCounter,
    /// Quantum Fourier transform (all-to-all).
    Qft,
    /// Nearest-neighbor Ising chain.
    Ising,
    /// CNOT ladder.
    Graycode,
    /// Unstructured random.
    Random,
}

fn build(name: &str, family: Family, qubits: usize, two_qubit: usize) -> Benchmark {
    let seed = fnv1a(name);
    let mut circuit = match family {
        Family::Reversible => {
            generators::random_local(qubits, two_qubit, (qubits / 2).max(1), 0.4, seed)
        }
        Family::Adder => {
            let bits = ((qubits.saturating_sub(2)) / 2).max(1);
            let base = generators::ripple_adder(bits);
            scale_to(base, two_qubit)
        }
        Family::ModCounter => {
            // Each round is 7 two-qubit gates.
            let rounds = (two_qubit / 7).max(1);
            generators::mod_counter(qubits.max(3), rounds)
        }
        Family::Qft => {
            let base = generators::qft(qubits);
            scale_to(base, two_qubit)
        }
        Family::Ising => {
            // Each layer is 2(n-1) two-qubit gates.
            let layers = (two_qubit / (2 * (qubits.saturating_sub(1)).max(1))).max(1);
            generators::ising_model(qubits, layers)
        }
        Family::Graycode => {
            let base = generators::graycode(qubits);
            scale_to(base, two_qubit)
        }
        Family::Random => generators::random_local(qubits, two_qubit, qubits - 1, 0.2, seed),
    };
    circuit.set_name(name);
    Benchmark {
        name: name.to_string(),
        circuit,
    }
}

/// Repeats `base` until it reaches at least `two_qubit` two-qubit gates
/// (structured circuits keep their structure; size is met by iteration).
fn scale_to(base: Circuit, two_qubit: usize) -> Circuit {
    let per = base.num_two_qubit_gates().max(1);
    let reps = two_qubit.div_ceil(per).max(1);
    base.repeated(reps)
}

/// Small RevLib-named entries (name, family, qubits, two-qubit gates),
/// mirroring circuits that appear by name in the paper's Figs. 10–11.
const NAMED_SMALL: &[(&str, Family, usize, usize)] = &[
    ("3_17_13", Family::Reversible, 3, 17),
    ("miller_11", Family::Reversible, 3, 23),
    ("ham3_102", Family::Reversible, 3, 11),
    ("ex-1_166", Family::Reversible, 3, 9),
    ("4gt11_82", Family::Reversible, 5, 18),
    ("4gt11_83", Family::Reversible, 5, 14),
    ("4gt11_84", Family::Reversible, 5, 7),
    ("4mod5-v0_18", Family::Reversible, 5, 31),
    ("4mod5-v0_19", Family::Reversible, 5, 16),
    ("4mod5-v0_20", Family::Reversible, 5, 10),
    ("4mod5-v1_22", Family::Reversible, 5, 11),
    ("4mod5-v1_23", Family::Reversible, 5, 30),
    ("4mod5-v1_24", Family::Reversible, 5, 16),
    ("4mod5-bdd_287", Family::Reversible, 7, 31),
    ("mod5d1_63", Family::ModCounter, 5, 13),
    ("mod5mils_65", Family::ModCounter, 5, 16),
    ("alu-v0_27", Family::Reversible, 5, 17),
    ("alu-v1_28", Family::Reversible, 5, 18),
    ("alu-v1_29", Family::Reversible, 5, 17),
    ("alu-v2_33", Family::Reversible, 5, 17),
    ("alu-v3_34", Family::Reversible, 5, 24),
    ("alu-v3_35", Family::Reversible, 5, 18),
    ("alu-v4_37", Family::Reversible, 5, 18),
    ("alu-bdd_288", Family::Reversible, 7, 38),
    ("ex1_226", Family::Reversible, 6, 5),
    ("qe_qft_4", Family::Qft, 4, 12),
    ("qe_qft_5", Family::Qft, 5, 20),
    ("rd32-v0_66", Family::Reversible, 4, 16),
    ("rd32-v1_68", Family::Reversible, 4, 16),
    ("4gt13_92", Family::Reversible, 5, 30),
    ("4gt13-v1_93", Family::Reversible, 5, 17),
    ("4gt5_75", Family::Reversible, 5, 22),
    ("graycode6_47", Family::Graycode, 6, 5),
    ("xor5_254", Family::Graycode, 6, 5),
    ("ising_model_10", Family::Ising, 10, 90),
    ("decod24-v0_38", Family::Reversible, 4, 23),
    ("decod24-v1_41", Family::Reversible, 4, 21),
    ("decod24-v2_43", Family::Reversible, 4, 22),
    ("ising_model_13", Family::Ising, 13, 120),
    ("ising_model_16", Family::Ising, 16, 150),
];

/// Builds the full 160-benchmark suite.
///
/// Deterministic: every call returns identical circuits.
///
/// # Examples
///
/// ```
/// let suite = circuit::suite::suite();
/// assert_eq!(suite.len(), 160);
/// assert!(suite.iter().all(|b| b.circuit.num_qubits() <= 16));
/// ```
pub fn suite() -> Vec<Benchmark> {
    let mut out: Vec<Benchmark> = NAMED_SMALL
        .iter()
        .map(|&(name, family, q, g)| build(name, family, q, g))
        .collect();

    // Synthetic mid/large entries: cycle families and scale sizes. Small
    // tiers use all families; large tiers stick to families whose
    // interaction graphs do *not* embed in the device (like the paper's
    // large RevLib circuits) — nearest-neighbor families (Ising, adders)
    // would otherwise be trivially solvable at any size.
    let small_families: &[Family] = &[
        Family::Reversible,
        Family::Adder,
        Family::ModCounter,
        Family::Qft,
        Family::Random,
        Family::Ising,
    ];
    let large_families: &[Family] = &[Family::Reversible, Family::Qft, Family::Random];
    // (count, qubit range, gate range, families); geometric gate interpolation.
    type Tier<'a> = (usize, (usize, usize), (usize, usize), &'a [Family]);
    let tiers: &[Tier] = &[
        (40, (5, 10), (30, 120), small_families),
        (40, (8, 14), (120, 400), small_families),
        (25, (10, 16), (400, 1200), large_families),
        (15, (12, 16), (1200, 3000), large_families),
    ];
    for (tier_idx, &(count, (q_lo, q_hi), (g_lo, g_hi), families)) in tiers.iter().enumerate() {
        for i in 0..count {
            let family = families[i % families.len()];
            let t = i as f64 / (count.saturating_sub(1)).max(1) as f64;
            let gates = (g_lo as f64 * (g_hi as f64 / g_lo as f64).powf(t)).round() as usize;
            let qubits = q_lo + (i * 7) % (q_hi - q_lo + 1);
            let name = format!(
                "{}_{}q_{}g_t{}",
                family_tag(family),
                qubits,
                gates,
                tier_idx + 1
            );
            out.push(build(&name, family, qubits, gates));
        }
    }
    assert_eq!(out.len(), 160);
    out
}

fn family_tag(f: Family) -> &'static str {
    match f {
        Family::Reversible => "rev",
        Family::Adder => "adder",
        Family::ModCounter => "modc",
        Family::Qft => "qft",
        Family::Ising => "ising",
        Family::Graycode => "gray",
        Family::Random => "rand",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_160_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 160);
        let mut names: Vec<&str> = s.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 160, "duplicate benchmark names");
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite();
        let b = suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.circuit.gates(), y.circuit.gates(), "{}", x.name);
        }
    }

    #[test]
    fn qubit_and_gate_ranges_match_paper_scale() {
        let s = suite();
        let mut sizes: Vec<usize> = s.iter().map(|b| b.circuit.num_two_qubit_gates()).collect();
        sizes.sort_unstable();
        assert!(*sizes.first().expect("nonempty") >= 5);
        assert!(
            *sizes.last().expect("nonempty") >= 2500,
            "has large circuits"
        );
        // Median near the paper's 123.
        let median = sizes[sizes.len() / 2];
        assert!(
            (60..=260).contains(&median),
            "median {median} drifted from the paper's scale"
        );
        for b in &s {
            assert!(
                (3..=16).contains(&b.circuit.num_qubits()),
                "{}: {} qubits",
                b.name,
                b.circuit.num_qubits()
            );
            assert!(b.circuit.num_two_qubit_gates() > 0, "{}", b.name);
        }
    }

    #[test]
    fn named_entries_have_requested_sizes() {
        let s = suite();
        let by_name = |n: &str| {
            s.iter()
                .find(|b| b.name == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        assert_eq!(by_name("graycode6_47").circuit.num_two_qubit_gates(), 5);
        assert_eq!(by_name("miller_11").circuit.num_qubits(), 3);
        assert_eq!(by_name("ising_model_10").circuit.num_qubits(), 10);
    }
}

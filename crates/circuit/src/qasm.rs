//! OpenQASM 2.0 subset parser and printer.
//!
//! Supports the features present in the RevLib/Quipper-derived benchmark
//! circuits: a single quantum register, the standard-library one-qubit
//! gates, `cx`/`cz`/`rzz`, and ignorable classical plumbing (`creg`,
//! `measure`, `barrier`, `include`).

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::{Gate, OneQubitKind, Qubit, TwoQubitKind};

/// Error from [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseQasmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

fn err(line: usize, message: impl Into<String>) -> ParseQasmError {
    ParseQasmError {
        line: line + 1,
        message: message.into(),
    }
}

/// Parses an OpenQASM 2.0 document into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] for unsupported gates, undeclared registers,
/// or malformed operands.
///
/// # Examples
///
/// ```
/// let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
/// let c = circuit::qasm::parse(src)?;
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.num_two_qubit_gates(), 1);
/// # Ok::<(), circuit::qasm::ParseQasmError>(())
/// ```
pub fn parse(src: &str) -> Result<Circuit, ParseQasmError> {
    let mut reg_name: Option<String> = None;
    let mut circuit = Circuit::new(0);

    // Strip comments, then split on ';'.
    let cleaned: Vec<(usize, String)> = src
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let l = l.split("//").next().unwrap_or("").trim();
            (i, l.to_string())
        })
        .collect();

    for (lineno, line) in cleaned {
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            let (head, rest) = match stmt.find(|c: char| c.is_whitespace() || c == '(') {
                Some(pos) => stmt.split_at(pos),
                None => (stmt, ""),
            };
            match head {
                "OPENQASM" | "include" | "creg" | "barrier" | "measure" => continue,
                "qreg" => {
                    let rest = rest.trim();
                    let (name, size) = parse_reg_decl(rest).ok_or_else(|| {
                        err(lineno, format!("malformed qreg declaration '{rest}'"))
                    })?;
                    if reg_name.is_some() {
                        return Err(err(lineno, "multiple quantum registers not supported"));
                    }
                    reg_name = Some(name.to_string());
                    circuit = Circuit::new(size);
                }
                _ => {
                    let reg = reg_name
                        .as_deref()
                        .ok_or_else(|| err(lineno, "gate before qreg declaration"))?;
                    let gate = parse_gate(stmt, reg).map_err(|m| err(lineno, m))?;
                    if gate.min_qubits() > circuit.num_qubits() {
                        return Err(err(lineno, "qubit index out of register bounds"));
                    }
                    circuit.push(gate);
                }
            }
        }
    }
    if reg_name.is_none() {
        return Err(ParseQasmError {
            line: 0,
            message: "no qreg declaration found".into(),
        });
    }
    Ok(circuit)
}

fn parse_reg_decl(decl: &str) -> Option<(&str, usize)> {
    let open = decl.find('[')?;
    let close = decl.find(']')?;
    let name = decl[..open].trim();
    let size: usize = decl[open + 1..close].trim().parse().ok()?;
    if name.is_empty() {
        return None;
    }
    Some((name, size))
}

fn parse_operand(tok: &str, reg: &str) -> Result<Qubit, String> {
    let tok = tok.trim();
    let open = tok
        .find('[')
        .ok_or_else(|| format!("bad operand '{tok}'"))?;
    let close = tok
        .find(']')
        .ok_or_else(|| format!("bad operand '{tok}'"))?;
    if tok[..open].trim() != reg {
        return Err(format!("unknown register in operand '{tok}'"));
    }
    tok[open + 1..close]
        .trim()
        .parse()
        .map(Qubit)
        .map_err(|_| format!("bad qubit index in '{tok}'"))
}

fn parse_param(text: &str) -> Result<f64, String> {
    // Accepts plain floats plus the common `pi`, `pi/2`, `-pi/4`, `2*pi`
    // spellings used by benchmark files.
    let t = text.trim().replace(' ', "");
    let parse_atom = |a: &str| -> Result<f64, String> {
        let (sign, a) = if let Some(s) = a.strip_prefix('-') {
            (-1.0, s)
        } else {
            (1.0, a)
        };
        if a == "pi" {
            return Ok(sign * std::f64::consts::PI);
        }
        a.parse::<f64>()
            .map(|v| sign * v)
            .map_err(|_| format!("bad parameter '{a}'"))
    };
    if let Some((num, den)) = t.split_once('/') {
        return Ok(parse_atom(num)? / parse_atom(den)?);
    }
    if let Some((x, y)) = t.split_once('*') {
        return Ok(parse_atom(x)? * parse_atom(y)?);
    }
    parse_atom(&t)
}

fn parse_gate(stmt: &str, reg: &str) -> Result<Gate, String> {
    // Shape: name[(param)] operand[, operand]
    let (name_and_param, operands) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos) if !stmt[..pos].contains('(') || stmt[..pos].contains(')') => stmt.split_at(pos),
        _ => {
            // Parameterized with space inside parens is unusual; fall back
            // to splitting after the closing paren.
            match stmt.find(')') {
                Some(p) => stmt.split_at(p + 1),
                None => return Err(format!("malformed gate statement '{stmt}'")),
            }
        }
    };
    let name_and_param = name_and_param.trim();
    let operands = operands.trim();
    let (name, param) = match name_and_param.split_once('(') {
        Some((n, p)) => {
            let p = p.strip_suffix(')').ok_or("missing ')'")?;
            (n.trim(), Some(parse_param(p)?))
        }
        None => (name_and_param, None),
    };

    let ops: Vec<&str> = operands.split(',').map(str::trim).collect();
    let one = |kind: OneQubitKind| -> Result<Gate, String> {
        if ops.len() != 1 {
            return Err(format!("'{name}' expects 1 operand"));
        }
        if kind.has_param() && param.is_none() {
            return Err(format!("'{name}' requires a parameter"));
        }
        Ok(Gate::One {
            kind,
            qubit: parse_operand(ops[0], reg)?,
            param,
        })
    };
    let two = |kind: TwoQubitKind| -> Result<Gate, String> {
        if ops.len() != 2 {
            return Err(format!("'{name}' expects 2 operands"));
        }
        Ok(Gate::Two {
            kind,
            a: parse_operand(ops[0], reg)?,
            b: parse_operand(ops[1], reg)?,
            param,
        })
    };
    match name {
        "h" => one(OneQubitKind::H),
        "x" => one(OneQubitKind::X),
        "y" => one(OneQubitKind::Y),
        "z" => one(OneQubitKind::Z),
        "s" => one(OneQubitKind::S),
        "sdg" => one(OneQubitKind::Sdg),
        "t" => one(OneQubitKind::T),
        "tdg" => one(OneQubitKind::Tdg),
        "rx" => one(OneQubitKind::Rx),
        "ry" => one(OneQubitKind::Ry),
        "rz" | "u1" => one(OneQubitKind::Rz),
        "cx" | "CX" => two(TwoQubitKind::Cx),
        "cz" => two(TwoQubitKind::Cz),
        "rzz" => two(TwoQubitKind::Rzz),
        other => Err(format!("unsupported gate '{other}'")),
    }
}

/// Renders a [`Circuit`] as OpenQASM 2.0.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, qasm};
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cx(0, 1);
/// let text = qasm::print(&c);
/// let back = qasm::parse(&text)?;
/// assert_eq!(back.gates(), c.gates());
/// # Ok::<(), qasm::ParseQasmError>(())
/// ```
pub fn print(circuit: &Circuit) -> String {
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for g in circuit.gates() {
        match g {
            Gate::One { kind, qubit, param } => match param {
                Some(p) => {
                    let _ = writeln!(out, "{}({}) q[{}];", kind.qasm_name(), p, qubit.0);
                }
                None => {
                    let _ = writeln!(out, "{} q[{}];", kind.qasm_name(), qubit.0);
                }
            },
            Gate::Two { kind, a, b, param } => match param {
                Some(p) => {
                    let _ = writeln!(out, "{}({}) q[{}],q[{}];", kind.qasm_name(), p, a.0, b.0);
                }
                None => {
                    let _ = writeln!(out, "{} q[{}],q[{}];", kind.qasm_name(), a.0, b.0);
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_program() {
        let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
rz(pi/2) q[2];
cx q[3], q[2];
measure q[0] -> c[0];
"#;
        let c = parse(src).expect("parses");
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_two_qubit_gates(), 2);
    }

    #[test]
    fn parses_params() {
        let src = "qreg q[1];\nrz(-pi/4) q[0];\nrx(0.5) q[0];\nry(2*pi) q[0];\n";
        let c = parse(src).expect("parses");
        match &c.gates()[0] {
            Gate::One { param: Some(p), .. } => {
                assert!((p + std::f64::consts::FRAC_PI_4).abs() < 1e-12)
            }
            g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn rejects_unknown_gate() {
        let e = parse("qreg q[2];\nccx q[0],q[1];\n").unwrap_err();
        assert!(e.message.contains("unsupported"), "{e}");
    }

    #[test]
    fn rejects_missing_qreg() {
        assert!(parse("h q[0];\n").is_err());
        assert!(parse("OPENQASM 2.0;\n").is_err());
    }

    #[test]
    fn rejects_out_of_bounds_index() {
        assert!(parse("qreg q[2];\ncx q[0],q[5];\n").is_err());
    }

    #[test]
    fn rejects_wrong_register() {
        assert!(parse("qreg q[2];\nh r[0];\n").is_err());
    }

    #[test]
    fn multiple_statements_per_line() {
        let c = parse("qreg q[2]; h q[0]; cx q[0],q[1];").expect("parses");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn comments_ignored() {
        let c = parse("// top\nqreg q[1]; // decl\nh q[0]; // gate\n").expect("parses");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn print_parse_round_trip() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rzz(1, 2, 0.25);
        c.push(Gate::One {
            kind: OneQubitKind::Rz,
            qubit: Qubit(2),
            param: Some(1.5),
        });
        let back = parse(&print(&c)).expect("round trip");
        assert_eq!(back.num_qubits(), 3);
        assert_eq!(back.gates(), c.gates());
    }
}

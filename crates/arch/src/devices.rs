//! Named device topologies.
//!
//! Includes the three variants of the IBM Q20 Tokyo architecture the paper
//! evaluates (Fig. 9) plus generic families (linear, ring, grid, heavy-hex)
//! useful for tests and extensions.
//!
//! The Tokyo family is laid out as a 4×5 grid (qubit `i` at row `i / 5`,
//! column `i % 5`):
//!
//! * **Tokyo−** (Fig. 9a): the bare grid — diagonal edges removed;
//! * **Tokyo** (Fig. 9b): the grid plus the 12 diagonal pairs of the IBM Q20
//!   Tokyo coupling map (crossed diagonals in alternating grid squares), so
//!   its average degree (4.3) sits exactly halfway between Tokyo− (3.1) and
//!   Tokyo+ (5.5) as the paper requires;
//! * **Tokyo+** (Fig. 9c): the grid plus *both* diagonals of every square.

use crate::graph::ConnectivityGraph;

const TOKYO_ROWS: usize = 4;
const TOKYO_COLS: usize = 5;

fn grid_edges(rows: usize, cols: usize) -> Vec<(usize, usize)> {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    edges
}

fn all_diagonal_edges(rows: usize, cols: usize) -> Vec<(usize, usize)> {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows - 1 {
        for c in 0..cols - 1 {
            edges.push((idx(r, c), idx(r + 1, c + 1)));
            edges.push((idx(r, c + 1), idx(r + 1, c)));
        }
    }
    edges
}

/// Diagonal pairs present in the IBM Q20 Tokyo coupling map: crossed
/// diagonals in alternating unit squares of the 4×5 grid.
fn tokyo_diagonal_edges() -> Vec<(usize, usize)> {
    let idx = |r: usize, c: usize| r * TOKYO_COLS + c;
    let mut edges = Vec::new();
    for r in 0..TOKYO_ROWS - 1 {
        for c in 0..TOKYO_COLS - 1 {
            // Squares with odd column index carry the crossed diagonals
            // (matches the X-pattern of the published device picture).
            if c % 2 == 1 {
                edges.push((idx(r, c), idx(r + 1, c + 1)));
                edges.push((idx(r, c + 1), idx(r + 1, c)));
            }
        }
    }
    edges
}

/// The IBM Q20 Tokyo connectivity graph (Fig. 9b), 20 qubits.
pub fn tokyo() -> ConnectivityGraph {
    let mut edges = grid_edges(TOKYO_ROWS, TOKYO_COLS);
    edges.extend(tokyo_diagonal_edges());
    ConnectivityGraph::from_named_edges("tokyo", TOKYO_ROWS * TOKYO_COLS, edges)
}

/// Tokyo with all diagonal edges removed (Fig. 9a): a 4×5 grid.
pub fn tokyo_minus() -> ConnectivityGraph {
    ConnectivityGraph::from_named_edges(
        "tokyo-",
        TOKYO_ROWS * TOKYO_COLS,
        grid_edges(TOKYO_ROWS, TOKYO_COLS),
    )
}

/// Tokyo with both diagonals in every grid square (Fig. 9c).
pub fn tokyo_plus() -> ConnectivityGraph {
    let mut edges = grid_edges(TOKYO_ROWS, TOKYO_COLS);
    edges.extend(all_diagonal_edges(TOKYO_ROWS, TOKYO_COLS));
    ConnectivityGraph::from_named_edges("tokyo+", TOKYO_ROWS * TOKYO_COLS, edges)
}

/// A linear (1-D nearest-neighbor) architecture on `n` qubits.
pub fn linear(n: usize) -> ConnectivityGraph {
    ConnectivityGraph::from_named_edges("linear", n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
}

/// A ring on `n ≥ 3` qubits.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> ConnectivityGraph {
    assert!(n >= 3, "a ring needs at least 3 qubits");
    ConnectivityGraph::from_named_edges("ring", n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// A `rows × cols` grid architecture.
pub fn grid(rows: usize, cols: usize) -> ConnectivityGraph {
    ConnectivityGraph::from_named_edges("grid", rows * cols, grid_edges(rows, cols))
}

/// A simplified heavy-hex-style lattice of `cells` hexagonal cells in a row,
/// as used by IBM's larger devices: degree ≤ 3, sparse connectivity.
pub fn heavy_hex(cells: usize) -> ConnectivityGraph {
    assert!(cells >= 1, "need at least one cell");
    // Each cell: a hexagon sharing one vertical edge with the next.
    // Vertices per cell after the first: 4 new ones.
    let n = 6 + (cells - 1) * 4;
    let mut edges = Vec::new();
    // First hexagon 0-1-2-3-4-5-0.
    for i in 0..6 {
        edges.push((i, (i + 1) % 6));
    }
    let mut right_top = 1usize; // shared edge endpoints of the previous cell
    let mut right_bottom = 2usize;
    let mut next = 6usize;
    for _ in 1..cells {
        let (a, b, c, d) = (next, next + 1, next + 2, next + 3);
        next += 4;
        // New hexagon: right_top - a - b - c - d - right_bottom - right_top.
        edges.push((right_top, a));
        edges.push((a, b));
        edges.push((b, c));
        edges.push((c, d));
        edges.push((d, right_bottom));
        right_top = b;
        right_bottom = c;
    }
    ConnectivityGraph::from_named_edges("heavy-hex", n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokyo_family_shapes() {
        let (minus, base, plus) = (tokyo_minus(), tokyo(), tokyo_plus());
        assert_eq!(minus.num_qubits(), 20);
        assert_eq!(base.num_qubits(), 20);
        assert_eq!(plus.num_qubits(), 20);
        assert_eq!(minus.num_edges(), 31);
        assert_eq!(base.num_edges(), 43);
        assert_eq!(plus.num_edges(), 55);
        assert!(minus.is_connected() && base.is_connected() && plus.is_connected());
        // Paper: average degree of Tokyo is exactly halfway between the two.
        let halfway = (minus.average_degree() + plus.average_degree()) / 2.0;
        assert!((base.average_degree() - halfway).abs() < 1e-9);
    }

    #[test]
    fn tokyo_edges_are_supersets() {
        let (minus, base, plus) = (tokyo_minus(), tokyo(), tokyo_plus());
        for e in minus.edges() {
            assert!(base.edges().contains(e));
        }
        for e in base.edges() {
            assert!(plus.edges().contains(e));
        }
    }

    #[test]
    fn tokyo_diameter_small() {
        // The dense Tokyo graph has a small diameter; the grid is larger.
        assert!(tokyo().diameter() <= 5);
        assert_eq!(tokyo_minus().diameter(), 7);
    }

    #[test]
    fn linear_and_ring() {
        assert_eq!(linear(5).diameter(), 4);
        assert_eq!(ring(6).diameter(), 3);
        assert_eq!(ring(6).average_degree(), 2.0);
    }

    #[test]
    fn grid_shape() {
        let g = grid(2, 3);
        assert_eq!(g.num_qubits(), 6);
        assert_eq!(g.num_edges(), 7);
    }

    #[test]
    fn heavy_hex_connected_low_degree() {
        for cells in 1..4 {
            let g = heavy_hex(cells);
            assert!(g.is_connected(), "cells={cells}");
            let max_degree = (0..g.num_qubits())
                .map(|p| g.neighbors(p).len())
                .max()
                .expect("nonempty");
            assert!(max_degree <= 3, "cells={cells}");
        }
    }
}

//! Device noise models.
//!
//! The paper's Q6 experiment uses error rates from Qiskit's "FakeTokyo"
//! backend. We do not ship IBM's calibration data; instead a [`NoiseModel`]
//! synthesizes per-edge two-qubit error rates with the same spread as
//! FakeTokyo's published calibrations (CX error roughly 1%–4%, varying per
//! edge) from a deterministic seed, which preserves the property the
//! experiment depends on: *fidelity varies across edges, so the optimal
//! placement is noise-dependent*.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::ConnectivityGraph;

/// Per-edge and per-qubit error rates for a device.
#[derive(Clone, Debug)]
pub struct NoiseModel {
    /// `cx_error[i]` is the CX (two-qubit) error rate of `graph.edges()[i]`.
    cx_error: Vec<f64>,
    /// Single-qubit gate error per physical qubit.
    sq_error: Vec<f64>,
    edges: Vec<(usize, usize)>,
}

/// Range of synthesized CX error rates (matches FakeTokyo's spread).
const CX_ERROR_RANGE: (f64, f64) = (0.01, 0.04);
/// Range of synthesized single-qubit error rates.
const SQ_ERROR_RANGE: (f64, f64) = (0.0005, 0.002);

impl NoiseModel {
    /// Synthesizes a calibration for `graph` from `seed`.
    ///
    /// # Examples
    ///
    /// ```
    /// use arch::{devices, NoiseModel};
    /// let g = devices::tokyo();
    /// let noise = NoiseModel::synthetic(&g, 7);
    /// let (a, b) = g.edges()[0];
    /// assert!(noise.cx_error(a, b) >= 0.01 && noise.cx_error(a, b) <= 0.04);
    /// ```
    pub fn synthetic(graph: &ConnectivityGraph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let cx_error = graph
            .edges()
            .iter()
            .map(|_| rng.gen_range(CX_ERROR_RANGE.0..CX_ERROR_RANGE.1))
            .collect();
        let sq_error = (0..graph.num_qubits())
            .map(|_| rng.gen_range(SQ_ERROR_RANGE.0..SQ_ERROR_RANGE.1))
            .collect();
        NoiseModel {
            cx_error,
            sq_error,
            edges: graph.edges().to_vec(),
        }
    }

    /// CX error rate on edge `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `(a, b)` is not an edge of the modeled graph.
    pub fn cx_error(&self, a: usize, b: usize) -> f64 {
        let key = (a.min(b), a.max(b));
        let idx = self
            .edges
            .binary_search(&key)
            .unwrap_or_else(|_| panic!("({a},{b}) is not an edge of the device"));
        self.cx_error[idx]
    }

    /// Single-qubit error rate on qubit `p`.
    pub fn sq_error(&self, p: usize) -> f64 {
        self.sq_error[p]
    }

    /// Success probability of a CX on edge `(a, b)`.
    pub fn cx_fidelity(&self, a: usize, b: usize) -> f64 {
        1.0 - self.cx_error(a, b)
    }

    /// Success probability of a SWAP on edge `(a, b)` (three CXs).
    pub fn swap_fidelity(&self, a: usize, b: usize) -> f64 {
        self.cx_fidelity(a, b).powi(3)
    }

    /// Converts a fidelity (probability in `(0, 1]`) into an integer MaxSAT
    /// weight proportional to `-ln(fidelity)`, so that *maximizing the sum
    /// of satisfied soft weights* is equivalent to *maximizing the product
    /// of fidelities*.
    ///
    /// # Panics
    ///
    /// Panics if `fidelity` is not in `(0, 1]`.
    pub fn fidelity_weight(fidelity: f64) -> u64 {
        assert!(
            fidelity > 0.0 && fidelity <= 1.0,
            "fidelity must be in (0, 1]"
        );
        // Scale: 1e4 keeps ~3 significant digits for percent-level error
        // rates while keeping generalized-totalizer sums tractable.
        (-fidelity.ln() * 1e4).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    #[test]
    fn deterministic_for_seed() {
        let g = devices::tokyo();
        let a = NoiseModel::synthetic(&g, 1);
        let b = NoiseModel::synthetic(&g, 1);
        let c = NoiseModel::synthetic(&g, 2);
        let (x, y) = g.edges()[3];
        assert_eq!(a.cx_error(x, y), b.cx_error(x, y));
        assert_ne!(a.cx_error(x, y), c.cx_error(x, y));
    }

    #[test]
    fn rates_in_range() {
        let g = devices::tokyo();
        let m = NoiseModel::synthetic(&g, 99);
        for &(a, b) in g.edges() {
            let e = m.cx_error(a, b);
            assert!((0.01..0.04).contains(&e));
            assert!(m.swap_fidelity(a, b) < m.cx_fidelity(a, b));
        }
        for p in 0..g.num_qubits() {
            assert!((0.0005..0.002).contains(&m.sq_error(p)));
        }
    }

    #[test]
    fn symmetric_lookup() {
        let g = devices::tokyo();
        let m = NoiseModel::synthetic(&g, 5);
        let (a, b) = g.edges()[0];
        assert_eq!(m.cx_error(a, b), m.cx_error(b, a));
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn non_edge_lookup_panics() {
        let g = devices::tokyo_minus();
        let m = NoiseModel::synthetic(&g, 5);
        let _ = m.cx_error(0, 6); // diagonal, absent from Tokyo−
    }

    #[test]
    fn weight_monotone_in_error() {
        let w_good = NoiseModel::fidelity_weight(0.99);
        let w_bad = NoiseModel::fidelity_weight(0.90);
        assert!(w_bad > w_good);
        assert_eq!(NoiseModel::fidelity_weight(1.0), 0);
    }
}

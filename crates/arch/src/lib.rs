//! Physical-device architectures for qubit mapping and routing.
//!
//! Provides the connectivity-graph substrate of the SATMAP (MICRO 2022)
//! reproduction: the `G = (Phys, Edges)` graphs of the paper, the IBM Q20
//! Tokyo family evaluated in its Q4 experiment, and synthetic noise models
//! for the Q6 (fidelity-maximization) experiment.
//!
//! # Examples
//!
//! ```
//! use arch::devices;
//! let tokyo = devices::tokyo();
//! assert_eq!(tokyo.num_qubits(), 20);
//! assert!(tokyo.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod devices;
mod graph;
mod noise;

pub use graph::{ConnectivityGraph, PhysQubit};
pub use noise::NoiseModel;

//! Connectivity graphs between physical qubits.
//!
//! A [`ConnectivityGraph`] is the `G = (Phys, Edges)` of the paper: an
//! undirected graph whose vertices are physical qubits and whose edges mark
//! the pairs on which two-qubit gates (and SWAPs) may be applied.

use std::collections::VecDeque;
use std::fmt;

/// A physical qubit, identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PhysQubit(pub usize);

impl fmt::Display for PhysQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An undirected connectivity graph over physical qubits.
///
/// # Examples
///
/// ```
/// use arch::ConnectivityGraph;
/// let g = ConnectivityGraph::from_edges(3, [(0, 1), (1, 2)]);
/// assert_eq!(g.num_qubits(), 3);
/// assert!(g.are_adjacent(0, 1));
/// assert!(!g.are_adjacent(0, 2));
/// assert_eq!(g.distance(0, 2), 2);
/// assert_eq!(g.diameter(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectivityGraph {
    name: String,
    num_qubits: usize,
    /// Canonical edge list: each `(a, b)` with `a < b`, sorted, deduped.
    edges: Vec<(usize, usize)>,
    /// Adjacency lists.
    adjacency: Vec<Vec<usize>>,
    /// All-pairs shortest-path distances (`usize::MAX` if disconnected).
    distances: Vec<Vec<usize>>,
}

impl ConnectivityGraph {
    /// Builds a graph from an edge list.
    ///
    /// Self-loops are rejected; duplicate and reversed duplicates are
    /// merged.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or an edge is a self-loop.
    pub fn from_edges<I>(num_qubits: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        Self::from_named_edges("custom", num_qubits, edges)
    }

    /// Builds a named graph from an edge list (see [`Self::from_edges`]).
    pub fn from_named_edges<I>(name: &str, num_qubits: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut canon: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(a, b)| {
                assert!(
                    a < num_qubits && b < num_qubits,
                    "edge endpoint out of range"
                );
                assert_ne!(a, b, "self-loop edges are not allowed");
                (a.min(b), a.max(b))
            })
            .collect();
        canon.sort_unstable();
        canon.dedup();
        let mut adjacency = vec![Vec::new(); num_qubits];
        for &(a, b) in &canon {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        let distances = Self::all_pairs_bfs(num_qubits, &adjacency);
        ConnectivityGraph {
            name: name.to_string(),
            num_qubits,
            edges: canon,
            adjacency,
            distances,
        }
    }

    fn all_pairs_bfs(n: usize, adjacency: &[Vec<usize>]) -> Vec<Vec<usize>> {
        let mut all = Vec::with_capacity(n);
        for start in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[start] = 0;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in &adjacency[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            all.push(dist);
        }
        all
    }

    /// Human-readable device name (e.g. `"tokyo"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Canonical undirected edge list (`a < b`, sorted).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of `p`, sorted ascending.
    pub fn neighbors(&self, p: usize) -> &[usize] {
        &self.adjacency[p]
    }

    /// True if `a` and `b` share an edge.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Shortest-path distance between `a` and `b` in edges
    /// (`usize::MAX` if disconnected).
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.distances[a][b]
    }

    /// Largest finite pairwise distance.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no vertices.
    pub fn diameter(&self) -> usize {
        self.distances
            .iter()
            .flatten()
            .copied()
            .filter(|&d| d != usize::MAX)
            .max()
            .expect("graph must be nonempty")
    }

    /// True if every qubit can reach every other.
    pub fn is_connected(&self) -> bool {
        self.distances.iter().flatten().all(|&d| d != usize::MAX)
    }

    /// Average vertex degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_qubits == 0 {
            return 0.0;
        }
        2.0 * self.edges.len() as f64 / self.num_qubits as f64
    }

    /// A shortest path from `a` to `b` (inclusive), if one exists.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if self.distances[a][b] == usize::MAX {
            return None;
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            let d = self.distances[a][cur];
            let prev = *self.adjacency[cur]
                .iter()
                .find(|&&n| self.distances[a][n] + 1 == d)
                .expect("BFS predecessor exists");
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_orientation() {
        let g = ConnectivityGraph::from_edges(3, [(1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert!(g.are_adjacent(1, 0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = ConnectivityGraph::from_edges(2, [(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = ConnectivityGraph::from_edges(2, [(0, 2)]);
    }

    #[test]
    fn path_graph_distances() {
        let g = ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.distance(0, 3), 3);
        assert_eq!(g.diameter(), 3);
        assert!(g.is_connected());
        assert_eq!(g.shortest_path(0, 3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn disconnected_graph() {
        let g = ConnectivityGraph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert_eq!(g.distance(0, 2), usize::MAX);
        assert_eq!(g.shortest_path(0, 3), None);
        // Diameter ignores infinite distances.
        assert_eq!(g.diameter(), 1);
    }

    #[test]
    fn average_degree() {
        let g = ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((g.average_degree() - 2.0).abs() < 1e-9);
    }
}

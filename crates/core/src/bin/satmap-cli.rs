//! `satmap-cli` — compile an OpenQASM 2.0 circuit onto a device.
//!
//! Reads a circuit, solves QMR with SATMAP (or a relaxation variant),
//! verifies the solution independently, and prints the physical circuit
//! (SWAPs decomposed into CNOTs) as OpenQASM.
//!
//! ```console
//! $ satmap-cli input.qasm --device tokyo --slice 25 --budget-ms 5000
//! ```
//!
//! Devices: `tokyo` (default), `tokyo-`, `tokyo+`, `linear<N>`, `grid<R>x<C>`.

use std::process::ExitCode;
use std::time::Duration;

use circuit::{verify::verify, Parallelism, RouteRequest, Router};
use satmap::{PortfolioSatMap, SatMapConfig};

struct Options {
    input: String,
    device: String,
    slice: Option<usize>,
    budget_ms: u64,
    stats_only: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut input = None;
    let mut device = "tokyo".to_string();
    let mut slice = Some(25usize);
    let mut budget_ms = 30_000u64;
    let mut stats_only = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--device" => device = args.next().ok_or("--device needs a value")?,
            "--slice" => {
                let v = args.next().ok_or("--slice needs a value")?;
                slice = if v == "none" {
                    None
                } else {
                    Some(v.parse().map_err(|_| format!("bad slice size '{v}'"))?)
                };
            }
            "--budget-ms" => {
                budget_ms = args
                    .next()
                    .ok_or("--budget-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad budget".to_string())?;
            }
            "--stats" => stats_only = true,
            "--help" | "-h" => return Err(
                "usage: satmap-cli <input.qasm> [--device tokyo|tokyo-|tokyo+|linearN|gridRxC] \
                           [--slice N|none] [--budget-ms MS] [--stats]"
                    .into(),
            ),
            other if input.is_none() && !other.starts_with('-') => input = Some(arg),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Options {
        input: input.ok_or("missing input file (see --help)")?,
        device,
        slice,
        budget_ms,
        stats_only,
    })
}

fn device_by_name(name: &str) -> Result<arch::ConnectivityGraph, String> {
    match name {
        "tokyo" => Ok(arch::devices::tokyo()),
        "tokyo-" => Ok(arch::devices::tokyo_minus()),
        "tokyo+" => Ok(arch::devices::tokyo_plus()),
        other => {
            if let Some(n) = other.strip_prefix("linear") {
                let n: usize = n.parse().map_err(|_| format!("bad device '{other}'"))?;
                return Ok(arch::devices::linear(n));
            }
            if let Some(spec) = other.strip_prefix("grid") {
                let (r, c) = spec
                    .split_once('x')
                    .ok_or_else(|| format!("bad device '{other}'"))?;
                let r: usize = r.parse().map_err(|_| format!("bad device '{other}'"))?;
                let c: usize = c.parse().map_err(|_| format!("bad device '{other}'"))?;
                return Ok(arch::devices::grid(r, c));
            }
            Err(format!("unknown device '{other}'"))
        }
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&options.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", options.input);
            return ExitCode::FAILURE;
        }
    };
    let logical = match circuit::qasm::parse(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let graph = match device_by_name(&options.device) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let config = SatMapConfig {
        slice_size: options.slice,
        ..SatMapConfig::default()
    };
    // Portfolio-capable backend so the Auto parallelism hint below can
    // actually race workers (a plain DefaultBackend would ignore it).
    let router = PortfolioSatMap::with_backend(config);
    let request = RouteRequest::new(&logical, &graph)
        .with_budget(Duration::from_millis(options.budget_ms))
        .with_parallelism(Parallelism::Auto);
    let start = std::time::Instant::now();
    let outcome = router.route_request(&request);
    let routed = match outcome.into_result() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("routing failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = verify(&logical, &graph, &routed) {
        eprintln!("internal error: verifier rejected solution: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "routed {} ({} qubits, {} two-qubit gates) onto {} in {:.2?}: {} swaps, {} added CNOTs",
        options.input,
        logical.num_qubits(),
        logical.num_two_qubit_gates(),
        graph.name(),
        start.elapsed(),
        routed.swap_count(),
        routed.added_gates()
    );
    eprintln!("initial map: {:?}", routed.initial_map());
    if !options.stats_only {
        let physical = routed.to_physical_circuit(&logical, graph.num_qubits());
        print!("{}", circuit::qasm::print(&physical));
    }
    ExitCode::SUCCESS
}

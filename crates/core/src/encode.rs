//! The MaxSAT encoding of optimal QMR (Fig. 5 of the paper).
//!
//! For a circuit slice with `T` two-qubit gates we build a chain of *map
//! states*. Each state carries `map(q, p, s)` variables ("logical `q` sits
//! on physical `p` at state `s`"); between consecutive states sits one SWAP
//! slot with `swap(e, s)` variables over `Edges′ = Edges ∪ {noop}` (the
//! paper's synthetic `(p0, p0)` edge). Gates are attached to states; with
//! `n` swap slots per gate, `n` intermediate states separate consecutive
//! gates.
//!
//! Constraints (names follow the paper's Fig. 5):
//!
//! * **Hard A** — maps are injective functions: exactly-one `p` per `q` and
//!   at-most-one `q` per `p`, per state, using the standard only-one
//!   encoding (the compaction that makes this smaller than EX-MQT);
//! * **Hard B** — two-qubit gates execute on adjacent qubits: for gate
//!   `g(q, q′)` at state `s`, `map(q, p, s) → ⋁_{p′ ∈ N(p)} map(q′, p′, s)`;
//! * **Hard C** — exactly one swap choice per slot;
//! * **Hard D** — the effect of SWAPs, with `touched(p, s)` auxiliaries
//!   providing frame axioms instead of enumerating swap sequences;
//! * **Soft** — reward the no-op (swap-count mode) or weight each edge by
//!   its log-infidelity (fidelity mode).

use arch::ConnectivityGraph;
use circuit::{Circuit, Qubit};
use maxsat::encodings::{at_most_one, exactly_one};
use maxsat::WcnfInstance;
use sat::{Lit, Var};

use circuit::Objective;

/// Index of the synthetic no-op edge within a slot's swap variables.
///
/// Real edges occupy indices `0..num_edges`; the no-op sits at `num_edges`.
pub const NOOP: usize = usize::MAX;

/// Where a slice sits relative to its neighbours, which determines the
/// shape of the state chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncodeShape {
    /// Number of swap slots *before the first gate*. Continuation slices
    /// start with `n` (their pinned entry map may need adjusting before the
    /// first gate); the slice loop deepens this when a pinned slice proves
    /// unsatisfiable, which keeps the local relaxation complete.
    pub leading_slots: usize,
    /// Add `n` swap slots *after the last gate* and expose the resulting
    /// exit state (used by the cyclic relaxation to restore the map).
    pub trailing_swaps: bool,
}

impl EncodeShape {
    /// First slice of a non-cyclic circuit.
    pub fn first_slice() -> Self {
        EncodeShape {
            leading_slots: 0,
            trailing_swaps: false,
        }
    }

    /// Any later slice (entry map pinned, so `leading_slots` swap slots
    /// precede the first gate).
    pub fn continuation(leading_slots: usize) -> Self {
        EncodeShape {
            leading_slots,
            trailing_swaps: false,
        }
    }
}

/// Per-state logical→physical maps decoded from a model: `maps[s][q]` is
/// the physical position of logical `q` at state `s`.
pub type DecodedMaps = Vec<Vec<usize>>;

/// Per-slot swap choices decoded from a model (`None` = the no-op).
pub type DecodedSwaps = Vec<Option<(usize, usize)>>;

/// The variable layout and constraint set for one QMR (sub)problem.
/// `Clone` supports forked [`crate::RouteSession`]s: the encoding is the
/// immutable half of a session, duplicated alongside the solver snapshot.
#[derive(Clone, Debug)]
pub struct QmrEncoding {
    instance: WcnfInstance,
    num_logical: usize,
    num_phys: usize,
    num_states: usize,
    /// `map_var[s][q][p]`.
    map_var: Vec<Vec<Vec<Var>>>,
    /// `swap_var[slot][e]`, `e` indexing `edges`, plus the no-op at the end.
    swap_var: Vec<Vec<Var>>,
    /// State index at which gate `g` (two-qubit gate order) executes.
    gate_state: Vec<usize>,
    /// The slice's two-qubit interactions `(gate_index, a, b)`.
    interactions: Vec<(usize, Qubit, Qubit)>,
    edges: Vec<(usize, usize)>,
}

impl QmrEncoding {
    /// Builds the encoding for `slice` on `graph`.
    ///
    /// `swaps_per_gap` is the paper's `n`. The circuit's single-qubit gates
    /// are ignored here (they do not constrain QMR) and re-attached during
    /// extraction.
    ///
    /// # Panics
    ///
    /// Panics if the slice uses more logical than physical qubits or
    /// `swaps_per_gap == 0`.
    pub fn build(
        slice: &Circuit,
        graph: &ConnectivityGraph,
        swaps_per_gap: usize,
        shape: EncodeShape,
        objective: &Objective,
    ) -> Self {
        assert!(swaps_per_gap > 0, "need at least one swap slot per gap");
        let num_logical = slice.num_qubits();
        let num_phys = graph.num_qubits();
        assert!(
            num_logical <= num_phys,
            "circuit does not fit on the device"
        );
        let interactions = slice.two_qubit_interactions();
        let num_gates = interactions.len();
        let n = swaps_per_gap;

        // State chain layout.
        let mut gate_state = Vec::with_capacity(num_gates);
        let lead = shape.leading_slots;
        for g in 0..num_gates {
            gate_state.push(lead + g * n);
        }
        let last_gate_state = gate_state.last().copied().unwrap_or(0);
        let num_states = if shape.trailing_swaps {
            last_gate_state + n + 1
        } else if num_gates == 0 {
            1 + lead
        } else {
            last_gate_state + 1
        };
        let num_slots = num_states - 1;

        let mut instance = WcnfInstance::new();
        let map_var: Vec<Vec<Vec<Var>>> = (0..num_states)
            .map(|_| {
                (0..num_logical)
                    .map(|_| (0..num_phys).map(|_| instance.new_var()).collect())
                    .collect()
            })
            .collect();
        let edges = graph.edges().to_vec();
        let swap_var: Vec<Vec<Var>> = (0..num_slots)
            .map(|_| (0..=edges.len()).map(|_| instance.new_var()).collect())
            .collect();

        let mut enc = QmrEncoding {
            instance,
            num_logical,
            num_phys,
            num_states,
            map_var,
            swap_var,
            gate_state,
            interactions,
            edges,
        };
        enc.emit_hard_a();
        enc.emit_hard_b(graph);
        enc.emit_hard_c();
        enc.emit_hard_d(graph);
        enc.emit_soft(objective, graph);
        enc
    }

    fn map_lit(&self, s: usize, q: usize, p: usize) -> Lit {
        self.map_var[s][q][p].positive()
    }

    fn swap_lit(&self, slot: usize, e: usize) -> Lit {
        self.swap_var[slot][e].positive()
    }

    fn noop_lit(&self, slot: usize) -> Lit {
        self.swap_var[slot][self.edges.len()].positive()
    }

    /// Hard A: maps are injective total functions, per state.
    fn emit_hard_a(&mut self) {
        for s in 0..self.num_states {
            for q in 0..self.num_logical {
                let lits: Vec<Lit> = (0..self.num_phys).map(|p| self.map_lit(s, q, p)).collect();
                exactly_one(&mut self.instance, &lits);
            }
            for p in 0..self.num_phys {
                let lits: Vec<Lit> = (0..self.num_logical)
                    .map(|q| self.map_lit(s, q, p))
                    .collect();
                at_most_one(&mut self.instance, &lits);
            }
        }
    }

    /// Hard B: each two-qubit gate's operands occupy adjacent qubits.
    fn emit_hard_b(&mut self, graph: &ConnectivityGraph) {
        for (g, &(_, a, b)) in self.interactions.clone().iter().enumerate() {
            let s = self.gate_state[g];
            for p in 0..self.num_phys {
                // map(a, p, s) → ⋁_{p' ∈ N(p)} map(b, p', s)
                let mut clause = vec![!self.map_lit(s, a.0, p)];
                clause.extend(
                    graph
                        .neighbors(p)
                        .iter()
                        .map(|&p2| self.map_lit(s, b.0, p2)),
                );
                self.instance.add_hard(clause);
            }
        }
    }

    /// Hard C: exactly one swap choice (possibly the no-op) per slot.
    fn emit_hard_c(&mut self) {
        for slot in 0..self.swap_var.len() {
            let lits: Vec<Lit> = (0..=self.edges.len())
                .map(|e| self.swap_lit(slot, e))
                .collect();
            exactly_one(&mut self.instance, &lits);
        }
    }

    /// Hard D: the effect of the chosen swap, with frame axioms via
    /// `touched(p, slot)` auxiliaries.
    fn emit_hard_d(&mut self, graph: &ConnectivityGraph) {
        let edges = self.edges.clone();
        for slot in 0..self.swap_var.len() {
            let s = slot;
            // touched(p) ↔ ⋁ swaps incident to p.
            let touched: Vec<Lit> = (0..self.num_phys)
                .map(|_| self.instance.new_var().positive())
                .collect();
            for (p, &touched_p) in touched.iter().enumerate() {
                let mut incident = Vec::new();
                for (e, &(x, y)) in edges.iter().enumerate() {
                    if x == p || y == p {
                        let sw = self.swap_lit(slot, e);
                        // swap(e) → touched(p)
                        self.instance.add_hard([!sw, touched_p]);
                        incident.push(sw);
                    }
                }
                // touched(p) → some incident swap chosen.
                let mut clause = vec![!touched_p];
                clause.extend(incident);
                self.instance.add_hard(clause);
            }
            // Movement: swap((x, y)) carries q across the edge.
            for (e, &(x, y)) in edges.iter().enumerate() {
                debug_assert!(graph.are_adjacent(x, y));
                let sw = self.swap_lit(slot, e);
                for q in 0..self.num_logical {
                    self.instance.add_hard([
                        !sw,
                        !self.map_lit(s, q, x),
                        self.map_lit(s + 1, q, y),
                    ]);
                    self.instance.add_hard([
                        !sw,
                        !self.map_lit(s, q, y),
                        self.map_lit(s + 1, q, x),
                    ]);
                }
            }
            // Frame: untouched positions persist.
            for (p, &touched_p) in touched.iter().enumerate() {
                for q in 0..self.num_logical {
                    self.instance.add_hard([
                        touched_p,
                        !self.map_lit(s, q, p),
                        self.map_lit(s + 1, q, p),
                    ]);
                }
            }
        }
    }

    /// Soft constraints: reward no-ops (swap-count mode) or weight each
    /// edge by its log-infidelity (fidelity mode). Fidelity mode also adds
    /// per-gate edge-usage softs, reproducing TB-OLSQ's objective.
    fn emit_soft(&mut self, objective: &Objective, graph: &ConnectivityGraph) {
        match objective {
            Objective::SwapCount => {
                for slot in 0..self.swap_var.len() {
                    let noop = self.noop_lit(slot);
                    self.instance.add_soft(1, [noop]);
                }
            }
            Objective::Fidelity(noise) => {
                let edges = self.edges.clone();
                for slot in 0..self.swap_var.len() {
                    for (e, &(x, y)) in edges.iter().enumerate() {
                        let w = arch::NoiseModel::fidelity_weight(noise.swap_fidelity(x, y));
                        if w > 0 {
                            self.instance.add_soft(w, [!self.swap_lit(slot, e)]);
                        }
                    }
                }
                // Gate-placement fidelity: an indicator per (gate, edge).
                for (g, &(_, a, b)) in self.interactions.clone().iter().enumerate() {
                    let s = self.gate_state[g];
                    for &(x, y) in &edges {
                        let w = arch::NoiseModel::fidelity_weight(noise.cx_fidelity(x, y));
                        if w == 0 {
                            continue;
                        }
                        let used = self.instance.new_var().positive();
                        // (a@x ∧ b@y) → used, and the mirrored orientation.
                        self.instance.add_hard([
                            !self.map_lit(s, a.0, x),
                            !self.map_lit(s, b.0, y),
                            used,
                        ]);
                        self.instance.add_hard([
                            !self.map_lit(s, a.0, y),
                            !self.map_lit(s, b.0, x),
                            used,
                        ]);
                        self.instance.add_soft(w, [!used]);
                    }
                }
                let _ = graph;
            }
        }
    }

    /// Pins the entry state (state 0) to a concrete logical→physical map
    /// (step 2 of the local-relaxation recipe).
    ///
    /// # Panics
    ///
    /// Panics if `map` does not cover every logical qubit.
    pub fn pin_initial_map(&mut self, map: &[usize]) {
        assert_eq!(map.len(), self.num_logical, "map arity mismatch");
        for (q, &p) in map.iter().enumerate() {
            self.instance.add_hard([self.map_lit(0, q, p)]);
        }
    }

    /// Adds the cyclic-relaxation constraint: the *exit* state equals the
    /// *entry* state (`map(q, p, 1) ↔ map(q, p, |C|)` in the paper).
    pub fn require_cyclic(&mut self) {
        let last = self.num_states - 1;
        for q in 0..self.num_logical {
            for p in 0..self.num_phys {
                let first = self.map_lit(0, q, p);
                let end = self.map_lit(last, q, p);
                self.instance.add_hard([!first, end]);
                self.instance.add_hard([first, !end]);
            }
        }
    }

    /// Requires the exit (final) state to equal a concrete map (used when
    /// composing the cyclic relaxation with slicing: the last slice must
    /// land on the first slice's entry map).
    pub fn pin_final_map(&mut self, map: &[usize]) {
        assert_eq!(map.len(), self.num_logical, "map arity mismatch");
        let last = self.num_states - 1;
        for (q, &p) in map.iter().enumerate() {
            self.instance.add_hard([self.map_lit(last, q, p)]);
        }
    }

    /// Excludes a previously returned *final* map (Example 10's
    /// backtracking clause): adds `¬⋀ map(q, final(q), last)`.
    pub fn forbid_final_map(&mut self, map: &[usize]) {
        assert_eq!(map.len(), self.num_logical, "map arity mismatch");
        let last = self.num_states - 1;
        let clause: Vec<Lit> = map
            .iter()
            .enumerate()
            .map(|(q, &p)| !self.map_lit(last, q, p))
            .collect();
        self.instance.add_hard(clause);
    }

    /// The MaxSAT instance (for solving or WCNF export).
    pub fn instance(&self) -> &WcnfInstance {
        &self.instance
    }

    /// Number of map states in the chain.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Decodes a model into the per-state maps and per-slot swap choices.
    ///
    /// Returns `(maps, swaps)`: `maps[s][q]` is the physical position of
    /// logical `q` at state `s`; `swaps[slot]` is `Some((x, y))` for a real
    /// swap or `None` for the no-op.
    ///
    /// # Panics
    ///
    /// Panics if the model is not a well-formed solution (the encoding
    /// guarantees well-formedness for any satisfying model).
    pub fn decode(&self, model: &[bool]) -> (DecodedMaps, DecodedSwaps) {
        let value = |v: Var| model.get(v.index()).copied().unwrap_or(false);
        let maps: DecodedMaps = (0..self.num_states)
            .map(|s| {
                (0..self.num_logical)
                    .map(|q| {
                        let ps: Vec<usize> = (0..self.num_phys)
                            .filter(|&p| value(self.map_var[s][q][p]))
                            .collect();
                        assert_eq!(ps.len(), 1, "state {s}, q{q}: map not a function");
                        ps[0]
                    })
                    .collect()
            })
            .collect();
        let swaps: Vec<Option<(usize, usize)>> = (0..self.swap_var.len())
            .map(|slot| {
                let chosen: Vec<usize> = (0..=self.edges.len())
                    .filter(|&e| value(self.swap_var[slot][e]))
                    .collect();
                assert_eq!(chosen.len(), 1, "slot {slot}: not exactly one swap");
                if chosen[0] == self.edges.len() {
                    None
                } else {
                    Some(self.edges[chosen[0]])
                }
            })
            .collect();
        (maps, swaps)
    }

    /// The state index of two-qubit gate `g` (in slice gate order).
    pub fn gate_state(&self, g: usize) -> usize {
        self.gate_state[g]
    }

    /// The slice's two-qubit interactions.
    pub fn interactions(&self) -> &[(usize, Qubit, Qubit)] {
        &self.interactions
    }
}

/// Assembles a [`circuit::RoutedCircuit`] for `slice` from a decoded model.
///
/// `swaps_per_gap` must match the value used at build time. Single-qubit
/// gates are re-attached immediately before the following two-qubit gate
/// (or at the end).
pub fn routed_from_solution(
    slice: &Circuit,
    enc: &QmrEncoding,
    maps: &[Vec<usize>],
    swaps: &[Option<(usize, usize)>],
    swaps_per_gap: usize,
    gate_index_offset: usize,
) -> circuit::RoutedCircuit {
    use circuit::RoutedOp;
    let mut ops = Vec::new();
    let mut slot = 0usize;

    let emit_slots = |ops: &mut Vec<RoutedOp>, slot: &mut usize, count: usize| {
        for _ in 0..count {
            if let Some((x, y)) = swaps[*slot] {
                ops.push(RoutedOp::Swap(x, y));
            }
            *slot += 1;
        }
    };

    // Leading slots (continuation slices, possibly deepened beyond `n`).
    if !enc.interactions().is_empty() {
        emit_slots(&mut ops, &mut slot, enc.gate_state(0));
    }

    let mut two_qubit_seen = 0usize;
    for (i, g) in slice.gates().iter().enumerate() {
        if g.is_two_qubit() {
            if two_qubit_seen > 0 {
                emit_slots(&mut ops, &mut slot, swaps_per_gap);
            }
            two_qubit_seen += 1;
        }
        ops.push(RoutedOp::Logical(gate_index_offset + i));
    }
    // Remaining slots: the trailing group of the cyclic shape, or the
    // leading group of a gateless slice.
    let remaining = swaps.len() - slot;
    emit_slots(&mut ops, &mut slot, remaining);

    let initial_map = maps.first().cloned().unwrap_or_default();
    circuit::RoutedCircuit::new(initial_map, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;
    use maxsat::{solve, MaxSatStatus};
    use sat::ResourceBudget;

    fn fig3_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        c
    }

    fn fig3_graph() -> ConnectivityGraph {
        ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn paper_running_example_needs_one_swap() {
        let circuit = fig3_circuit();
        let graph = fig3_graph();
        let enc = QmrEncoding::build(
            &circuit,
            &graph,
            1,
            EncodeShape::first_slice(),
            &Objective::SwapCount,
        );
        let out = solve(enc.instance(), ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        // The paper: "inserting a single swap is sufficient for this
        // example" — cost 1.
        assert_eq!(out.cost, Some(1));
        let model = out.model.expect("model");
        let (maps, swaps) = enc.decode(&model);
        assert_eq!(swaps.iter().filter(|s| s.is_some()).count(), 1);
        let routed = routed_from_solution(&circuit, &enc, &maps, &swaps, 1, 0);
        verify(&circuit, &graph, &routed).expect("solution verifies");
        assert_eq!(routed.swap_count(), 1);
    }

    #[test]
    fn zero_swap_instance() {
        // Adjacent interactions only: optimal cost 0.
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        let graph = arch::devices::linear(3);
        let enc = QmrEncoding::build(
            &c,
            &graph,
            1,
            EncodeShape::first_slice(),
            &Objective::SwapCount,
        );
        let out = solve(enc.instance(), ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(0));
        let (maps, swaps) = enc.decode(&out.model.expect("model"));
        let routed = routed_from_solution(&c, &enc, &maps, &swaps, 1, 0);
        verify(&c, &graph, &routed).expect("verifies");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn pinned_initial_map_is_respected() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let graph = arch::devices::linear(3);
        let mut enc = QmrEncoding::build(
            &c,
            &graph,
            1,
            EncodeShape::continuation(1),
            &Objective::SwapCount,
        );
        // Pin q0→p0, q1→p2, q2→p1: gate (q0,q1) needs one swap.
        enc.pin_initial_map(&[0, 2, 1]);
        let out = solve(enc.instance(), ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(1));
        let (maps, _) = enc.decode(&out.model.expect("model"));
        assert_eq!(maps[0], vec![0, 2, 1]);
    }

    #[test]
    fn pinned_map_without_leading_swaps_can_be_unsat() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let graph = arch::devices::linear(3);
        let mut enc = QmrEncoding::build(
            &c,
            &graph,
            1,
            EncodeShape::first_slice(), // no leading slots
            &Objective::SwapCount,
        );
        enc.pin_initial_map(&[0, 2, 1]); // q0,q1 not adjacent, no way to fix
        let out = solve(enc.instance(), ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Unsat);
    }

    #[test]
    fn cyclic_constraint_restores_map() {
        // Fig. 8: the cyclic version of the running example costs 2 swaps
        // (one to route, one to restore).
        let circuit = fig3_circuit();
        let graph = fig3_graph();
        let mut enc = QmrEncoding::build(
            &circuit,
            &graph,
            1,
            EncodeShape {
                leading_slots: 0,
                trailing_swaps: true,
            },
            &Objective::SwapCount,
        );
        enc.require_cyclic();
        let out = solve(enc.instance(), ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(2));
        let (maps, swaps) = enc.decode(&out.model.expect("model"));
        assert_eq!(maps[0], maps[maps.len() - 1], "exit state equals entry");
        let routed = routed_from_solution(&circuit, &enc, &maps, &swaps, 1, 0);
        verify(&circuit, &graph, &routed).expect("verifies");
        assert_eq!(routed.final_map(), routed.initial_map());
    }

    #[test]
    fn forbid_final_map_excludes_solution() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let graph = arch::devices::linear(2);
        let mut enc = QmrEncoding::build(
            &c,
            &graph,
            1,
            EncodeShape::first_slice(),
            &Objective::SwapCount,
        );
        let out = solve(enc.instance(), ResourceBudget::unlimited());
        let (maps, _) = enc.decode(&out.model.expect("model"));
        let final_map = maps.last().expect("states").clone();
        enc.forbid_final_map(&final_map);
        let out2 = solve(enc.instance(), ResourceBudget::unlimited());
        // The only other option is the mirrored placement.
        let (maps2, _) = enc.decode(&out2.model.expect("model"));
        assert_ne!(maps2.last(), Some(&final_map));
    }

    #[test]
    fn swaps_per_gap_two_reaches_distance_three() {
        // On a 4-path, gates (q0,q1) then (q0,q3) with q* placed at the
        // ends: n = 1 cannot bridge distance 3 in one gap; n = 2 can
        // bridge distance 3 (two swaps move a qubit two steps... actually
        // one swap halves the distance by 1 each; distance 3 needs 2 swaps
        // to reach adjacency).
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        c.cx(0, 3);
        let graph = arch::devices::linear(4);
        for (n, expect_sat) in [(1usize, true), (2, true)] {
            let enc = QmrEncoding::build(
                &c,
                &graph,
                n,
                EncodeShape::first_slice(),
                &Objective::SwapCount,
            );
            let out = solve(enc.instance(), ResourceBudget::unlimited());
            assert_eq!(out.status == MaxSatStatus::Optimal, expect_sat, "n={n}");
        }
    }

    #[test]
    fn fidelity_mode_prefers_reliable_edges() {
        let graph = arch::devices::tokyo();
        let noise = arch::NoiseModel::synthetic(&graph, 11);
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let enc = QmrEncoding::build(
            &c,
            &graph,
            1,
            EncodeShape::first_slice(),
            &Objective::Fidelity(noise.clone()),
        );
        let out = solve(enc.instance(), ResourceBudget::unlimited());
        // Weighted instances may finish as Feasible when the engine
        // quantizes weights; both statuses carry a model.
        assert!(
            matches!(out.status, MaxSatStatus::Optimal | MaxSatStatus::Feasible),
            "{:?}",
            out.status
        );
        let (maps, _) = enc.decode(&out.model.expect("model"));
        let (pa, pb) = (maps[0][0], maps[0][1]);
        assert!(graph.are_adjacent(pa, pb));
        // The chosen edge must be (nearly) the most reliable edge of the
        // device; "nearly" because the MaxSAT engine quantizes weights, so
        // edges within the quantization slack can tie.
        let best = graph
            .edges()
            .iter()
            .map(|&(x, y)| noise.cx_error(x, y))
            .fold(f64::INFINITY, f64::min);
        assert!(
            noise.cx_error(pa, pb) - best < 2e-3,
            "picked error {} vs best {best}",
            noise.cx_error(pa, pb)
        );
    }

    #[test]
    fn empty_slice_still_produces_a_map() {
        let c = Circuit::new(3);
        let graph = arch::devices::linear(3);
        let enc = QmrEncoding::build(
            &c,
            &graph,
            1,
            EncodeShape::first_slice(),
            &Objective::SwapCount,
        );
        let out = solve(enc.instance(), ResourceBudget::unlimited());
        assert_eq!(out.status, MaxSatStatus::Optimal);
        let (maps, swaps) = enc.decode(&out.model.expect("model"));
        assert_eq!(maps.len(), 1);
        assert!(swaps.is_empty());
    }

    #[test]
    fn wcnf_export_is_parseable() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let graph = arch::devices::linear(2);
        let enc = QmrEncoding::build(
            &c,
            &graph,
            1,
            EncodeShape::first_slice(),
            &Objective::SwapCount,
        );
        let text = enc.instance().to_wcnf();
        let parsed = maxsat::WcnfInstance::parse_wcnf(&text).expect("round trips");
        assert_eq!(
            parsed.hard_clauses().len(),
            enc.instance().hard_clauses().len()
        );
    }
}

//! The encode/solve split: cacheable encoding artifacts and warm-start
//! route sessions.
//!
//! Routing a request monolithically has two separable halves: building the
//! circuit→WCNF encoding (pure — a function of the canonicalized circuit,
//! the device graph, and the resolved knobs) and searching it. This module
//! reifies the first half as an [`EncodedArtifact`], keyed by the
//! request's canonical [`circuit::RouteRequest::fingerprint`], so callers
//! that route the same request repeatedly — retry loops with growing
//! budgets, sweeps, caches — skip re-encoding entirely.
//!
//! A [`RouteSession`] goes further: alongside the artifact it keeps the
//! MaxSAT engine's [`maxsat::MaxSatSession`] — the solver with its loaded
//! clause arena (learned clauses included), the incumbent model, and the
//! strategy's bound progress. A follow-up solve of the same artifact warm
//! starts from all of it: the prior incumbent seeds the search through the
//! solver's saved phases, the prior bound becomes the first assumption,
//! and every carried learned clause prunes the new search. Reuse is sound
//! because all bounds travel as assumptions, never asserted clauses, so
//! the carried clause database is a conservative extension of the
//! instance (see [`maxsat::MaxSatSession`] for the full argument).

use std::time::Duration;

use maxsat::{MaxSatSession, WcnfInstance};
use sat::SatBackend;

use crate::encode::QmrEncoding;

/// A reusable circuit→WCNF encoding: the monolithic [`QmrEncoding`] of one
/// routing request, stamped with the request's canonical fingerprint.
/// Built by [`crate::SatMap::encode_request`]; solved (any number of
/// times) by [`crate::SatMap::solve_artifact`].
#[derive(Debug)]
pub struct EncodedArtifact {
    pub(crate) enc: QmrEncoding,
    pub(crate) fingerprint: u64,
    pub(crate) encode_time: Duration,
}

impl EncodedArtifact {
    /// The canonical fingerprint of the request this artifact encodes
    /// ([`circuit::RouteRequest::fingerprint`]): equal fingerprints mean
    /// an identical WCNF instance, which is what makes artifact reuse and
    /// warm-starting sound.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The encoded MaxSAT instance.
    pub fn instance(&self) -> &WcnfInstance {
        self.enc.instance()
    }

    /// How long the encoding took to build — the time an artifact-level
    /// cache hit saves.
    pub fn encode_time(&self) -> Duration {
        self.encode_time
    }

    pub(crate) fn encoding(&self) -> &QmrEncoding {
        &self.enc
    }
}

/// Warm-start state for repeated routing of one request: the encoding
/// artifact plus the MaxSAT engine's session (clause arena, incumbent,
/// bound progress) left by the last solve. Threaded through
/// [`crate::SatMap::route_with_session`]; a `None` slot means cold start.
pub struct RouteSession<B: SatBackend> {
    pub(crate) artifact: EncodedArtifact,
    pub(crate) session: Option<MaxSatSession<B>>,
}

impl<B: SatBackend> RouteSession<B> {
    /// The fingerprint of the request this session serves; a request with
    /// a different fingerprint re-encodes from scratch.
    pub fn fingerprint(&self) -> u64 {
        self.artifact.fingerprint
    }

    /// The cached encoding.
    pub fn artifact(&self) -> &EncodedArtifact {
        &self.artifact
    }

    /// Clauses the next solve of this session will carry instead of
    /// re-emitting (0 when no solver state is held yet).
    pub fn reusable_clauses(&self) -> usize {
        self.session.as_ref().map_or(0, |s| s.reusable_clauses())
    }

    /// An independent copy via the backend's arena snapshot, so one solved
    /// session can seed several warm re-solves (the caching layer forks
    /// per request, keeping its stored entry valid even if the warm solve
    /// is abandoned mid-search). `None` when the backend cannot snapshot;
    /// the copy of a session without solver state is just the artifact,
    /// which requires re-encoding — hence the `Option` on the whole call.
    pub fn fork(&self) -> Option<RouteSession<B>> {
        let session = match &self.session {
            Some(s) => Some(s.fork()?),
            None => return None,
        };
        Some(RouteSession {
            artifact: EncodedArtifact {
                enc: self.artifact.enc.clone(),
                fingerprint: self.artifact.fingerprint,
                encode_time: self.artifact.encode_time,
            },
            session,
        })
    }
}

//! SATMAP configuration: the construction-time defaults a
//! [`crate::SatMap`] router is built with, and their resolution against a
//! [`circuit::RouteRequest`]'s per-request overrides.
//!
//! Budgets and objectives are *not* configuration: they belong to the
//! request ([`circuit::RouteSpec`]), so one router instance serves
//! different budgets/objectives call by call.

use circuit::{Objective, Parallelism, RouteRequest, SearchStrategy, Slicing};
use sat::ResourceBudget;

/// Maps the request-level strategy knob onto the MaxSAT engine's enum
/// (the `circuit` crate cannot name `maxsat` types). `Auto` — the
/// request default — resolves from the instance features per solver
/// call: an objective dominated by weighted softs (fidelity mode) runs
/// the stratified core-guided search (see
/// [`maxsat::dispatch::prefers_core`]), everything else — in particular
/// every unweighted swap-count request — runs the paper's linear
/// search, byte-identical to an explicit [`SearchStrategy::Linear`].
pub(crate) fn engine_strategy(
    strategy: SearchStrategy,
    features: &maxsat::InstanceFeatures,
) -> maxsat::Strategy {
    match strategy {
        SearchStrategy::Linear => maxsat::Strategy::LinearSatUnsat,
        SearchStrategy::CoreGuided => maxsat::Strategy::CoreGuided,
        SearchStrategy::Race => maxsat::Strategy::Race,
        SearchStrategy::Auto => {
            if maxsat::dispatch::prefers_core(features) {
                maxsat::Strategy::CoreGuided
            } else {
                maxsat::Strategy::LinearSatUnsat
            }
        }
    }
}

/// Maps the request-level parallelism knob onto the dispatcher's width
/// hint: `Serial` and `Width(n)` pin the total worker count, `Auto` lets
/// the instance features decide.
pub(crate) fn width_hint(parallelism: Parallelism) -> maxsat::WidthHint {
    match parallelism {
        Parallelism::Serial => maxsat::WidthHint::Forced(1),
        Parallelism::Width(n) => maxsat::WidthHint::Forced(n.max(1)),
        Parallelism::Auto => maxsat::WidthHint::Auto,
    }
}

/// Construction-time defaults of the SATMAP router.
///
/// Everything here can be overridden per request through
/// [`circuit::RouteSpec`]; the config only decides what an unadorned
/// request gets — in particular whether the router is **SATMAP** (sliced)
/// or **NL-SATMAP** (monolithic) by default.
///
/// # Examples
///
/// ```
/// use satmap::SatMapConfig;
/// let config = SatMapConfig {
///     slice_size: Some(25),
///     ..SatMapConfig::default()
/// };
/// assert_eq!(config.swaps_per_gap, 1);
/// ```
#[derive(Clone, Debug)]
pub struct SatMapConfig {
    /// Two-qubit gates per slice for the locally optimal relaxation
    /// (Section V). `None` disables slicing (NL-SATMAP). Overridable per
    /// request via [`Slicing`].
    pub slice_size: Option<usize>,
    /// Number of SWAP slots before each two-qubit gate (the paper's `n`).
    /// The paper sets 1 and observes it suffices for near-optimal results;
    /// optimality is guaranteed at the connectivity graph's diameter.
    pub swaps_per_gap: usize,
    /// Maximum number of backtracking steps across the whole local
    /// relaxation before switching to leading-slot deepening.
    pub backtrack_limit: usize,
    /// Totalizer weight quantization for the MaxSAT engine: the soft-weight
    /// range is divided into roughly this many units before the totalizer
    /// is built (see [`maxsat::SolveOptions::totalizer_units`]). Only
    /// weighted objectives (fidelity mode) ever quantize; plain swap
    /// counting has unit weights and stays exact.
    pub totalizer_units: u64,
}

impl Default for SatMapConfig {
    fn default() -> Self {
        SatMapConfig {
            slice_size: Some(25),
            swaps_per_gap: 1,
            backtrack_limit: 24,
            totalizer_units: 4000,
        }
    }
}

impl SatMapConfig {
    /// The paper's default: local relaxation with slice size 25.
    pub fn sliced(slice_size: usize) -> Self {
        SatMapConfig {
            slice_size: Some(slice_size),
            ..Self::default()
        }
    }

    /// NL-SATMAP: no local relaxation.
    pub fn monolithic() -> Self {
        SatMapConfig {
            slice_size: None,
            ..Self::default()
        }
    }

    /// Returns a copy with the given totalizer quantization (clamped to at
    /// least 1 unit).
    pub fn with_totalizer_units(mut self, units: u64) -> Self {
        self.totalizer_units = units.max(1);
        self
    }

    /// Merges these defaults with a request's overrides into the concrete
    /// parameters one routing call runs under.
    pub(crate) fn resolve(&self, request: &RouteRequest<'_>) -> Resolved {
        let slice_size = match request.slicing() {
            Slicing::RouterDefault => self.slice_size,
            Slicing::Monolithic => None,
            Slicing::Sliced(k) => Some(k.max(1)),
        };
        Resolved {
            slice_size,
            swaps_per_gap: request.swaps_per_gap().unwrap_or(self.swaps_per_gap).max(1),
            backtrack_limit: self.backtrack_limit,
            objective: request.objective().clone(),
            // Strategy and portfolio width are left featureless here: the
            // instance-feature dispatcher resolves both into a concrete
            // worker plan per solver call (see [`Resolved::options_for`]),
            // so `Auto` parallelism can solve small encodings inline and
            // `Auto` strategy can pick core-guided for weighted instances.
            options: maxsat::SolveOptions::default()
                .with_totalizer_units(request.totalizer_units().unwrap_or(self.totalizer_units))
                .with_strategy(engine_strategy(
                    request.strategy(),
                    &maxsat::InstanceFeatures::default(),
                )),
            strategy: request.strategy(),
            parallelism: request.parallelism(),
            budget: request.budget().clone(),
        }
    }
}

/// The concrete parameters of one routing call: config defaults with the
/// request's overrides applied.
#[derive(Clone, Debug)]
pub(crate) struct Resolved {
    pub slice_size: Option<usize>,
    pub swaps_per_gap: usize,
    pub backtrack_limit: usize,
    pub objective: Objective,
    pub options: maxsat::SolveOptions,
    /// The request-level strategy knob, kept alongside the featureless
    /// `options.strategy` so [`Resolved::options_for`] can re-resolve
    /// `Auto` once the instance features are known.
    pub strategy: SearchStrategy,
    pub parallelism: Parallelism,
    pub budget: ResourceBudget,
}

impl Resolved {
    /// The engine options for one solver call: the shared knobs plus the
    /// concrete worker plan the instance-feature dispatcher resolves the
    /// parallelism hint and strategy to (see [`maxsat::dispatch`]).
    ///
    /// `Serial` and `Width(n)` pin the total worker count; `Auto` lets
    /// the features decide. The plan rides along in the options so the
    /// engine executes exactly what was dispatched (and stamps it into
    /// the telemetry).
    pub fn options_for(&self, features: maxsat::InstanceFeatures) -> maxsat::SolveOptions {
        let strategy = engine_strategy(self.strategy, &features);
        let plan = maxsat::dispatch::plan(&features, strategy, width_hint(self.parallelism));
        self.options
            .with_strategy(strategy)
            .with_portfolio_width(plan.total_width())
            .with_dispatch(plan)
    }

    /// [`Resolved::options_for`] when only the instance size (variables +
    /// clauses) is known — the features carry just that signal.
    #[cfg(test)]
    pub fn options_for_instance(&self, instance_size: usize) -> maxsat::SolveOptions {
        self.options_for(maxsat::InstanceFeatures {
            vars: instance_size,
            ..maxsat::InstanceFeatures::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::{Circuit, Parallelism};
    use std::time::Duration;

    #[test]
    fn defaults_match_paper() {
        let c = SatMapConfig::default();
        assert_eq!(c.swaps_per_gap, 1);
        assert_eq!(c.slice_size, Some(25));
        assert_eq!(c.totalizer_units, 4000);
    }

    #[test]
    fn builders() {
        assert_eq!(SatMapConfig::sliced(10).slice_size, Some(10));
        assert_eq!(SatMapConfig::monolithic().slice_size, None);
        assert_eq!(
            SatMapConfig::default()
                .with_totalizer_units(0)
                .totalizer_units,
            1
        );
    }

    #[test]
    fn request_overrides_win_over_config() {
        let c = Circuit::new(2);
        let g = arch::devices::linear(2);
        let config = SatMapConfig::sliced(25);

        let plain = config.resolve(&RouteRequest::new(&c, &g));
        assert_eq!(plain.slice_size, Some(25));
        assert_eq!(plain.swaps_per_gap, 1);
        assert_eq!(plain.parallelism, Parallelism::Serial);
        assert_eq!(plain.options_for_instance(10).portfolio_width, Some(1));
        assert_eq!(plain.options.totalizer_units, 4000);
        assert!(!plain.budget.is_limited());

        let req = RouteRequest::new(&c, &g)
            .with_budget(Duration::from_secs(3))
            .with_slicing(Slicing::Monolithic)
            .with_swaps_per_gap(2)
            .with_totalizer_units(7)
            .with_parallelism(Parallelism::Width(3))
            .with_strategy(circuit::SearchStrategy::Race);
        let r = config.resolve(&req);
        assert_eq!(r.slice_size, None);
        assert_eq!(r.swaps_per_gap, 2);
        assert_eq!(r.parallelism, Parallelism::Width(3));
        assert_eq!(r.options.totalizer_units, 7);
        // An explicit width forces itself regardless of instance size.
        assert_eq!(r.options_for_instance(10).portfolio_width, Some(3));
        assert_eq!(r.options.strategy, maxsat::Strategy::Race);
        assert_eq!(r.budget.remaining_time(), Some(Duration::from_secs(3)));
    }

    #[test]
    fn strategy_knob_maps_onto_engine_enum() {
        let plain = maxsat::InstanceFeatures::default();
        assert_eq!(
            engine_strategy(SearchStrategy::Linear, &plain),
            maxsat::Strategy::LinearSatUnsat
        );
        assert_eq!(
            engine_strategy(SearchStrategy::CoreGuided, &plain),
            maxsat::Strategy::CoreGuided
        );
        assert_eq!(
            engine_strategy(SearchStrategy::Race, &plain),
            maxsat::Strategy::Race
        );
        assert_eq!(SearchStrategy::default(), SearchStrategy::Auto);
    }

    #[test]
    fn auto_strategy_follows_the_weighted_soft_share() {
        // Unweighted (swap-count) instances keep the paper's linear
        // search; weighted-soft-dominated (fidelity) instances get the
        // stratified core-guided search.
        let unweighted = maxsat::InstanceFeatures {
            soft_clauses: 10,
            weighted_softs: 0,
            ..maxsat::InstanceFeatures::default()
        };
        assert_eq!(
            engine_strategy(SearchStrategy::Auto, &unweighted),
            maxsat::Strategy::LinearSatUnsat
        );
        let weighted = maxsat::InstanceFeatures {
            soft_clauses: 10,
            weighted_softs: 9,
            ..maxsat::InstanceFeatures::default()
        };
        assert_eq!(
            engine_strategy(SearchStrategy::Auto, &weighted),
            maxsat::Strategy::CoreGuided
        );
        // An explicit knob is never second-guessed by the features.
        assert_eq!(
            engine_strategy(SearchStrategy::Linear, &weighted),
            maxsat::Strategy::LinearSatUnsat
        );
    }
}

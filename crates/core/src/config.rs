//! SATMAP configuration.

use arch::NoiseModel;
use sat::ResourceBudget;

/// What the MaxSAT objective minimizes.
#[derive(Clone, Debug, Default)]
pub enum Objective {
    /// Minimize the number of inserted SWAPs (the paper's main mode; each
    /// no-op swap choice is a unit soft clause of weight 1).
    #[default]
    SwapCount,
    /// Maximize circuit fidelity under a noise model (the paper's Q6 mode):
    /// soft-clause weights encode per-edge log-infidelities of SWAPs and of
    /// the two-qubit gates themselves.
    Fidelity(NoiseModel),
}

/// Configuration for the SATMAP router.
///
/// # Examples
///
/// ```
/// use satmap::SatMapConfig;
/// use std::time::Duration;
/// let config = SatMapConfig {
///     slice_size: Some(25),
///     ..SatMapConfig::default()
/// }
/// .with_budget(Duration::from_secs(5));
/// assert_eq!(config.swaps_per_gap, 1);
/// ```
#[derive(Clone, Debug)]
pub struct SatMapConfig {
    /// Two-qubit gates per slice for the locally optimal relaxation
    /// (Section V). `None` disables slicing (NL-SATMAP).
    pub slice_size: Option<usize>,
    /// Number of SWAP slots before each two-qubit gate (the paper's `n`).
    /// The paper sets 1 and observes it suffices for near-optimal results;
    /// optimality is guaranteed at the connectivity graph's diameter.
    pub swaps_per_gap: usize,
    /// Compilation budget for the whole routing request. The deadline is
    /// armed when `route` starts and inherited by every nested MaxSAT and
    /// SAT call, so no child can overshoot it. A per-SAT-call conflict cap
    /// can be attached via [`ResourceBudget::conflicts_per_call`].
    pub budget: ResourceBudget,
    /// Maximum number of backtracking steps across the whole local
    /// relaxation before switching to leading-slot deepening.
    pub backtrack_limit: usize,
    /// Optimization objective.
    pub objective: Objective,
    /// Totalizer weight quantization for the MaxSAT engine: the soft-weight
    /// range is divided into roughly this many units before the totalizer
    /// is built (see [`maxsat::SolveOptions::totalizer_units`]). The chosen
    /// quantum is reported in [`maxsat::MaxSatOutcome::quantum`]. Only
    /// weighted objectives (fidelity mode) ever quantize; plain swap
    /// counting has unit weights and stays exact.
    pub totalizer_units: u64,
}

impl Default for SatMapConfig {
    fn default() -> Self {
        SatMapConfig {
            slice_size: Some(25),
            swaps_per_gap: 1,
            budget: ResourceBudget::unlimited(),
            backtrack_limit: 24,
            objective: Objective::SwapCount,
            totalizer_units: 4000,
        }
    }
}

impl SatMapConfig {
    /// The paper's default: local relaxation with slice size 25.
    pub fn sliced(slice_size: usize) -> Self {
        SatMapConfig {
            slice_size: Some(slice_size),
            ..Self::default()
        }
    }

    /// NL-SATMAP: no local relaxation.
    pub fn monolithic() -> Self {
        SatMapConfig {
            slice_size: None,
            ..Self::default()
        }
    }

    /// Returns a copy with the given budget (a plain [`Duration`] converts
    /// to a wall-clock budget).
    pub fn with_budget(mut self, budget: impl Into<ResourceBudget>) -> Self {
        self.budget = budget.into();
        self
    }

    /// Returns a copy with the given totalizer quantization (clamped to at
    /// least 1 unit).
    pub fn with_totalizer_units(mut self, units: u64) -> Self {
        self.totalizer_units = units.max(1);
        self
    }

    /// The MaxSAT engine tunables derived from this configuration.
    pub fn solve_options(&self) -> maxsat::SolveOptions {
        maxsat::SolveOptions::default().with_totalizer_units(self.totalizer_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn defaults_match_paper() {
        let c = SatMapConfig::default();
        assert_eq!(c.swaps_per_gap, 1);
        assert_eq!(c.slice_size, Some(25));
        assert!(matches!(c.objective, Objective::SwapCount));
        assert!(!c.budget.is_limited());
    }

    #[test]
    fn builders() {
        assert_eq!(SatMapConfig::sliced(10).slice_size, Some(10));
        assert_eq!(SatMapConfig::monolithic().slice_size, None);
        let b = SatMapConfig::monolithic().with_budget(Duration::from_secs(1));
        assert_eq!(
            b.budget.remaining_time(),
            Some(Duration::from_secs(1)),
            "unarmed budget reports its full allowance"
        );
    }
}

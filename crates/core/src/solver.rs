//! The SATMAP router: monolithic solving, the locally optimal relaxation
//! with backtracking (Section V), and plumbing shared with the cyclic
//! relaxation (Section VI).
//!
//! The router is generic over the SAT backend ([`sat::SatBackend`]); the
//! default instantiation uses the workspace's bundled CDCL solver. Each
//! call is driven by a [`circuit::RouteRequest`]: its
//! [`sat::ResourceBudget`] is armed when routing starts and its deadline
//! is inherited by every MaxSAT and SAT call below, so nested solver work
//! can never overshoot the routing request's allowance; its objective,
//! slicing, and parallelism knobs override the construction-time
//! [`SatMapConfig`] defaults. Solver effort is aggregated into the
//! returned [`circuit::RouteOutcome`].

use std::marker::PhantomData;
use std::time::{Duration, Instant};

use arch::ConnectivityGraph;
use circuit::{
    Circuit, RouteError, RouteOutcome, RouteQuality, RouteRequest, RoutedCircuit, RoutedOp, Router,
};
use maxsat::{MaxSatSession, MaxSatStatus};
use sat::{DefaultBackend, ResourceBudget, SatBackend, SolverTelemetry};

use crate::artifact::{EncodedArtifact, RouteSession};
use crate::config::{Resolved, SatMapConfig};
use crate::encode::{routed_from_solution, EncodeShape, QmrEncoding};

/// The SATMAP qubit mapping and routing solver.
///
/// With `slice_size: None` this is **NL-SATMAP** (one monolithic MaxSAT
/// problem, optimal modulo the `n`-swaps-per-gap restriction); with a slice
/// size it is **SATMAP** (locally optimal relaxation with backtracking and,
/// when backtracking is exhausted, leading-slot deepening).
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, RouteRequest, Router, verify::verify};
/// use satmap::{SatMap, SatMapConfig};
/// use std::time::Duration;
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// c.cx(0, 2);
/// let graph = arch::devices::tokyo();
/// let router = SatMap::new(SatMapConfig::default());
/// let request = RouteRequest::new(&c, &graph).with_budget(Duration::from_secs(30));
/// let outcome = router.route_request(&request);
/// let routed = outcome.routed().expect("solves");
/// verify(&c, &graph, routed).expect("solution verifies");
/// ```
#[derive(Debug)]
pub struct SatMap<B: SatBackend + Default + Send = DefaultBackend> {
    config: SatMapConfig,
    _backend: PhantomData<fn() -> B>,
}

impl<B: SatBackend + Default + Send> Clone for SatMap<B> {
    fn clone(&self) -> Self {
        SatMap {
            config: self.config.clone(),
            _backend: PhantomData,
        }
    }
}

impl SatMap {
    /// Creates a router with the given configuration and the default SAT
    /// backend.
    pub fn new(config: SatMapConfig) -> Self {
        Self::with_backend(config)
    }
}

/// Per-slice solving state kept for backtracking. Encodings are large
/// (O(slice · |Logic| · |Phys|) clauses), so only a recent window keeps
/// them in memory; evicted ones are rebuilt on demand from the slice plus
/// the recorded pin and exclusion clauses.
struct SliceState {
    enc: Option<QmrEncoding>,
    /// Final maps excluded by backtracking (Example 10 clauses).
    forbidden: Vec<Vec<usize>>,
    /// Leading swap slots the slice was (re)built with.
    leading_slots: usize,
    /// Decoded solution: final map + this slice's op contribution
    /// (gate indices local to the slice).
    final_map: Vec<usize>,
    initial_map: Vec<usize>,
    ops: Vec<RoutedOp>,
}

/// How many slice encodings stay resident for backtracking.
const ENCODING_WINDOW: usize = 4;

/// The dispatch features of a built encoding: the exact WCNF counts the
/// instance-feature dispatcher sizes the worker plan from (see
/// [`maxsat::dispatch`]).
pub(crate) fn instance_features(enc: &QmrEncoding) -> maxsat::InstanceFeatures {
    maxsat::InstanceFeatures::of(enc.instance())
}

/// The total worker count the instance-feature dispatcher would resolve
/// for `circuit` on `graph` *before* any encoding is built: the features
/// carry only the O(1) signals (device size and [`encoding_estimate`]),
/// so admission control can price a request's parallelism without paying
/// the encode cost. The post-encode dispatch re-decides from the exact
/// counts, but never exceeds a forced hint, so this is a safe multiplier
/// for capacity planning.
pub fn planned_width(
    circuit: &Circuit,
    graph: &ConnectivityGraph,
    parallelism: circuit::Parallelism,
    strategy: circuit::SearchStrategy,
    swaps_per_gap: usize,
) -> usize {
    let features = maxsat::InstanceFeatures::default()
        .with_device(graph.num_qubits())
        .with_encoding_estimate(encoding_estimate(circuit, graph, swaps_per_gap));
    maxsat::dispatch::plan(
        &features,
        crate::config::engine_strategy(strategy, &features),
        crate::config::width_hint(parallelism),
    )
    .total_width()
}

/// The widest worker plan the dispatcher can resolve under `parallelism`
/// and `strategy` — the per-request core occupancy a capacity planner
/// must assume without seeing the instance (the dispatcher only ever
/// *narrows* from here as instances get easier).
pub fn plan_ceiling(parallelism: circuit::Parallelism, strategy: circuit::SearchStrategy) -> usize {
    let hardest = maxsat::InstanceFeatures {
        vars: maxsat::dispatch::MEDIUM_INSTANCE as usize,
        ..maxsat::InstanceFeatures::default()
    };
    maxsat::dispatch::plan(
        &hardest,
        crate::config::engine_strategy(strategy, &hardest),
        crate::config::width_hint(parallelism),
    )
    .total_width()
}

/// Ceiling on [`encoding_estimate`] above which a *budgeted* request is
/// shed before any encoding is paid for (the analogue of the paper's 5 GB
/// per-tool cap). Shared with admission control in the routing supervisor,
/// which uses the same estimate to reject oversized requests up front.
pub const ENCODING_GUARD_LIMIT: usize = 6_000_000;

/// Cheap upper-bound proxy for the size of the Fig. 5 encoding of
/// `circuit` on `graph` with `swaps_per_gap` SWAP slots per gap: mapping
/// states × (mapping + swap variables per state). Costs O(1) — no
/// encoding is built — so admission control can call it on every request.
pub fn encoding_estimate(
    circuit: &Circuit,
    graph: &ConnectivityGraph,
    swaps_per_gap: usize,
) -> usize {
    let states = circuit.num_two_qubit_gates().max(1) * swaps_per_gap.max(1);
    let per_state =
        circuit.num_qubits() * (graph.num_qubits() + 2 * graph.num_edges()) + graph.num_qubits();
    states.saturating_mul(per_state)
}

/// Memory guard: refuses instances whose encoding would dwarf any
/// realistic budget, *before* paying the encode cost.
fn guard_memory(
    circuit: &Circuit,
    graph: &ConnectivityGraph,
    p: &Resolved,
) -> Result<(), RouteError> {
    let estimate = encoding_estimate(circuit, graph, p.swaps_per_gap);
    if p.budget.is_limited() && estimate > ENCODING_GUARD_LIMIT {
        return Err(RouteError::Overloaded(format!(
            "encoding estimate {estimate} exceeds the guard limit {ENCODING_GUARD_LIMIT}"
        )));
    }
    Ok(())
}

/// Maps a monolithic MaxSAT outcome onto the routing result.
fn decode_monolithic(
    circuit: &Circuit,
    enc: &QmrEncoding,
    out: maxsat::MaxSatOutcome,
    n: usize,
) -> Result<RoutedCircuit, RouteError> {
    match out.status {
        MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
            let model = out.model.expect("status implies model");
            let (maps, swaps) = enc.decode(&model);
            Ok(routed_from_solution(circuit, enc, &maps, &swaps, n, 0))
        }
        MaxSatStatus::Unsat => Err(RouteError::Unsatisfiable(format!(
            "no routing with n = {n} swaps per gap; increase swaps_per_gap"
        ))),
        MaxSatStatus::Unknown => Err(RouteError::Timeout),
    }
}

/// Proof status of a routing attempt's accepted models, threaded through
/// every solver call of the attempt. Starts proven; the first
/// [`MaxSatStatus::Feasible`] answer downgrades it and records *why* the
/// proof was lost, so a `degraded` row is diagnosable: weight
/// quantization caps the claim at Feasible even when the search ran to
/// completion (`"quantized"`), while an expiring budget returns whatever
/// incumbent the anytime search held (`"budget-exhausted"`).
pub(crate) struct Proof {
    proved: bool,
    reason: Option<&'static str>,
}

impl Proof {
    pub(crate) fn new() -> Self {
        Proof {
            proved: true,
            reason: None,
        }
    }

    /// Downgrades the proof when `out` accepted an unproven incumbent,
    /// keeping the first downgrade's reason.
    pub(crate) fn observe(&mut self, out: &maxsat::MaxSatOutcome) {
        if matches!(out.status, MaxSatStatus::Feasible) {
            self.proved = false;
            self.reason.get_or_insert(if out.quantum > 1 {
                "quantized"
            } else {
                "budget-exhausted"
            });
        }
    }
}

/// Stamps the outcome's quality from the proof status of its accepted
/// model: a solved result whose optimality was *not* certified (the
/// anytime search returned an incumbent, not a proof) is `Degraded` and
/// carries a `degraded_reason` diagnostic; everything else keeps the
/// `Optimal` default.
pub(crate) fn stamp_quality(outcome: RouteOutcome, proof: &Proof) -> RouteOutcome {
    if outcome.solved() && !proof.proved {
        let outcome = outcome.with_quality(RouteQuality::Degraded);
        match proof.reason {
            Some(reason) => outcome.with_diagnostic("degraded_reason", reason),
            None => outcome,
        }
    } else {
        outcome
    }
}

/// Records a solved slice and evicts encodings outside the backtracking
/// window (shared by the forward path and the deepening fallback).
fn push_solved(solved: &mut Vec<SliceState>, state: SliceState, telemetry: &mut SolverTelemetry) {
    solved.push(state);
    telemetry.slices += 1;
    if solved.len() > ENCODING_WINDOW {
        let evict = solved.len() - ENCODING_WINDOW - 1;
        solved[evict].enc = None;
    }
}

impl<B: SatBackend + Default + Send> SatMap<B> {
    /// Creates a router with the given configuration and an explicit SAT
    /// backend type.
    pub fn with_backend(config: SatMapConfig) -> Self {
        SatMap {
            config,
            _backend: PhantomData,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SatMapConfig {
        &self.config
    }

    /// One MaxSAT call on the generic backend, charging effort to
    /// `telemetry`. The portfolio width is resolved against the instance
    /// size, so `Parallelism::Auto` solves small encodings inline.
    fn solve_instance(
        &self,
        enc: &QmrEncoding,
        p: &Resolved,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
    ) -> maxsat::MaxSatOutcome {
        let options = p.options_for(instance_features(enc));
        let out = maxsat::solve_with_options::<B>(enc.instance(), budget, &options);
        telemetry.absorb(&out.telemetry);
        out
    }

    /// Builds a slice encoding, charging the build time to `telemetry`.
    fn build_encoding(
        &self,
        slice: &Circuit,
        graph: &ConnectivityGraph,
        shape: EncodeShape,
        p: &Resolved,
        telemetry: &mut SolverTelemetry,
    ) -> QmrEncoding {
        let start = Instant::now();
        let enc = QmrEncoding::build(slice, graph, p.swaps_per_gap, shape, &p.objective);
        telemetry.encode_time += start.elapsed();
        enc
    }

    /// Routes the whole request under the already-resolved parameters,
    /// returning the result plus the solver effort spent — including
    /// effort spent on failed attempts. `proof` is downgraded when any
    /// accepted model is an unproven incumbent ([`MaxSatStatus::Feasible`],
    /// e.g. a cancelled anytime search): the solution still verifies but
    /// must be stamped [`circuit::RouteQuality::Degraded`].
    pub(crate) fn route_impl(
        &self,
        request: &RouteRequest<'_>,
        p: &Resolved,
        proof: &mut Proof,
    ) -> (Result<RoutedCircuit, RouteError>, SolverTelemetry) {
        let mut telemetry = SolverTelemetry::new();
        if let Err(e) = request.validate() {
            return (Err(e), telemetry);
        }
        let (circuit, graph) = (request.circuit(), request.graph());
        let budget = p.budget.arm();
        let result = match p.slice_size {
            None => self.route_monolithic(circuit, graph, p, &budget, &mut telemetry, proof),
            Some(size) => {
                if circuit.num_two_qubit_gates() <= size {
                    // One slice: identical to monolithic.
                    self.route_monolithic(circuit, graph, p, &budget, &mut telemetry, proof)
                } else {
                    self.route_sliced(circuit, graph, size, p, &budget, &mut telemetry, proof)
                }
            }
        };
        (result, telemetry)
    }

    /// Routes the circuit as one monolithic MaxSAT problem (NL-SATMAP).
    fn route_monolithic(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
        p: &Resolved,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
        proof: &mut Proof,
    ) -> Result<RoutedCircuit, RouteError> {
        guard_memory(circuit, graph, p)?;
        let enc = self.build_encoding(circuit, graph, EncodeShape::first_slice(), p, telemetry);
        let out = self.solve_instance(&enc, p, budget, telemetry);
        proof.observe(&out);
        decode_monolithic(circuit, &enc, out, p.swaps_per_gap)
    }

    /// True when the resolved parameters route `circuit` as one monolithic
    /// instance — the path the encode/solve split and warm-start sessions
    /// cover. Multi-slice requests interleave encoding and solving (each
    /// slice's encoding depends on the previous slice's final map), so
    /// their artifacts cannot be prebuilt.
    fn is_monolithic(circuit: &Circuit, p: &Resolved) -> bool {
        match p.slice_size {
            None => true,
            Some(size) => circuit.num_two_qubit_gates() <= size,
        }
    }

    /// Builds the monolithic encoding artifact under already-resolved
    /// parameters, charging the build time to `telemetry`.
    fn build_artifact(
        &self,
        request: &RouteRequest<'_>,
        p: &Resolved,
        telemetry: &mut SolverTelemetry,
    ) -> Result<EncodedArtifact, RouteError> {
        guard_memory(request.circuit(), request.graph(), p)?;
        let start = Instant::now();
        let enc = QmrEncoding::build(
            request.circuit(),
            request.graph(),
            p.swaps_per_gap,
            EncodeShape::first_slice(),
            &p.objective,
        );
        let encode_time = start.elapsed();
        telemetry.encode_time += encode_time;
        Ok(EncodedArtifact {
            enc,
            fingerprint: request.fingerprint(),
            encode_time,
        })
    }

    /// Encode half of the encode/solve split: builds the circuit→WCNF
    /// artifact for `request` without solving it. The artifact is keyed by
    /// the request's canonical [`RouteRequest::fingerprint`] and can be
    /// solved any number of times with [`SatMap::solve_artifact`].
    ///
    /// # Errors
    ///
    /// [`RouteError::InvalidRequest`] when the request fails validation or
    /// resolves to the multi-slice path (whose encodings depend on
    /// intermediate solutions); [`RouteError::Overloaded`] when the memory
    /// guard trips.
    pub fn encode_request(
        &self,
        request: &RouteRequest<'_>,
    ) -> Result<EncodedArtifact, RouteError> {
        request.validate()?;
        let p = self.config.resolve(request);
        if !Self::is_monolithic(request.circuit(), &p) {
            return Err(RouteError::InvalidRequest(
                "encode/solve split covers the monolithic path only; request \
                 Slicing::Monolithic or a circuit that fits in one slice"
                    .into(),
            ));
        }
        self.build_artifact(request, &p, &mut SolverTelemetry::new())
    }

    /// Solve half of the encode/solve split: one MaxSAT search over a
    /// prebuilt artifact, warm-starting from — and re-depositing — the
    /// engine session in `session`. `request` must be the request the
    /// artifact was encoded from (checked by fingerprint); its budget and
    /// parallelism knobs still apply per call, so the same artifact can be
    /// re-solved under a bigger budget.
    pub fn solve_artifact(
        &self,
        artifact: &EncodedArtifact,
        request: &RouteRequest<'_>,
        session: &mut Option<MaxSatSession<B>>,
    ) -> RouteOutcome {
        let p = self.config.resolve(request);
        let mut proof = Proof::new();
        let outcome = RouteOutcome::capture(self.name(), || {
            let mut telemetry = SolverTelemetry::new();
            if request.fingerprint() != artifact.fingerprint() {
                return (
                    Err(RouteError::InvalidRequest(
                        "request does not match the artifact's fingerprint".into(),
                    )),
                    telemetry,
                );
            }
            let budget = p.budget.arm();
            let options = p.options_for(instance_features(artifact.encoding()));
            let out =
                maxsat::solve_with_session::<B>(artifact.instance(), &budget, &options, session);
            telemetry.absorb(&out.telemetry);
            proof.observe(&out);
            (
                decode_monolithic(request.circuit(), artifact.encoding(), out, p.swaps_per_gap),
                telemetry,
            )
        });
        self.stamp_diagnostics(stamp_quality(outcome, &proof), &p)
    }

    /// Routes with warm-start session reuse. A `None` slot (or one left by
    /// a *different* request — fingerprints are compared) starts cold:
    /// encode, solve, deposit the session. A matching slot skips
    /// re-encoding and warm-starts the MaxSAT search from the prior
    /// solve's clause database, incumbent model, and bound — sound because
    /// the carried clause DB is a conservative extension of the instance
    /// (see [`maxsat::MaxSatSession`]). Multi-slice requests fall back to
    /// the cold [`Router::route_request`] path and leave the slot
    /// untouched.
    pub fn route_with_session(
        &self,
        request: &RouteRequest<'_>,
        slot: &mut Option<RouteSession<B>>,
    ) -> RouteOutcome {
        let p = self.config.resolve(request);
        if let Err(e) = request.validate() {
            let outcome =
                RouteOutcome::new(self.name(), Err(e), SolverTelemetry::new(), Duration::ZERO);
            return self.stamp_diagnostics(outcome, &p);
        }
        if !Self::is_monolithic(request.circuit(), &p) {
            return self.route_request(request);
        }
        let started = Instant::now();
        let mut telemetry = SolverTelemetry::new();
        let fingerprint = request.fingerprint();
        let (reused, mut session) = match slot.take() {
            Some(s) if s.fingerprint() == fingerprint => (Some(s.artifact), s.session),
            _ => (None, None),
        };
        let artifact = match reused {
            Some(a) => a,
            None => match self.build_artifact(request, &p, &mut telemetry) {
                Ok(a) => a,
                Err(e) => {
                    let outcome =
                        RouteOutcome::new(self.name(), Err(e), telemetry, started.elapsed());
                    return self.stamp_diagnostics(outcome, &p);
                }
            },
        };
        let budget = p.budget.arm();
        let options = p.options_for(instance_features(artifact.encoding()));
        let out =
            maxsat::solve_with_session::<B>(artifact.instance(), &budget, &options, &mut session);
        telemetry.absorb(&out.telemetry);
        let mut proof = Proof::new();
        proof.observe(&out);
        let result =
            decode_monolithic(request.circuit(), artifact.encoding(), out, p.swaps_per_gap);
        *slot = Some(RouteSession { artifact, session });
        let outcome = RouteOutcome::new(self.name(), result, telemetry, started.elapsed());
        self.stamp_diagnostics(stamp_quality(outcome, &proof), &p)
    }

    /// The diagnostics every SATMAP outcome carries, regardless of which
    /// entry point produced it. The reported width is the one the
    /// dispatcher actually resolved (peak across the call tree); outcomes
    /// that never reached a solver call (validation errors, admission
    /// shedding) fall back to the request-level hint.
    fn stamp_diagnostics(&self, outcome: RouteOutcome, p: &Resolved) -> RouteOutcome {
        let width = match outcome.telemetry().dispatch_width {
            0 => p.parallelism.resolve(),
            w => w as usize,
        };
        outcome
            .with_diagnostic(
                "slice_size",
                p.slice_size.map_or("none".into(), |s| s.to_string()),
            )
            .with_diagnostic("swaps_per_gap", p.swaps_per_gap)
            .with_diagnostic("portfolio_width", width)
            .with_diagnostic("strategy", p.options.strategy.name())
    }

    /// Section V: slice, solve each slice pinned to the previous final map,
    /// and backtrack (excluding final maps) when a slice is unsatisfiable.
    /// When the backtrack budget is exhausted, fall back to *leading-slot
    /// deepening*: rebuild the stuck slice with more swap slots before its
    /// first gate, which can always absorb a bad entry map and therefore
    /// keeps the relaxation complete.
    #[allow(clippy::too_many_arguments)]
    fn route_sliced(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
        slice_size: usize,
        p: &Resolved,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
        proof: &mut Proof,
    ) -> Result<RoutedCircuit, RouteError> {
        let slices = circuit.slices(slice_size);
        let n = p.swaps_per_gap;

        let mut solved: Vec<SliceState> = Vec::with_capacity(slices.len());
        let mut backtracks_left = p.backtrack_limit;
        let mut i = 0usize;
        while i < slices.len() {
            if budget.expired() {
                return Err(RouteError::Timeout);
            }
            let shape = if i == 0 {
                EncodeShape::first_slice()
            } else {
                EncodeShape::continuation(n)
            };
            let mut enc = self.build_encoding(&slices[i], graph, shape, p, telemetry);
            if i > 0 {
                enc.pin_initial_map(&solved[i - 1].final_map);
            }
            let out = self.solve_instance(&enc, p, budget, telemetry);
            proof.observe(&out);
            match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (maps, swaps) = enc.decode(&model);
                    let ops = routed_from_solution(&slices[i], &enc, &maps, &swaps, n, 0)
                        .ops()
                        .to_vec();
                    let state = SliceState {
                        enc: Some(enc),
                        forbidden: Vec::new(),
                        leading_slots: shape.leading_slots,
                        final_map: maps.last().expect("≥1 state").clone(),
                        initial_map: maps.first().expect("≥1 state").clone(),
                        ops,
                    };
                    push_solved(&mut solved, state, telemetry);
                    i += 1;
                }
                MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                MaxSatStatus::Unsat => {
                    // Backtrack: forbid the previous slice's final map and
                    // re-solve it (Example 10).
                    if i == 0 {
                        return Err(RouteError::Unsatisfiable(format!(
                            "first slice unsolvable with n = {n} swaps per gap"
                        )));
                    }
                    loop {
                        if backtracks_left == 0 {
                            // Backtracking exhausted: deepen the stuck
                            // slice's leading slots instead of giving up.
                            let pin = solved[i - 1].final_map.clone();
                            let state = self.solve_slice_deepened(
                                &slices[i], graph, &pin, p, budget, telemetry, proof,
                            )?;
                            push_solved(&mut solved, state, telemetry);
                            i += 1;
                            break;
                        }
                        backtracks_left -= 1;
                        telemetry.backtracks += 1;
                        if budget.expired() {
                            return Err(RouteError::Timeout);
                        }
                        let prev_idx = solved.len() - 1;
                        let prev_initial = if prev_idx == 0 {
                            None
                        } else {
                            Some(solved[prev_idx - 1].final_map.clone())
                        };
                        let prev_shape = if prev_idx == 0 {
                            EncodeShape::first_slice()
                        } else {
                            EncodeShape::continuation(solved[prev_idx].leading_slots)
                        };
                        let prev = solved.last_mut().expect("i > 0");
                        let bad = prev.final_map.clone();
                        prev.forbidden.push(bad.clone());
                        if prev.enc.is_none() {
                            // Rebuild the evicted encoding with its pin and
                            // all recorded exclusions.
                            let build_start = Instant::now();
                            let mut rebuilt = QmrEncoding::build(
                                &slices[prev_idx],
                                graph,
                                n,
                                prev_shape,
                                &p.objective,
                            );
                            telemetry.encode_time += build_start.elapsed();
                            if let Some(pin) = &prev_initial {
                                rebuilt.pin_initial_map(pin);
                            }
                            for f in &prev.forbidden {
                                rebuilt.forbid_final_map(f);
                            }
                            prev.enc = Some(rebuilt);
                        } else if let Some(enc) = prev.enc.as_mut() {
                            enc.forbid_final_map(&bad);
                        }
                        let prev_enc = prev.enc.as_ref().expect("just ensured");
                        let retry = maxsat::solve_with_options::<B>(
                            prev_enc.instance(),
                            budget,
                            &p.options_for(instance_features(prev_enc)),
                        );
                        telemetry.absorb(&retry.telemetry);
                        proof.observe(&retry);
                        match retry.status {
                            MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                                let model = retry.model.expect("status implies model");
                                let prev_enc =
                                    prev.enc.as_ref().expect("resident during backtrack");
                                let (maps, swaps) = prev_enc.decode(&model);
                                prev.final_map = maps.last().expect("≥1 state").clone();
                                prev.initial_map = maps.first().expect("≥1 state").clone();
                                prev.ops = routed_from_solution(
                                    &slices[prev_idx],
                                    prev_enc,
                                    &maps,
                                    &swaps,
                                    n,
                                    0,
                                )
                                .ops()
                                .to_vec();
                                break; // resume forward from slice i
                            }
                            MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                            MaxSatStatus::Unsat => {
                                // This slice has no alternative final map:
                                // backtrack one more level.
                                solved.pop();
                                i -= 1;
                                if i == 0 && solved.is_empty() {
                                    return Err(RouteError::Unsatisfiable(format!(
                                        "exhausted all final maps with n = {n}"
                                    )));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Stitch slices into one routed circuit.
        let initial_map = solved
            .first()
            .map(|s| s.initial_map.clone())
            .unwrap_or_else(|| (0..circuit.num_qubits()).collect());
        let mut ops: Vec<RoutedOp> = Vec::new();
        let mut gate_offset = 0usize;
        for (slice, state) in slices.iter().zip(&solved) {
            ops.extend(state.ops.iter().map(|op| match *op {
                RoutedOp::Logical(k) => RoutedOp::Logical(k + gate_offset),
                swap => swap,
            }));
            gate_offset += slice.len();
        }
        Ok(RoutedCircuit::new(initial_map, ops))
    }

    /// Solves one pinned slice, doubling the number of leading swap slots
    /// until satisfiable. With enough leading slots any entry map can be
    /// reshaped before the first gate, so this always terminates with a
    /// solution, a timeout, or a genuinely unsatisfiable slice.
    #[allow(clippy::too_many_arguments)]
    fn solve_slice_deepened(
        &self,
        slice: &Circuit,
        graph: &ConnectivityGraph,
        pin: &[usize],
        p: &Resolved,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
        proof: &mut Proof,
    ) -> Result<SliceState, RouteError> {
        let n = p.swaps_per_gap;
        // Routing every logical qubit home costs at most diameter swaps.
        let max_lead = (graph.diameter().max(1) * slice.num_qubits()).max(2 * n);
        let mut lead = 2 * n;
        loop {
            if budget.expired() {
                return Err(RouteError::Timeout);
            }
            let shape = EncodeShape::continuation(lead);
            let mut enc = self.build_encoding(slice, graph, shape, p, telemetry);
            enc.pin_initial_map(pin);
            let out = self.solve_instance(&enc, p, budget, telemetry);
            proof.observe(&out);
            match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (maps, swaps) = enc.decode(&model);
                    let ops = routed_from_solution(slice, &enc, &maps, &swaps, n, 0)
                        .ops()
                        .to_vec();
                    return Ok(SliceState {
                        enc: Some(enc),
                        forbidden: Vec::new(),
                        leading_slots: lead,
                        final_map: maps.last().expect("≥1 state").clone(),
                        initial_map: maps.first().expect("≥1 state").clone(),
                        ops,
                    });
                }
                MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                MaxSatStatus::Unsat if lead < max_lead => {
                    lead = (lead * 2).min(max_lead);
                }
                MaxSatStatus::Unsat => {
                    return Err(RouteError::Unsatisfiable(format!(
                        "slice unsolvable even with {lead} leading swap slots"
                    )));
                }
            }
        }
    }
}

impl<B: SatBackend + Default + Send> Router for SatMap<B> {
    fn name(&self) -> &str {
        if self.config.slice_size.is_some() {
            "satmap"
        } else {
            "nl-satmap"
        }
    }

    fn route_request(&self, request: &RouteRequest<'_>) -> RouteOutcome {
        let p = self.config.resolve(request);
        let mut proof = Proof::new();
        let outcome =
            RouteOutcome::capture(self.name(), || self.route_impl(request, &p, &mut proof));
        self.stamp_diagnostics(stamp_quality(outcome, &proof), &p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;
    use std::time::Duration;

    fn fig3() -> (Circuit, ConnectivityGraph) {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        (
            c,
            ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]),
        )
    }

    #[test]
    fn fig3_sits_below_the_auto_parallelism_and_sharing_gate() {
        // Documents the claim behind `Parallelism::Auto` and the sharing
        // size gate: the monolithic fig3 encoding — on its own line graph
        // and on the larger Tokyo− device — is a small instance, so Auto
        // resolves to width 1 and a default portfolio would not share.
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::monolithic());
        for graph in [g, arch::devices::tokyo_minus()] {
            let artifact = router
                .encode_request(&RouteRequest::new(&c, &graph))
                .expect("encodes");
            let size = artifact.instance().num_vars() + artifact.instance().hard_clauses().len();
            assert!(
                size < sat::DEFAULT_MIN_INSTANCE_SIZE,
                "fig3 on {} is {} (gate is {})",
                graph.name(),
                size,
                sat::DEFAULT_MIN_INSTANCE_SIZE
            );
            assert_eq!(circuit::Parallelism::Auto.resolve_for_instance(size), 1);
        }
    }

    #[test]
    fn monolithic_solves_fig3_optimally() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::monolithic());
        let routed = router.route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
        assert_eq!(routed.swap_count(), 1);
        assert_eq!(router.name(), "nl-satmap");
    }

    #[test]
    fn sliced_solves_fig3() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::sliced(2));
        let routed = router.route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
        // Locally optimal: possibly more swaps than the global optimum,
        // but it must still verify and stay small here.
        assert!(routed.swap_count() <= 2, "got {}", routed.swap_count());
        assert_eq!(router.name(), "satmap");
    }

    #[test]
    fn request_slicing_overrides_config() {
        let (c, g) = fig3();
        // A monolithic-by-default router asked to slice, and vice versa.
        let router = SatMap::new(SatMapConfig::monolithic());
        let sliced = router
            .route_request(&RouteRequest::new(&c, &g).with_slicing(circuit::Slicing::Sliced(2)));
        assert_eq!(sliced.diagnostic("slice_size"), Some("2"));
        verify(&c, &g, sliced.routed().expect("solves")).expect("verifies");

        let router = SatMap::new(SatMapConfig::sliced(2));
        let mono = router
            .route_request(&RouteRequest::new(&c, &g).with_slicing(circuit::Slicing::Monolithic));
        assert_eq!(mono.diagnostic("slice_size"), Some("none"));
        assert_eq!(mono.routed().expect("solves").swap_count(), 1);
    }

    #[test]
    fn backtracking_recovers_from_bad_slice_boundary() {
        // Example 9's shape: slicing can strand the map; backtracking (or
        // a leading swap slot) must still deliver a verified solution.
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(0, 2);
        c.cx(0, 1);
        let g = arch::devices::linear(3);
        let router = SatMap::new(SatMapConfig::sliced(1));
        let routed = router.route(&c, &g).expect("solves with backtracking");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn deepening_rescues_exhausted_backtracking() {
        // With a zero backtrack budget the router must still solve sliced
        // instances by deepening leading slots instead of erroring out.
        let mut config = SatMapConfig::sliced(2);
        config.backtrack_limit = 0;
        let c = circuit::generators::random_local(5, 10, 4, 0.1, 3);
        let g = arch::devices::tokyo_minus();
        let router = SatMap::new(config);
        let routed = router.route(&c, &g).expect("deepening completes");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn warm_session_reroutes_fig3_identically() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::monolithic());
        let request = RouteRequest::new(&c, &g);
        let mut slot = None;
        let cold = router.route_with_session(&request, &mut slot);
        let cold_swaps = cold.routed().expect("solves").swap_count();
        assert!(!cold.telemetry().warm_start);
        assert_eq!(cold.telemetry().reused_clauses, 0);
        let session = slot.as_ref().expect("cold route deposits a session");
        assert_eq!(session.fingerprint(), request.fingerprint());
        assert!(session.reusable_clauses() > 0);

        let warm = router.route_with_session(&request, &mut slot);
        let warm_routed = warm.routed().expect("solves");
        assert!(warm.telemetry().warm_start);
        assert!(warm.telemetry().reused_clauses > 0);
        assert_eq!(
            warm.telemetry().encode_time,
            Duration::ZERO,
            "warm route must reuse the artifact, not re-encode"
        );
        assert_eq!(warm_routed.swap_count(), cold_swaps);
        verify(&c, &g, warm_routed).expect("verifies");
    }

    #[test]
    fn encode_solve_split_matches_route_request() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::monolithic());
        let request = RouteRequest::new(&c, &g);
        let artifact = router.encode_request(&request).expect("monolithic encodes");
        assert_eq!(artifact.fingerprint(), request.fingerprint());
        let mut session = None;
        let out = router.solve_artifact(&artifact, &request, &mut session);
        let routed = out.routed().expect("solves");
        verify(&c, &g, routed).expect("verifies");
        assert_eq!(routed.swap_count(), 1);
        // Re-solving the same artifact warm-starts from the session.
        let again = router.solve_artifact(&artifact, &request, &mut session);
        assert!(again.telemetry().warm_start);
        assert_eq!(again.routed().expect("solves").swap_count(), 1);
    }

    #[test]
    fn encode_request_covers_only_the_monolithic_path() {
        let (c, g) = fig3();
        // Four gates at slice size 2: multi-slice, no prebuilt artifact.
        let router = SatMap::new(SatMapConfig::sliced(2));
        assert!(matches!(
            router.encode_request(&RouteRequest::new(&c, &g)),
            Err(RouteError::InvalidRequest(_))
        ));
        // Within one slice the sliced router takes the monolithic path.
        let router = SatMap::new(SatMapConfig::sliced(25));
        assert!(router.encode_request(&RouteRequest::new(&c, &g)).is_ok());
    }

    #[test]
    fn solve_artifact_rejects_a_mismatched_request() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::monolithic());
        let artifact = router
            .encode_request(&RouteRequest::new(&c, &g))
            .expect("encodes");
        let mut c2 = c.clone();
        c2.cx(1, 3);
        let out = router.solve_artifact(&artifact, &RouteRequest::new(&c2, &g), &mut None);
        assert!(matches!(out.error(), Some(RouteError::InvalidRequest(_))));
    }

    #[test]
    fn mutated_request_re_encodes_cold() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::monolithic());
        let mut slot = None;
        let _ = router.route_with_session(&RouteRequest::new(&c, &g), &mut slot);
        // One extra gate changes the fingerprint: the stale session must
        // not warm-start, and the slot is replaced by the new request's.
        let mut c2 = c.clone();
        c2.cx(1, 3);
        let req2 = RouteRequest::new(&c2, &g);
        let out = router.route_with_session(&req2, &mut slot);
        assert!(!out.telemetry().warm_start);
        verify(&c2, &g, out.routed().expect("solves")).expect("verifies");
        assert_eq!(
            slot.as_ref().expect("slot refilled").fingerprint(),
            req2.fingerprint()
        );
    }

    #[test]
    fn multi_slice_requests_fall_back_to_the_cold_path() {
        let c = circuit::generators::random_local(5, 10, 4, 0.1, 3);
        let g = arch::devices::tokyo_minus();
        let router = SatMap::new(SatMapConfig::sliced(2));
        let mut slot = None;
        let out = router.route_with_session(&RouteRequest::new(&c, &g), &mut slot);
        verify(&c, &g, out.routed().expect("solves")).expect("verifies");
        assert!(!out.telemetry().warm_start);
        assert!(slot.is_none(), "sliced path holds no session");
    }

    #[test]
    fn too_many_logical_qubits_rejected() {
        let c = Circuit::new(25);
        let g = arch::devices::tokyo();
        let router = SatMap::new(SatMapConfig::default());
        assert!(matches!(
            router.route(&c, &g),
            Err(RouteError::InvalidRequest(_))
        ));
    }

    #[test]
    fn zero_budget_times_out_on_nontrivial_input() {
        let mut c = Circuit::new(8);
        for i in 0..7 {
            c.cx(i, i + 1);
            c.cx(0, 7 - i);
        }
        let g = arch::devices::tokyo();
        let router = SatMap::new(SatMapConfig::default());
        let outcome = router.route_request(&RouteRequest::new(&c, &g).with_budget(Duration::ZERO));
        assert!(matches!(outcome.error(), Some(RouteError::Timeout)));
    }

    #[test]
    fn oversized_budgeted_request_is_shed_as_overloaded() {
        // Enough two-qubit gates that the encoding estimate blows past the
        // guard limit; with a limited budget the guard must shed the
        // request *before* encoding — typed Overloaded, near-zero effort.
        let mut c = Circuit::new(20);
        for k in 0..4_000 {
            c.cx(k % 20, (k + 1) % 20);
        }
        let g = arch::devices::tokyo();
        assert!(encoding_estimate(&c, &g, 1) > ENCODING_GUARD_LIMIT);
        let router = SatMap::new(SatMapConfig::monolithic());
        let outcome =
            router.route_request(&RouteRequest::new(&c, &g).with_budget(Duration::from_secs(5)));
        assert!(matches!(outcome.error(), Some(RouteError::Overloaded(_))));
        assert_eq!(
            outcome.telemetry().encode_time,
            Duration::ZERO,
            "admission control must not pay the encode cost"
        );
    }

    #[test]
    fn routed_outcomes_default_to_optimal_quality() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::monolithic());
        let outcome = router.route_request(&RouteRequest::new(&c, &g));
        assert!(outcome.solved());
        assert_eq!(outcome.quality(), RouteQuality::Optimal);
        assert_eq!(outcome.attempts(), 1);
    }

    #[test]
    fn larger_circuit_on_tokyo_verifies() {
        let c = circuit::generators::random_local(6, 12, 3, 0.2, 9);
        let g = arch::devices::tokyo();
        let router = SatMap::new(SatMapConfig::sliced(4));
        let routed = router.route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn telemetry_accounts_for_slices_and_sat_calls() {
        let c = circuit::generators::random_local(5, 12, 4, 0.0, 2);
        let g = arch::devices::tokyo_minus();
        let router = SatMap::new(SatMapConfig::sliced(3));
        let outcome = router.route_request(&RouteRequest::new(&c, &g));
        let routed = outcome.routed().expect("solves");
        verify(&c, &g, routed).expect("verifies");
        let telemetry = outcome.telemetry();
        assert!(telemetry.slices >= 4, "12 gates / 3 per slice: {telemetry}");
        assert!(telemetry.sat_calls > 0);
        assert!(telemetry.solve_time > Duration::ZERO);
        assert!(telemetry.encode_time > Duration::ZERO);
        assert!(outcome.wall_time() > Duration::ZERO);
    }
}

//! The SATMAP router: monolithic solving, the locally optimal relaxation
//! with backtracking (Section V), and plumbing shared with the cyclic
//! relaxation (Section VI).
//!
//! The router is generic over the SAT backend ([`sat::SatBackend`]); the
//! default instantiation uses the workspace's bundled CDCL solver. Each
//! call is driven by a [`circuit::RouteRequest`]: its
//! [`sat::ResourceBudget`] is armed when routing starts and its deadline
//! is inherited by every MaxSAT and SAT call below, so nested solver work
//! can never overshoot the routing request's allowance; its objective,
//! slicing, and parallelism knobs override the construction-time
//! [`SatMapConfig`] defaults. Solver effort is aggregated into the
//! returned [`circuit::RouteOutcome`].

use std::marker::PhantomData;
use std::time::Instant;

use arch::ConnectivityGraph;
use circuit::{Circuit, RouteError, RouteOutcome, RouteRequest, RoutedCircuit, RoutedOp, Router};
use maxsat::MaxSatStatus;
use sat::{DefaultBackend, ResourceBudget, SatBackend, SolverTelemetry};

use crate::config::{Resolved, SatMapConfig};
use crate::encode::{routed_from_solution, EncodeShape, QmrEncoding};

/// The SATMAP qubit mapping and routing solver.
///
/// With `slice_size: None` this is **NL-SATMAP** (one monolithic MaxSAT
/// problem, optimal modulo the `n`-swaps-per-gap restriction); with a slice
/// size it is **SATMAP** (locally optimal relaxation with backtracking and,
/// when backtracking is exhausted, leading-slot deepening).
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, RouteRequest, Router, verify::verify};
/// use satmap::{SatMap, SatMapConfig};
/// use std::time::Duration;
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// c.cx(0, 2);
/// let graph = arch::devices::tokyo();
/// let router = SatMap::new(SatMapConfig::default());
/// let request = RouteRequest::new(&c, &graph).with_budget(Duration::from_secs(30));
/// let outcome = router.route_request(&request);
/// let routed = outcome.routed().expect("solves");
/// verify(&c, &graph, routed).expect("solution verifies");
/// ```
#[derive(Debug)]
pub struct SatMap<B: SatBackend + Default + Send = DefaultBackend> {
    config: SatMapConfig,
    _backend: PhantomData<fn() -> B>,
}

impl<B: SatBackend + Default + Send> Clone for SatMap<B> {
    fn clone(&self) -> Self {
        SatMap {
            config: self.config.clone(),
            _backend: PhantomData,
        }
    }
}

impl SatMap {
    /// Creates a router with the given configuration and the default SAT
    /// backend.
    pub fn new(config: SatMapConfig) -> Self {
        Self::with_backend(config)
    }
}

/// Per-slice solving state kept for backtracking. Encodings are large
/// (O(slice · |Logic| · |Phys|) clauses), so only a recent window keeps
/// them in memory; evicted ones are rebuilt on demand from the slice plus
/// the recorded pin and exclusion clauses.
struct SliceState {
    enc: Option<QmrEncoding>,
    /// Final maps excluded by backtracking (Example 10 clauses).
    forbidden: Vec<Vec<usize>>,
    /// Leading swap slots the slice was (re)built with.
    leading_slots: usize,
    /// Decoded solution: final map + this slice's op contribution
    /// (gate indices local to the slice).
    final_map: Vec<usize>,
    initial_map: Vec<usize>,
    ops: Vec<RoutedOp>,
}

/// How many slice encodings stay resident for backtracking.
const ENCODING_WINDOW: usize = 4;

/// Records a solved slice and evicts encodings outside the backtracking
/// window (shared by the forward path and the deepening fallback).
fn push_solved(solved: &mut Vec<SliceState>, state: SliceState, telemetry: &mut SolverTelemetry) {
    solved.push(state);
    telemetry.slices += 1;
    if solved.len() > ENCODING_WINDOW {
        let evict = solved.len() - ENCODING_WINDOW - 1;
        solved[evict].enc = None;
    }
}

impl<B: SatBackend + Default + Send> SatMap<B> {
    /// Creates a router with the given configuration and an explicit SAT
    /// backend type.
    pub fn with_backend(config: SatMapConfig) -> Self {
        SatMap {
            config,
            _backend: PhantomData,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SatMapConfig {
        &self.config
    }

    /// One MaxSAT call on the generic backend, charging effort to
    /// `telemetry`.
    fn solve_instance(
        &self,
        enc: &QmrEncoding,
        p: &Resolved,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
    ) -> maxsat::MaxSatOutcome {
        let out = maxsat::solve_with_options::<B>(enc.instance(), budget, &p.options);
        telemetry.absorb(&out.telemetry);
        out
    }

    /// Builds a slice encoding, charging the build time to `telemetry`.
    fn build_encoding(
        &self,
        slice: &Circuit,
        graph: &ConnectivityGraph,
        shape: EncodeShape,
        p: &Resolved,
        telemetry: &mut SolverTelemetry,
    ) -> QmrEncoding {
        let start = Instant::now();
        let enc = QmrEncoding::build(slice, graph, p.swaps_per_gap, shape, &p.objective);
        telemetry.encode_time += start.elapsed();
        enc
    }

    /// Routes the whole request under the already-resolved parameters,
    /// returning the result plus the solver effort spent — including
    /// effort spent on failed attempts.
    pub(crate) fn route_impl(
        &self,
        request: &RouteRequest<'_>,
        p: &Resolved,
    ) -> (Result<RoutedCircuit, RouteError>, SolverTelemetry) {
        let mut telemetry = SolverTelemetry::new();
        if let Err(e) = request.validate() {
            return (Err(e), telemetry);
        }
        let (circuit, graph) = (request.circuit(), request.graph());
        let budget = p.budget.arm();
        let result = match p.slice_size {
            None => self.route_monolithic(circuit, graph, p, &budget, &mut telemetry),
            Some(size) => {
                if circuit.num_two_qubit_gates() <= size {
                    // One slice: identical to monolithic.
                    self.route_monolithic(circuit, graph, p, &budget, &mut telemetry)
                } else {
                    self.route_sliced(circuit, graph, size, p, &budget, &mut telemetry)
                }
            }
        };
        (result, telemetry)
    }

    /// Routes the circuit as one monolithic MaxSAT problem (NL-SATMAP).
    fn route_monolithic(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
        p: &Resolved,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
    ) -> Result<RoutedCircuit, RouteError> {
        // Memory guard (the analogue of the paper's 5 GB per-tool cap):
        // refuse instances whose encoding would dwarf any realistic budget.
        let states = circuit.num_two_qubit_gates().max(1) * p.swaps_per_gap;
        let per_state = circuit.num_qubits() * (graph.num_qubits() + 2 * graph.num_edges())
            + graph.num_qubits();
        if p.budget.is_limited() && states.saturating_mul(per_state) > 6_000_000 {
            return Err(RouteError::Timeout);
        }
        let enc = self.build_encoding(circuit, graph, EncodeShape::first_slice(), p, telemetry);
        let out = self.solve_instance(&enc, p, budget, telemetry);
        match out.status {
            MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                let model = out.model.expect("status implies model");
                let (maps, swaps) = enc.decode(&model);
                Ok(routed_from_solution(
                    circuit,
                    &enc,
                    &maps,
                    &swaps,
                    p.swaps_per_gap,
                    0,
                ))
            }
            MaxSatStatus::Unsat => Err(RouteError::Unsatisfiable(format!(
                "no routing with n = {} swaps per gap; increase swaps_per_gap",
                p.swaps_per_gap
            ))),
            MaxSatStatus::Unknown => Err(RouteError::Timeout),
        }
    }

    /// Section V: slice, solve each slice pinned to the previous final map,
    /// and backtrack (excluding final maps) when a slice is unsatisfiable.
    /// When the backtrack budget is exhausted, fall back to *leading-slot
    /// deepening*: rebuild the stuck slice with more swap slots before its
    /// first gate, which can always absorb a bad entry map and therefore
    /// keeps the relaxation complete.
    fn route_sliced(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
        slice_size: usize,
        p: &Resolved,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
    ) -> Result<RoutedCircuit, RouteError> {
        let slices = circuit.slices(slice_size);
        let n = p.swaps_per_gap;

        let mut solved: Vec<SliceState> = Vec::with_capacity(slices.len());
        let mut backtracks_left = p.backtrack_limit;
        let mut i = 0usize;
        while i < slices.len() {
            if budget.expired() {
                return Err(RouteError::Timeout);
            }
            let shape = if i == 0 {
                EncodeShape::first_slice()
            } else {
                EncodeShape::continuation(n)
            };
            let mut enc = self.build_encoding(&slices[i], graph, shape, p, telemetry);
            if i > 0 {
                enc.pin_initial_map(&solved[i - 1].final_map);
            }
            let out = self.solve_instance(&enc, p, budget, telemetry);
            match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (maps, swaps) = enc.decode(&model);
                    let ops = routed_from_solution(&slices[i], &enc, &maps, &swaps, n, 0)
                        .ops()
                        .to_vec();
                    let state = SliceState {
                        enc: Some(enc),
                        forbidden: Vec::new(),
                        leading_slots: shape.leading_slots,
                        final_map: maps.last().expect("≥1 state").clone(),
                        initial_map: maps.first().expect("≥1 state").clone(),
                        ops,
                    };
                    push_solved(&mut solved, state, telemetry);
                    i += 1;
                }
                MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                MaxSatStatus::Unsat => {
                    // Backtrack: forbid the previous slice's final map and
                    // re-solve it (Example 10).
                    if i == 0 {
                        return Err(RouteError::Unsatisfiable(format!(
                            "first slice unsolvable with n = {n} swaps per gap"
                        )));
                    }
                    loop {
                        if backtracks_left == 0 {
                            // Backtracking exhausted: deepen the stuck
                            // slice's leading slots instead of giving up.
                            let pin = solved[i - 1].final_map.clone();
                            let state = self.solve_slice_deepened(
                                &slices[i], graph, &pin, p, budget, telemetry,
                            )?;
                            push_solved(&mut solved, state, telemetry);
                            i += 1;
                            break;
                        }
                        backtracks_left -= 1;
                        telemetry.backtracks += 1;
                        if budget.expired() {
                            return Err(RouteError::Timeout);
                        }
                        let prev_idx = solved.len() - 1;
                        let prev_initial = if prev_idx == 0 {
                            None
                        } else {
                            Some(solved[prev_idx - 1].final_map.clone())
                        };
                        let prev_shape = if prev_idx == 0 {
                            EncodeShape::first_slice()
                        } else {
                            EncodeShape::continuation(solved[prev_idx].leading_slots)
                        };
                        let prev = solved.last_mut().expect("i > 0");
                        let bad = prev.final_map.clone();
                        prev.forbidden.push(bad.clone());
                        if prev.enc.is_none() {
                            // Rebuild the evicted encoding with its pin and
                            // all recorded exclusions.
                            let build_start = Instant::now();
                            let mut rebuilt = QmrEncoding::build(
                                &slices[prev_idx],
                                graph,
                                n,
                                prev_shape,
                                &p.objective,
                            );
                            telemetry.encode_time += build_start.elapsed();
                            if let Some(pin) = &prev_initial {
                                rebuilt.pin_initial_map(pin);
                            }
                            for f in &prev.forbidden {
                                rebuilt.forbid_final_map(f);
                            }
                            prev.enc = Some(rebuilt);
                        } else if let Some(enc) = prev.enc.as_mut() {
                            enc.forbid_final_map(&bad);
                        }
                        let retry = maxsat::solve_with_options::<B>(
                            prev.enc.as_ref().expect("just ensured").instance(),
                            budget,
                            &p.options,
                        );
                        telemetry.absorb(&retry.telemetry);
                        match retry.status {
                            MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                                let model = retry.model.expect("status implies model");
                                let prev_enc =
                                    prev.enc.as_ref().expect("resident during backtrack");
                                let (maps, swaps) = prev_enc.decode(&model);
                                prev.final_map = maps.last().expect("≥1 state").clone();
                                prev.initial_map = maps.first().expect("≥1 state").clone();
                                prev.ops = routed_from_solution(
                                    &slices[prev_idx],
                                    prev_enc,
                                    &maps,
                                    &swaps,
                                    n,
                                    0,
                                )
                                .ops()
                                .to_vec();
                                break; // resume forward from slice i
                            }
                            MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                            MaxSatStatus::Unsat => {
                                // This slice has no alternative final map:
                                // backtrack one more level.
                                solved.pop();
                                i -= 1;
                                if i == 0 && solved.is_empty() {
                                    return Err(RouteError::Unsatisfiable(format!(
                                        "exhausted all final maps with n = {n}"
                                    )));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Stitch slices into one routed circuit.
        let initial_map = solved
            .first()
            .map(|s| s.initial_map.clone())
            .unwrap_or_else(|| (0..circuit.num_qubits()).collect());
        let mut ops: Vec<RoutedOp> = Vec::new();
        let mut gate_offset = 0usize;
        for (slice, state) in slices.iter().zip(&solved) {
            ops.extend(state.ops.iter().map(|op| match *op {
                RoutedOp::Logical(k) => RoutedOp::Logical(k + gate_offset),
                swap => swap,
            }));
            gate_offset += slice.len();
        }
        Ok(RoutedCircuit::new(initial_map, ops))
    }

    /// Solves one pinned slice, doubling the number of leading swap slots
    /// until satisfiable. With enough leading slots any entry map can be
    /// reshaped before the first gate, so this always terminates with a
    /// solution, a timeout, or a genuinely unsatisfiable slice.
    fn solve_slice_deepened(
        &self,
        slice: &Circuit,
        graph: &ConnectivityGraph,
        pin: &[usize],
        p: &Resolved,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
    ) -> Result<SliceState, RouteError> {
        let n = p.swaps_per_gap;
        // Routing every logical qubit home costs at most diameter swaps.
        let max_lead = (graph.diameter().max(1) * slice.num_qubits()).max(2 * n);
        let mut lead = 2 * n;
        loop {
            if budget.expired() {
                return Err(RouteError::Timeout);
            }
            let shape = EncodeShape::continuation(lead);
            let mut enc = self.build_encoding(slice, graph, shape, p, telemetry);
            enc.pin_initial_map(pin);
            let out = self.solve_instance(&enc, p, budget, telemetry);
            match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (maps, swaps) = enc.decode(&model);
                    let ops = routed_from_solution(slice, &enc, &maps, &swaps, n, 0)
                        .ops()
                        .to_vec();
                    return Ok(SliceState {
                        enc: Some(enc),
                        forbidden: Vec::new(),
                        leading_slots: lead,
                        final_map: maps.last().expect("≥1 state").clone(),
                        initial_map: maps.first().expect("≥1 state").clone(),
                        ops,
                    });
                }
                MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                MaxSatStatus::Unsat if lead < max_lead => {
                    lead = (lead * 2).min(max_lead);
                }
                MaxSatStatus::Unsat => {
                    return Err(RouteError::Unsatisfiable(format!(
                        "slice unsolvable even with {lead} leading swap slots"
                    )));
                }
            }
        }
    }
}

impl<B: SatBackend + Default + Send> Router for SatMap<B> {
    fn name(&self) -> &str {
        if self.config.slice_size.is_some() {
            "satmap"
        } else {
            "nl-satmap"
        }
    }

    fn route_request(&self, request: &RouteRequest<'_>) -> RouteOutcome {
        let p = self.config.resolve(request);
        RouteOutcome::capture(self.name(), || self.route_impl(request, &p))
            .with_diagnostic(
                "slice_size",
                p.slice_size.map_or("none".into(), |s| s.to_string()),
            )
            .with_diagnostic("swaps_per_gap", p.swaps_per_gap)
            .with_diagnostic("portfolio_width", p.width)
            .with_diagnostic("strategy", p.options.strategy.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;
    use std::time::Duration;

    fn fig3() -> (Circuit, ConnectivityGraph) {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        (
            c,
            ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]),
        )
    }

    #[test]
    fn monolithic_solves_fig3_optimally() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::monolithic());
        let routed = router.route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
        assert_eq!(routed.swap_count(), 1);
        assert_eq!(router.name(), "nl-satmap");
    }

    #[test]
    fn sliced_solves_fig3() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::sliced(2));
        let routed = router.route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
        // Locally optimal: possibly more swaps than the global optimum,
        // but it must still verify and stay small here.
        assert!(routed.swap_count() <= 2, "got {}", routed.swap_count());
        assert_eq!(router.name(), "satmap");
    }

    #[test]
    fn request_slicing_overrides_config() {
        let (c, g) = fig3();
        // A monolithic-by-default router asked to slice, and vice versa.
        let router = SatMap::new(SatMapConfig::monolithic());
        let sliced = router
            .route_request(&RouteRequest::new(&c, &g).with_slicing(circuit::Slicing::Sliced(2)));
        assert_eq!(sliced.diagnostic("slice_size"), Some("2"));
        verify(&c, &g, sliced.routed().expect("solves")).expect("verifies");

        let router = SatMap::new(SatMapConfig::sliced(2));
        let mono = router
            .route_request(&RouteRequest::new(&c, &g).with_slicing(circuit::Slicing::Monolithic));
        assert_eq!(mono.diagnostic("slice_size"), Some("none"));
        assert_eq!(mono.routed().expect("solves").swap_count(), 1);
    }

    #[test]
    fn backtracking_recovers_from_bad_slice_boundary() {
        // Example 9's shape: slicing can strand the map; backtracking (or
        // a leading swap slot) must still deliver a verified solution.
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(0, 2);
        c.cx(0, 1);
        let g = arch::devices::linear(3);
        let router = SatMap::new(SatMapConfig::sliced(1));
        let routed = router.route(&c, &g).expect("solves with backtracking");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn deepening_rescues_exhausted_backtracking() {
        // With a zero backtrack budget the router must still solve sliced
        // instances by deepening leading slots instead of erroring out.
        let mut config = SatMapConfig::sliced(2);
        config.backtrack_limit = 0;
        let c = circuit::generators::random_local(5, 10, 4, 0.1, 3);
        let g = arch::devices::tokyo_minus();
        let router = SatMap::new(config);
        let routed = router.route(&c, &g).expect("deepening completes");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn too_many_logical_qubits_rejected() {
        let c = Circuit::new(25);
        let g = arch::devices::tokyo();
        let router = SatMap::new(SatMapConfig::default());
        assert!(matches!(
            router.route(&c, &g),
            Err(RouteError::InvalidRequest(_))
        ));
    }

    #[test]
    fn zero_budget_times_out_on_nontrivial_input() {
        let mut c = Circuit::new(8);
        for i in 0..7 {
            c.cx(i, i + 1);
            c.cx(0, 7 - i);
        }
        let g = arch::devices::tokyo();
        let router = SatMap::new(SatMapConfig::default());
        let outcome = router.route_request(&RouteRequest::new(&c, &g).with_budget(Duration::ZERO));
        assert!(matches!(outcome.error(), Some(RouteError::Timeout)));
    }

    #[test]
    fn larger_circuit_on_tokyo_verifies() {
        let c = circuit::generators::random_local(6, 12, 3, 0.2, 9);
        let g = arch::devices::tokyo();
        let router = SatMap::new(SatMapConfig::sliced(4));
        let routed = router.route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn telemetry_accounts_for_slices_and_sat_calls() {
        let c = circuit::generators::random_local(5, 12, 4, 0.0, 2);
        let g = arch::devices::tokyo_minus();
        let router = SatMap::new(SatMapConfig::sliced(3));
        let outcome = router.route_request(&RouteRequest::new(&c, &g));
        let routed = outcome.routed().expect("solves");
        verify(&c, &g, routed).expect("verifies");
        let telemetry = outcome.telemetry();
        assert!(telemetry.slices >= 4, "12 gates / 3 per slice: {telemetry}");
        assert!(telemetry.sat_calls > 0);
        assert!(telemetry.solve_time > Duration::ZERO);
        assert!(telemetry.encode_time > Duration::ZERO);
        assert!(outcome.wall_time() > Duration::ZERO);
    }
}

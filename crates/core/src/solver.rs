//! The SATMAP router: monolithic solving, the locally optimal relaxation
//! with backtracking (Section V), and plumbing shared with the cyclic
//! relaxation (Section VI).

use std::time::{Duration, Instant};

use arch::ConnectivityGraph;
use circuit::{check_fits, Circuit, RoutedCircuit, RoutedOp, RouteError, Router};
use maxsat::{MaxSatConfig, MaxSatStatus};

use crate::config::SatMapConfig;
use crate::encode::{routed_from_solution, EncodeShape, QmrEncoding};

/// The SATMAP qubit mapping and routing solver.
///
/// With `slice_size: None` this is **NL-SATMAP** (one monolithic MaxSAT
/// problem, optimal modulo the `n`-swaps-per-gap restriction); with a slice
/// size it is **SATMAP** (locally optimal relaxation with backtracking).
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Router, verify::verify};
/// use satmap::{SatMap, SatMapConfig};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// c.cx(0, 2);
/// let graph = arch::devices::tokyo();
/// let router = SatMap::new(SatMapConfig::default());
/// let routed = router.route(&c, &graph)?;
/// verify(&c, &graph, &routed).expect("solution verifies");
/// # Ok::<(), circuit::RouteError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SatMap {
    config: SatMapConfig,
}

impl SatMap {
    /// Creates a router with the given configuration.
    pub fn new(config: SatMapConfig) -> Self {
        SatMap { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SatMapConfig {
        &self.config
    }

    fn remaining(&self, start: Instant) -> Option<Duration> {
        self.config.budget.map(|b| b.saturating_sub(start.elapsed()))
    }

    fn maxsat_config(&self, start: Instant) -> MaxSatConfig {
        MaxSatConfig {
            time_budget: self.remaining(start),
            conflicts_per_call: self.config.conflicts_per_call,
        }
    }

    fn out_of_time(&self, start: Instant) -> bool {
        matches!(self.remaining(start), Some(d) if d.is_zero())
    }

    /// Routes the circuit as one monolithic MaxSAT problem (NL-SATMAP).
    fn route_monolithic(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
        start: Instant,
    ) -> Result<RoutedCircuit, RouteError> {
        // Memory guard (the analogue of the paper's 5 GB per-tool cap):
        // refuse instances whose encoding would dwarf any realistic budget.
        let states = circuit.num_two_qubit_gates().max(1) * self.config.swaps_per_gap;
        let per_state = circuit.num_qubits() * (graph.num_qubits() + 2 * graph.num_edges())
            + graph.num_qubits();
        if self.config.budget.is_some() && states.saturating_mul(per_state) > 6_000_000 {
            return Err(RouteError::Timeout);
        }
        let enc = QmrEncoding::build(
            circuit,
            graph,
            self.config.swaps_per_gap,
            EncodeShape::first_slice(),
            &self.config.objective,
        );
        let out = maxsat::solve(enc.instance(), self.maxsat_config(start));
        match out.status {
            MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                let model = out.model.expect("status implies model");
                let (maps, swaps) = enc.decode(&model);
                Ok(routed_from_solution(
                    circuit,
                    &enc,
                    &maps,
                    &swaps,
                    self.config.swaps_per_gap,
                    0,
                ))
            }
            MaxSatStatus::Unsat => Err(RouteError::Unsatisfiable(format!(
                "no routing with n = {} swaps per gap; increase swaps_per_gap",
                self.config.swaps_per_gap
            ))),
            MaxSatStatus::Unknown => Err(RouteError::Timeout),
        }
    }

    /// Section V: slice, solve each slice pinned to the previous final map,
    /// and backtrack (excluding final maps) when a slice is unsatisfiable.
    fn route_sliced(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
        slice_size: usize,
        start: Instant,
    ) -> Result<RoutedCircuit, RouteError> {
        let slices = circuit.slices(slice_size);
        let n = self.config.swaps_per_gap;

        /// Per-slice solving state kept for backtracking. Encodings are
        /// large (O(slice · |Logic| · |Phys|) clauses), so only a recent
        /// window keeps them in memory; evicted ones are rebuilt on demand
        /// from the slice plus the recorded pin and exclusion clauses.
        struct SliceState {
            enc: Option<QmrEncoding>,
            /// Final maps excluded by backtracking (Example 10 clauses).
            forbidden: Vec<Vec<usize>>,
            /// Decoded solution: final map + this slice's op contribution
            /// (gate indices local to the slice).
            final_map: Vec<usize>,
            initial_map: Vec<usize>,
            ops: Vec<RoutedOp>,
        }

        /// How many slice encodings stay resident for backtracking.
        const ENCODING_WINDOW: usize = 4;

        let mut solved: Vec<SliceState> = Vec::with_capacity(slices.len());
        let mut backtracks_left = self.config.backtrack_limit;
        let mut i = 0usize;
        while i < slices.len() {
            if self.out_of_time(start) {
                return Err(RouteError::Timeout);
            }
            let shape = if i == 0 {
                EncodeShape::first_slice()
            } else {
                EncodeShape::continuation()
            };
            let mut enc =
                QmrEncoding::build(&slices[i], graph, n, shape, &self.config.objective);
            if i > 0 {
                enc.pin_initial_map(&solved[i - 1].final_map);
            }
            let out = maxsat::solve(enc.instance(), self.maxsat_config(start));
            match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (maps, swaps) = enc.decode(&model);
                    let ops = routed_from_solution(&slices[i], &enc, &maps, &swaps, n, 0)
                        .ops()
                        .to_vec();
                    solved.push(SliceState {
                        enc: Some(enc),
                        forbidden: Vec::new(),
                        final_map: maps.last().expect("≥1 state").clone(),
                        initial_map: maps.first().expect("≥1 state").clone(),
                        ops,
                    });
                    // Evict encodings outside the backtracking window.
                    if solved.len() > ENCODING_WINDOW {
                        let evict = solved.len() - ENCODING_WINDOW - 1;
                        solved[evict].enc = None;
                    }
                    i += 1;
                }
                MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                MaxSatStatus::Unsat => {
                    // Backtrack: forbid the previous slice's final map and
                    // re-solve it (Example 10).
                    if i == 0 {
                        return Err(RouteError::Unsatisfiable(format!(
                            "first slice unsolvable with n = {n} swaps per gap"
                        )));
                    }
                    loop {
                        if backtracks_left == 0 {
                            return Err(RouteError::Unsatisfiable(
                                "backtrack limit exhausted".into(),
                            ));
                        }
                        backtracks_left -= 1;
                        if self.out_of_time(start) {
                            return Err(RouteError::Timeout);
                        }
                        let prev_idx = solved.len() - 1;
                        let prev_initial = if prev_idx == 0 {
                            None
                        } else {
                            Some(solved[prev_idx - 1].final_map.clone())
                        };
                        let prev = solved.last_mut().expect("i > 0");
                        let bad = prev.final_map.clone();
                        prev.forbidden.push(bad.clone());
                        if prev.enc.is_none() {
                            // Rebuild the evicted encoding with its pin and
                            // all recorded exclusions.
                            let shape = if prev_idx == 0 {
                                EncodeShape::first_slice()
                            } else {
                                EncodeShape::continuation()
                            };
                            let mut rebuilt = QmrEncoding::build(
                                &slices[prev_idx],
                                graph,
                                n,
                                shape,
                                &self.config.objective,
                            );
                            if let Some(pin) = &prev_initial {
                                rebuilt.pin_initial_map(pin);
                            }
                            for f in &prev.forbidden {
                                rebuilt.forbid_final_map(f);
                            }
                            prev.enc = Some(rebuilt);
                        } else if let Some(enc) = prev.enc.as_mut() {
                            enc.forbid_final_map(&bad);
                        }
                        let retry = maxsat::solve(
                            prev.enc.as_ref().expect("just ensured").instance(),
                            self.maxsat_config(start),
                        );
                        match retry.status {
                            MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                                let model = retry.model.expect("status implies model");
                                let prev_enc =
                                    prev.enc.as_ref().expect("resident during backtrack");
                                let (maps, swaps) = prev_enc.decode(&model);
                                prev.final_map = maps.last().expect("≥1 state").clone();
                                prev.initial_map = maps.first().expect("≥1 state").clone();
                                prev.ops = routed_from_solution(
                                    &slices[prev_idx],
                                    prev_enc,
                                    &maps,
                                    &swaps,
                                    n,
                                    0,
                                )
                                .ops()
                                .to_vec();
                                break; // resume forward from slice i
                            }
                            MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                            MaxSatStatus::Unsat => {
                                // This slice has no alternative final map:
                                // backtrack one more level.
                                solved.pop();
                                i -= 1;
                                if i == 0 && solved.is_empty() {
                                    return Err(RouteError::Unsatisfiable(format!(
                                        "exhausted all final maps with n = {n}"
                                    )));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Stitch slices into one routed circuit.
        let initial_map = solved
            .first()
            .map(|s| s.initial_map.clone())
            .unwrap_or_else(|| (0..circuit.num_qubits()).collect());
        let mut ops: Vec<RoutedOp> = Vec::new();
        let mut gate_offset = 0usize;
        for (slice, state) in slices.iter().zip(&solved) {
            ops.extend(state.ops.iter().map(|op| match *op {
                RoutedOp::Logical(k) => RoutedOp::Logical(k + gate_offset),
                swap => swap,
            }));
            gate_offset += slice.len();
        }
        Ok(RoutedCircuit::new(initial_map, ops))
    }
}

impl Router for SatMap {
    fn name(&self) -> &str {
        if self.config.slice_size.is_some() {
            "satmap"
        } else {
            "nl-satmap"
        }
    }

    fn route(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
    ) -> Result<RoutedCircuit, RouteError> {
        check_fits(circuit, graph)?;
        let start = Instant::now();
        match self.config.slice_size {
            None => self.route_monolithic(circuit, graph, start),
            Some(size) => {
                if circuit.num_two_qubit_gates() <= size {
                    // One slice: identical to monolithic.
                    self.route_monolithic(circuit, graph, start)
                } else {
                    self.route_sliced(circuit, graph, size, start)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;

    fn fig3() -> (Circuit, ConnectivityGraph) {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        (c, ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]))
    }

    #[test]
    fn monolithic_solves_fig3_optimally() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::monolithic());
        let routed = router.route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
        assert_eq!(routed.swap_count(), 1);
        assert_eq!(router.name(), "nl-satmap");
    }

    #[test]
    fn sliced_solves_fig3() {
        let (c, g) = fig3();
        let router = SatMap::new(SatMapConfig::sliced(2));
        let routed = router.route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
        // Locally optimal: possibly more swaps than the global optimum,
        // but it must still verify and stay small here.
        assert!(routed.swap_count() <= 2, "got {}", routed.swap_count());
        assert_eq!(router.name(), "satmap");
    }

    #[test]
    fn backtracking_recovers_from_bad_slice_boundary() {
        // Example 9's shape: slicing can strand the map; backtracking (or
        // a leading swap slot) must still deliver a verified solution.
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(0, 2);
        c.cx(0, 1);
        let g = arch::devices::linear(3);
        let router = SatMap::new(SatMapConfig::sliced(1));
        let routed = router.route(&c, &g).expect("solves with backtracking");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn too_many_logical_qubits_rejected() {
        let c = Circuit::new(25);
        let g = arch::devices::tokyo();
        let router = SatMap::new(SatMapConfig::default());
        assert!(matches!(
            router.route(&c, &g),
            Err(RouteError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn zero_budget_times_out_on_nontrivial_input() {
        let mut c = Circuit::new(8);
        for i in 0..7 {
            c.cx(i, i + 1);
            c.cx(0, 7 - i);
        }
        let g = arch::devices::tokyo();
        let router = SatMap::new(SatMapConfig::default().with_budget(Duration::ZERO));
        assert!(matches!(router.route(&c, &g), Err(RouteError::Timeout)));
    }

    #[test]
    fn larger_circuit_on_tokyo_verifies() {
        let c = circuit::generators::random_local(6, 12, 3, 0.2, 9);
        let g = arch::devices::tokyo();
        let router = SatMap::new(SatMapConfig::sliced(4));
        let routed = router.route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
    }
}

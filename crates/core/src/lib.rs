//! **SATMAP** — optimal qubit mapping and routing (QMR) via MaxSAT.
//!
//! Reproduction of the core contribution of *"Qubit Mapping and Routing via
//! MaxSAT"* (MICRO 2022): a sketching-inspired Boolean encoding of QMR
//! solved with an anytime MaxSAT engine, plus the paper's two relaxations.
//!
//! * [`encode`] — the Fig. 5 encoding (Hard A–D + soft no-op rewards);
//! * [`SatMap`] — the router: monolithic (**NL-SATMAP**) or with the
//!   locally optimal relaxation of Section V (**SATMAP**), including
//!   backtracking across slice boundaries;
//! * [`CyclicSatMap`] — the cyclic-circuit relaxation of Section VI
//!   (**CYC-SATMAP**), for QAOA-style repeated circuits;
//! * [`circuit::Objective::Fidelity`] — the weighted (noise-aware) variant
//!   of §Q6, selected per request.
//!
//! All routers serve the request-driven [`circuit::Router`] interface:
//! budgets, objectives, slicing, and the SAT-portfolio width are
//! properties of each [`circuit::RouteRequest`], and every call answers
//! with a [`circuit::RouteOutcome`] carrying telemetry and wall-clock
//! timing. Solutions can be checked with the independent verifier in
//! [`circuit::verify`].
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, RouteRequest, Router, verify::verify};
//! use satmap::{SatMap, SatMapConfig};
//! use std::time::Duration;
//!
//! // The paper's running example (Fig. 3).
//! let mut c = Circuit::new(4);
//! c.cx(0, 1);
//! c.cx(0, 2);
//! c.cx(3, 2);
//! c.cx(0, 3);
//! let graph = arch::ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
//! let router = SatMap::new(SatMapConfig::monolithic());
//! let request = RouteRequest::new(&c, &graph).with_budget(Duration::from_secs(30));
//! let outcome = router.route_request(&request);
//! let routed = outcome.routed().expect("solves");
//! verify(&c, &graph, routed).expect("solution verifies");
//! assert_eq!(routed.swap_count(), 1); // the single green swap of Fig. 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod config;
mod cyclic;
pub mod encode;
mod solver;

pub use artifact::{EncodedArtifact, RouteSession};
pub use circuit::Objective;
pub use config::SatMapConfig;
pub use cyclic::CyclicSatMap;
pub use solver::{encoding_estimate, plan_ceiling, planned_width, SatMap, ENCODING_GUARD_LIMIT};

/// SATMAP over a diversified SAT portfolio: every MaxSAT call can race
/// multiple differently-configured CDCL workers and takes the first
/// definitive answer (see [`sat::PortfolioBackend`]). The width is chosen
/// per request from [`circuit::Parallelism`] — `Serial` solves inline,
/// `Auto` sizes from the machine. Costs match [`SatMap`] — only the
/// wall-clock route to them differs.
pub type PortfolioSatMap = SatMap<sat::PortfolioBackend<sat::DefaultBackend>>;

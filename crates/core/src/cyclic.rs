//! The cyclic-circuit relaxation (Section VI).
//!
//! For a circuit of the form `prefix ; C ; C ; … ; C` (e.g. QAOA, Fig. 7),
//! solve the MaxSAT constraints for the repeated subcircuit `C` *once*,
//! with the added hard constraint that the final map equals the initial map
//! (realized by a trailing swap layer, Fig. 8), then stitch copies of the
//! solution to cover every repetition.
//!
//! Composes with the local relaxation: large subcircuits are sliced, and
//! the *last* slice is additionally pinned to land on the first slice's
//! entry map.

use std::time::Instant;

use arch::ConnectivityGraph;
use circuit::{check_fits, Circuit, RoutedCircuit, RoutedOp, RouteError, Router};
use maxsat::MaxSatStatus;

use crate::config::SatMapConfig;
use crate::encode::{routed_from_solution, EncodeShape, QmrEncoding};
use crate::solver::SatMap;

/// CYC-SATMAP: the cyclic relaxation router for repeated circuits.
///
/// Routes the circuit `prefix ; subcircuit × cycles`. The prefix must
/// contain no two-qubit gates (QAOA's Hadamard layer).
///
/// # Examples
///
/// ```
/// use circuit::{qaoa, verify::verify};
/// use satmap::{CyclicSatMap, SatMapConfig};
///
/// let edges = qaoa::three_regular_graph(6, 1);
/// let sub = qaoa::qaoa_subcircuit(6, &edges, 0.4, 0.3);
/// let mut prefix = circuit::Circuit::new(6);
/// for q in 0..6 { prefix.h(q); }
/// let graph = arch::devices::tokyo();
/// let router = CyclicSatMap::new(SatMapConfig::default());
/// let (full, routed) = router.route_repeated(&prefix, &sub, 2, &graph)?;
/// verify(&full, &graph, &routed).expect("verifies");
/// # Ok::<(), circuit::RouteError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CyclicSatMap {
    config: SatMapConfig,
}

impl CyclicSatMap {
    /// Creates a cyclic router with the given configuration.
    pub fn new(config: SatMapConfig) -> Self {
        CyclicSatMap { config }
    }

    /// Routes `prefix ; sub × cycles` on `graph`, returning the assembled
    /// full circuit together with its routed solution.
    ///
    /// # Errors
    ///
    /// [`RouteError::Unsatisfiable`] if the prefix contains two-qubit gates
    /// or the subproblem has no solution; [`RouteError::Timeout`] on budget
    /// expiry.
    pub fn route_repeated(
        &self,
        prefix: &Circuit,
        sub: &Circuit,
        cycles: usize,
        graph: &ConnectivityGraph,
    ) -> Result<(Circuit, RoutedCircuit), RouteError> {
        if prefix.num_two_qubit_gates() > 0 {
            return Err(RouteError::Unsatisfiable(
                "cyclic prefix must not contain two-qubit gates".into(),
            ));
        }
        if prefix.num_qubits() != sub.num_qubits() {
            return Err(RouteError::Unsatisfiable(
                "prefix and subcircuit qubit counts differ".into(),
            ));
        }
        check_fits(sub, graph)?;
        let start = Instant::now();

        // Assemble the full circuit (what the caller actually wants run).
        let mut full = Circuit::named(
            &format!("{}x{}", sub.name(), cycles),
            sub.num_qubits(),
        );
        full.extend_from(prefix);
        for _ in 0..cycles {
            full.extend_from(sub);
        }

        // Solve the subcircuit once, cyclically.
        let sub_routed = self.solve_subcircuit(sub, graph, start)?;
        debug_assert_eq!(sub_routed.final_map(), sub_routed.initial_map());

        // Stitch: prefix 1q gates, then `cycles` copies of the subcircuit
        // ops with shifted gate indices.
        let initial_map = sub_routed.initial_map().to_vec();
        let mut ops: Vec<RoutedOp> = (0..prefix.len()).map(RoutedOp::Logical).collect();
        for cycle in 0..cycles {
            let offset = prefix.len() + cycle * sub.len();
            for op in sub_routed.ops() {
                ops.push(match *op {
                    RoutedOp::Logical(k) => RoutedOp::Logical(k + offset),
                    RoutedOp::Swap(a, b) => RoutedOp::Swap(a, b),
                });
            }
        }
        Ok((full, RoutedCircuit::new(initial_map, ops)))
    }

    /// Solves `sub` with the final-map = initial-map constraint, slicing if
    /// configured and the subcircuit is large enough.
    fn solve_subcircuit(
        &self,
        sub: &Circuit,
        graph: &ConnectivityGraph,
        start: Instant,
    ) -> Result<RoutedCircuit, RouteError> {
        let n = self.config.swaps_per_gap;
        let monolithic = match self.config.slice_size {
            Some(size) => sub.num_two_qubit_gates() <= size,
            None => true,
        };
        if monolithic {
            let mut enc = QmrEncoding::build(
                sub,
                graph,
                n,
                EncodeShape {
                    leading_swaps: false,
                    trailing_swaps: true,
                },
                &self.config.objective,
            );
            enc.require_cyclic();
            let maxsat_config = maxsat::MaxSatConfig {
                time_budget: self.config.budget.map(|b| b.saturating_sub(start.elapsed())),
                conflicts_per_call: self.config.conflicts_per_call,
            };
            let out = maxsat::solve(enc.instance(), maxsat_config);
            return match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (maps, swaps) = enc.decode(&model);
                    Ok(routed_from_solution(sub, &enc, &maps, &swaps, n, 0))
                }
                MaxSatStatus::Unsat => Err(RouteError::Unsatisfiable(format!(
                    "cyclic subcircuit unsolvable with n = {n}"
                ))),
                MaxSatStatus::Unknown => Err(RouteError::Timeout),
            };
        }
        // Composed with slicing: route the subcircuit normally, then close
        // the cycle by solving a final "restore" slice that must land on
        // the initial map (an empty slice whose exit is pinned).
        let inner = SatMap::new(self.config.clone());
        let routed = inner.route(sub, graph)?;
        let initial = routed.initial_map().to_vec();
        let final_map = routed.final_map();
        if final_map == initial {
            return Ok(routed);
        }
        let restore = self.solve_restore(&final_map, &initial, graph, sub.num_qubits(), start)?;
        let mut ops = routed.ops().to_vec();
        ops.extend(restore);
        Ok(RoutedCircuit::new(initial, ops))
    }

    /// Finds a swap sequence transforming `from` into `to` (both
    /// logical→physical maps) using an empty pinned encoding with enough
    /// trailing swap slots.
    fn solve_restore(
        &self,
        from: &[usize],
        to: &[usize],
        graph: &ConnectivityGraph,
        num_logical: usize,
        start: Instant,
    ) -> Result<Vec<RoutedOp>, RouteError> {
        // Upper bound on swaps needed: routing each qubit home costs at
        // most diameter swaps.
        let max_slots = (graph.diameter() * num_logical).max(1);
        let empty = Circuit::new(num_logical);
        // Grow the slot count geometrically until satisfiable.
        let mut slots = num_logical.max(2);
        loop {
            let mut enc = QmrEncoding::build(
                &empty,
                graph,
                slots,
                EncodeShape {
                    leading_swaps: true,
                    trailing_swaps: false,
                },
                &self.config.objective,
            );
            enc.pin_initial_map(from);
            enc.pin_final_map(to);
            let maxsat_config = maxsat::MaxSatConfig {
                time_budget: self.config.budget.map(|b| b.saturating_sub(start.elapsed())),
                conflicts_per_call: self.config.conflicts_per_call,
            };
            let out = maxsat::solve(enc.instance(), maxsat_config);
            match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (_, swaps) = enc.decode(&model);
                    return Ok(swaps
                        .into_iter()
                        .flatten()
                        .map(|(a, b)| RoutedOp::Swap(a, b))
                        .collect());
                }
                MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                MaxSatStatus::Unsat if slots < max_slots => {
                    slots = (slots * 2).min(max_slots);
                }
                MaxSatStatus::Unsat => {
                    return Err(RouteError::Unsatisfiable(
                        "cannot restore cyclic map".into(),
                    ))
                }
            }
        }
    }
}

impl Router for CyclicSatMap {
    fn name(&self) -> &str {
        "cyc-satmap"
    }

    /// Routes a circuit that is already `sub × cycles` *without* a prefix,
    /// by treating the whole input as one repetition (callers with known
    /// cyclic structure should prefer [`CyclicSatMap::route_repeated`]).
    fn route(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
    ) -> Result<RoutedCircuit, RouteError> {
        let prefix = Circuit::new(circuit.num_qubits());
        let (_, routed) = self.route_repeated(&prefix, circuit, 1, graph)?;
        Ok(routed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;

    fn fig3() -> (Circuit, ConnectivityGraph) {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        (c, ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]))
    }

    #[test]
    fn fig8_running_example_two_swaps_per_cycle() {
        let (sub, g) = fig3();
        let prefix = Circuit::new(4);
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        let (full, routed) = router.route_repeated(&prefix, &sub, 3, &g).expect("solves");
        verify(&full, &g, &routed).expect("verifies");
        // Fig. 8: two swaps per repetition (one to route, one to restore).
        assert_eq!(routed.swap_count(), 2 * 3);
        assert_eq!(routed.final_map(), routed.initial_map());
    }

    #[test]
    fn qaoa_on_tokyo_verifies() {
        let edges = circuit::qaoa::three_regular_graph(6, 2);
        let sub = circuit::qaoa::qaoa_subcircuit(6, &edges, 0.4, 0.3);
        let mut prefix = Circuit::new(6);
        for q in 0..6 {
            prefix.h(q);
        }
        let g = arch::devices::tokyo();
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        let (full, routed) = router.route_repeated(&prefix, &sub, 2, &g).expect("solves");
        verify(&full, &g, &routed).expect("verifies");
    }

    #[test]
    fn rejects_two_qubit_prefix() {
        let (sub, g) = fig3();
        let mut prefix = Circuit::new(4);
        prefix.cx(0, 1);
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        assert!(matches!(
            router.route_repeated(&prefix, &sub, 2, &g),
            Err(RouteError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn sliced_cyclic_composition_verifies() {
        let edges = circuit::qaoa::three_regular_graph(6, 4);
        let sub = circuit::qaoa::qaoa_subcircuit(6, &edges, 0.4, 0.3);
        let prefix = Circuit::new(6);
        let g = arch::devices::tokyo();
        // Slice size smaller than the subcircuit forces composition.
        let router = CyclicSatMap::new(SatMapConfig::sliced(4));
        let (full, routed) = router.route_repeated(&prefix, &sub, 3, &g).expect("solves");
        verify(&full, &g, &routed).expect("verifies");
        assert_eq!(routed.final_map(), routed.initial_map());
    }
}

//! The cyclic-circuit relaxation (Section VI).
//!
//! For a circuit of the form `prefix ; C ; C ; … ; C` (e.g. QAOA, Fig. 7),
//! solve the MaxSAT constraints for the repeated subcircuit `C` *once*,
//! with the added hard constraint that the final map equals the initial map
//! (realized by a trailing swap layer, Fig. 8), then stitch copies of the
//! solution to cover every repetition.
//!
//! The repeated structure is declared on the request
//! ([`circuit::RepeatedStructure`]), so the router serves the same
//! dyn-safe [`Router`] interface as everyone else; requests without a
//! declaration are treated as a single repetition. Composes with the local
//! relaxation: large subcircuits are sliced, and a restore layer closes
//! the cycle.

use std::marker::PhantomData;
use std::time::Instant;

use arch::ConnectivityGraph;
use circuit::{
    Circuit, RepeatedStructure, RouteError, RouteOutcome, RouteRequest, RouteSpec, RoutedCircuit,
    RoutedOp, Router,
};
use maxsat::MaxSatStatus;
use sat::{DefaultBackend, ResourceBudget, SatBackend, SolverTelemetry};

use crate::config::{Resolved, SatMapConfig};
use crate::encode::{routed_from_solution, EncodeShape, QmrEncoding};
use crate::solver::{Proof, SatMap};

/// CYC-SATMAP: the cyclic relaxation router for repeated circuits.
///
/// Declare the repetition on the request and the router solves the
/// subcircuit once; the convenience [`CyclicSatMap::route_repeated`]
/// assembles the full circuit and the request in one call.
///
/// # Examples
///
/// ```
/// use circuit::{qaoa, verify::verify};
/// use satmap::{CyclicSatMap, SatMapConfig};
///
/// let edges = qaoa::three_regular_graph(6, 1);
/// let sub = qaoa::qaoa_subcircuit(6, &edges, 0.4, 0.3);
/// let mut prefix = circuit::Circuit::new(6);
/// for q in 0..6 { prefix.h(q); }
/// let graph = arch::devices::tokyo();
/// let router = CyclicSatMap::new(SatMapConfig::default());
/// let (full, routed) = router.route_repeated(&prefix, &sub, 2, &graph)?;
/// verify(&full, &graph, &routed).expect("verifies");
/// # Ok::<(), circuit::RouteError>(())
/// ```
#[derive(Debug)]
pub struct CyclicSatMap<B: SatBackend + Default + Send = DefaultBackend> {
    config: SatMapConfig,
    _backend: PhantomData<fn() -> B>,
}

impl<B: SatBackend + Default + Send> Clone for CyclicSatMap<B> {
    fn clone(&self) -> Self {
        CyclicSatMap {
            config: self.config.clone(),
            _backend: PhantomData,
        }
    }
}

impl CyclicSatMap {
    /// Creates a cyclic router with the given configuration and the
    /// default SAT backend.
    pub fn new(config: SatMapConfig) -> Self {
        Self::with_backend(config)
    }
}

impl<B: SatBackend + Default + Send> CyclicSatMap<B> {
    /// Creates a cyclic router with an explicit SAT backend type.
    pub fn with_backend(config: SatMapConfig) -> Self {
        CyclicSatMap {
            config,
            _backend: PhantomData,
        }
    }

    /// Convenience wrapper: assembles `prefix ; sub × cycles`, declares
    /// the repetition on a default request, and routes it, returning the
    /// assembled circuit together with its routed solution.
    ///
    /// For per-call budgets and knobs, assemble the circuit yourself and
    /// call [`Router::route_request`] with
    /// [`circuit::RouteRequest::with_repetition`].
    ///
    /// # Errors
    ///
    /// [`RouteError::InvalidRequest`] if the prefix contains two-qubit
    /// gates or the shape is degenerate; [`RouteError::Unsatisfiable`] if
    /// the subproblem has no solution; [`RouteError::Timeout`] on budget
    /// expiry.
    pub fn route_repeated(
        &self,
        prefix: &Circuit,
        sub: &Circuit,
        cycles: usize,
        graph: &ConnectivityGraph,
    ) -> Result<(Circuit, RoutedCircuit), RouteError> {
        if prefix.num_qubits() != sub.num_qubits() {
            return Err(RouteError::InvalidRequest(
                "prefix and subcircuit qubit counts differ".into(),
            ));
        }
        let mut full = Circuit::named(&format!("{}x{}", sub.name(), cycles), sub.num_qubits());
        full.extend_from(prefix);
        for _ in 0..cycles {
            full.extend_from(sub);
        }
        let request = RouteRequest::new(&full, graph).with_repetition(RepeatedStructure {
            prefix_len: prefix.len(),
            cycles,
        });
        self.route_request(&request)
            .into_result()
            .map(|routed| (full, routed))
    }

    /// Routes the whole request, returning the result plus the solver
    /// effort spent — the telemetry is reported even when routing fails,
    /// so timed-out attempts still account for their work.
    fn route_impl(
        &self,
        request: &RouteRequest<'_>,
        p: &Resolved,
        proof: &mut Proof,
    ) -> (Result<RoutedCircuit, RouteError>, SolverTelemetry) {
        let mut telemetry = SolverTelemetry::new();
        if let Err(e) = request.validate() {
            return (Err(e), telemetry);
        }
        let (circuit, graph) = (request.circuit(), request.graph());
        // Without a declared repetition the whole circuit is one cycle.
        let (prefix_len, sub_len) = request
            .repeated_subcircuit_len()
            .unwrap_or((0, circuit.len()));
        let cycles = request.repetition().map_or(1, |r| r.cycles);
        let mut sub = Circuit::named("cycle", circuit.num_qubits());
        for g in &circuit.gates()[prefix_len..prefix_len + sub_len] {
            sub.push(g.clone());
        }
        let budget = p.budget.arm();

        // Solve the subcircuit once, cyclically.
        let sub_routed = match self.solve_subcircuit(&sub, graph, p, &budget, &mut telemetry, proof)
        {
            Ok(r) => r,
            Err(e) => return (Err(e), telemetry),
        };
        debug_assert_eq!(sub_routed.final_map(), sub_routed.initial_map());

        // Stitch: prefix 1q gates, then `cycles` copies of the subcircuit
        // ops with shifted gate indices.
        let initial_map = sub_routed.initial_map().to_vec();
        let mut ops: Vec<RoutedOp> = (0..prefix_len).map(RoutedOp::Logical).collect();
        for cycle in 0..cycles {
            let offset = prefix_len + cycle * sub_len;
            for op in sub_routed.ops() {
                ops.push(match *op {
                    RoutedOp::Logical(k) => RoutedOp::Logical(k + offset),
                    RoutedOp::Swap(a, b) => RoutedOp::Swap(a, b),
                });
            }
        }
        (Ok(RoutedCircuit::new(initial_map, ops)), telemetry)
    }

    /// Solves `sub` with the final-map = initial-map constraint, slicing if
    /// configured and the subcircuit is large enough.
    fn solve_subcircuit(
        &self,
        sub: &Circuit,
        graph: &ConnectivityGraph,
        p: &Resolved,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
        proof: &mut Proof,
    ) -> Result<RoutedCircuit, RouteError> {
        let n = p.swaps_per_gap;
        let monolithic = match p.slice_size {
            Some(size) => sub.num_two_qubit_gates() <= size,
            None => true,
        };
        if monolithic {
            let encode_start = Instant::now();
            let mut enc = QmrEncoding::build(
                sub,
                graph,
                n,
                EncodeShape {
                    leading_slots: 0,
                    trailing_swaps: true,
                },
                &p.objective,
            );
            enc.require_cyclic();
            telemetry.encode_time += encode_start.elapsed();
            let options = p.options_for(crate::solver::instance_features(&enc));
            let out = maxsat::solve_with_options::<B>(enc.instance(), budget, &options);
            telemetry.absorb(&out.telemetry);
            proof.observe(&out);
            return match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (maps, swaps) = enc.decode(&model);
                    Ok(routed_from_solution(sub, &enc, &maps, &swaps, n, 0))
                }
                MaxSatStatus::Unsat => Err(RouteError::Unsatisfiable(format!(
                    "cyclic subcircuit unsolvable with n = {n}"
                ))),
                MaxSatStatus::Unknown => Err(RouteError::Timeout),
            };
        }
        // Composed with slicing: route the subcircuit normally, then close
        // the cycle by solving a final "restore" slice that must land on
        // the initial map (an empty slice whose exit is pinned).
        let inner = SatMap::<B>::with_backend(SatMapConfig {
            slice_size: p.slice_size,
            swaps_per_gap: p.swaps_per_gap,
            backtrack_limit: p.backtrack_limit,
            totalizer_units: p.options.totalizer_units,
        });
        let spec = RouteSpec {
            // The budget is already armed: the inner route inherits the
            // deadline and cannot extend it.
            budget: budget.clone(),
            objective: p.objective.clone(),
            parallelism: p.parallelism,
            ..RouteSpec::default()
        };
        let inner_request = RouteRequest::with_spec(sub, graph, spec);
        let inner_p = inner.config().resolve(&inner_request);
        let (inner_result, inner_telemetry) = inner.route_impl(&inner_request, &inner_p, proof);
        telemetry.absorb(&inner_telemetry);
        let routed = inner_result?;
        let initial = routed.initial_map().to_vec();
        let final_map = routed.final_map();
        if final_map == initial {
            return Ok(routed);
        }
        let restore = self.solve_restore(
            &final_map,
            &initial,
            graph,
            sub.num_qubits(),
            p,
            budget,
            telemetry,
            proof,
        )?;
        let mut ops = routed.ops().to_vec();
        ops.extend(restore);
        Ok(RoutedCircuit::new(initial, ops))
    }

    /// Finds a swap sequence transforming `from` into `to` (both
    /// logical→physical maps) using an empty pinned encoding with enough
    /// leading swap slots.
    #[allow(clippy::too_many_arguments)]
    fn solve_restore(
        &self,
        from: &[usize],
        to: &[usize],
        graph: &ConnectivityGraph,
        num_logical: usize,
        p: &Resolved,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
        proof: &mut Proof,
    ) -> Result<Vec<RoutedOp>, RouteError> {
        // Upper bound on swaps needed: routing each qubit home costs at
        // most diameter swaps.
        let max_slots = (graph.diameter() * num_logical).max(1);
        let empty = Circuit::new(num_logical);
        // Grow the slot count geometrically until satisfiable.
        let mut slots = num_logical.max(2);
        loop {
            if budget.expired() {
                return Err(RouteError::Timeout);
            }
            let encode_start = Instant::now();
            let mut enc = QmrEncoding::build(
                &empty,
                graph,
                1,
                EncodeShape {
                    leading_slots: slots,
                    trailing_swaps: false,
                },
                &p.objective,
            );
            enc.pin_initial_map(from);
            enc.pin_final_map(to);
            telemetry.encode_time += encode_start.elapsed();
            let options = p.options_for(crate::solver::instance_features(&enc));
            let out = maxsat::solve_with_options::<B>(enc.instance(), budget, &options);
            telemetry.absorb(&out.telemetry);
            proof.observe(&out);
            match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (_, swaps) = enc.decode(&model);
                    return Ok(swaps
                        .into_iter()
                        .flatten()
                        .map(|(a, b)| RoutedOp::Swap(a, b))
                        .collect());
                }
                MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                MaxSatStatus::Unsat if slots < max_slots => {
                    slots = (slots * 2).min(max_slots);
                }
                MaxSatStatus::Unsat => {
                    return Err(RouteError::Unsatisfiable(
                        "cannot restore cyclic map".into(),
                    ))
                }
            }
        }
    }
}

impl<B: SatBackend + Default + Send> Router for CyclicSatMap<B> {
    fn name(&self) -> &str {
        "cyc-satmap"
    }

    /// Routes the request, honoring a declared
    /// [`circuit::RepeatedStructure`]; without one the whole circuit is
    /// treated as a single repetition.
    fn route_request(&self, request: &RouteRequest<'_>) -> RouteOutcome {
        let p = self.config.resolve(request);
        let mut proof = Proof::new();
        let outcome =
            RouteOutcome::capture(self.name(), || self.route_impl(request, &p, &mut proof));
        let width = match outcome.telemetry().dispatch_width {
            0 => p.parallelism.resolve(),
            w => w as usize,
        };
        crate::solver::stamp_quality(outcome, &proof)
            .with_diagnostic("cycles", request.repetition().map_or(1, |r| r.cycles))
            .with_diagnostic("portfolio_width", width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;

    fn fig3() -> (Circuit, ConnectivityGraph) {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        (
            c,
            ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]),
        )
    }

    #[test]
    fn fig8_running_example_two_swaps_per_cycle() {
        let (sub, g) = fig3();
        let prefix = Circuit::new(4);
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        let (full, routed) = router.route_repeated(&prefix, &sub, 3, &g).expect("solves");
        verify(&full, &g, &routed).expect("verifies");
        // Fig. 8: two swaps per repetition (one to route, one to restore).
        assert_eq!(routed.swap_count(), 2 * 3);
        assert_eq!(routed.final_map(), routed.initial_map());
    }

    #[test]
    fn declared_repetition_on_request_matches_convenience_api() {
        let (sub, g) = fig3();
        let full = sub.repeated(2);
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        let outcome = router.route_request(&RouteRequest::new(&full, &g).with_repetition(
            RepeatedStructure {
                prefix_len: 0,
                cycles: 2,
            },
        ));
        assert_eq!(outcome.diagnostic("cycles"), Some("2"));
        let routed = outcome.routed().expect("solves");
        verify(&full, &g, routed).expect("verifies");
        assert_eq!(routed.final_map(), routed.initial_map());
        assert!(outcome.telemetry().sat_calls > 0);
    }

    #[test]
    fn qaoa_on_tokyo_verifies() {
        let edges = circuit::qaoa::three_regular_graph(6, 2);
        let sub = circuit::qaoa::qaoa_subcircuit(6, &edges, 0.4, 0.3);
        let mut prefix = Circuit::new(6);
        for q in 0..6 {
            prefix.h(q);
        }
        let g = arch::devices::tokyo();
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        let (full, routed) = router.route_repeated(&prefix, &sub, 2, &g).expect("solves");
        verify(&full, &g, &routed).expect("verifies");
    }

    #[test]
    fn rejects_two_qubit_prefix() {
        let (sub, g) = fig3();
        let mut prefix = Circuit::new(4);
        prefix.cx(0, 1);
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        assert!(matches!(
            router.route_repeated(&prefix, &sub, 2, &g),
            Err(RouteError::InvalidRequest(_))
        ));
    }

    #[test]
    fn sliced_cyclic_composition_verifies() {
        let edges = circuit::qaoa::three_regular_graph(6, 4);
        let sub = circuit::qaoa::qaoa_subcircuit(6, &edges, 0.4, 0.3);
        let prefix = Circuit::new(6);
        let g = arch::devices::tokyo();
        // Slice size smaller than the subcircuit forces composition.
        let router = CyclicSatMap::new(SatMapConfig::sliced(4));
        let (full, routed) = router.route_repeated(&prefix, &sub, 3, &g).expect("solves");
        verify(&full, &g, &routed).expect("verifies");
        assert_eq!(routed.final_map(), routed.initial_map());
    }

    #[test]
    fn degraded_quantized_route_explains_itself() {
        // A weighted (fidelity) objective with a coarse quantum can only
        // claim Feasible even when the search runs to completion, so the
        // outcome is rightly degraded — but the row must say *why*.
        let (sub, g) = fig3();
        let noise = arch::NoiseModel::synthetic(&g, 7);
        let router = CyclicSatMap::new(SatMapConfig::monolithic().with_totalizer_units(1));
        let outcome = router.route_request(
            &RouteRequest::new(&sub, &g).with_objective(circuit::Objective::Fidelity(noise)),
        );
        assert!(outcome.solved());
        assert_eq!(outcome.quality(), circuit::RouteQuality::Degraded);
        assert_eq!(outcome.diagnostic("degraded_reason"), Some("quantized"));
    }

    #[test]
    fn proven_route_carries_no_degraded_reason() {
        let (sub, g) = fig3();
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        let outcome = router.route_request(&RouteRequest::new(&sub, &g));
        assert!(outcome.solved());
        assert_eq!(outcome.quality(), circuit::RouteQuality::Optimal);
        assert_eq!(outcome.diagnostic("degraded_reason"), None);
    }

    #[test]
    fn telemetry_flows_through_cyclic_composition() {
        let (sub, g) = fig3();
        let full = sub.repeated(2);
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        let outcome = router.route_request(&RouteRequest::new(&full, &g).with_repetition(
            RepeatedStructure {
                prefix_len: 0,
                cycles: 2,
            },
        ));
        assert!(outcome.solved());
        assert!(outcome.telemetry().sat_calls > 0, "{}", outcome.telemetry());
    }
}

//! The cyclic-circuit relaxation (Section VI).
//!
//! For a circuit of the form `prefix ; C ; C ; … ; C` (e.g. QAOA, Fig. 7),
//! solve the MaxSAT constraints for the repeated subcircuit `C` *once*,
//! with the added hard constraint that the final map equals the initial map
//! (realized by a trailing swap layer, Fig. 8), then stitch copies of the
//! solution to cover every repetition.
//!
//! Composes with the local relaxation: large subcircuits are sliced, and
//! the *last* slice is additionally pinned to land on the first slice's
//! entry map.

use std::marker::PhantomData;
use std::time::Instant;

use arch::ConnectivityGraph;
use circuit::{check_fits, Circuit, RouteError, RoutedCircuit, RoutedOp, Router};
use maxsat::MaxSatStatus;
use sat::{DefaultBackend, ResourceBudget, SatBackend, SolverTelemetry};

use crate::config::SatMapConfig;
use crate::encode::{routed_from_solution, EncodeShape, QmrEncoding};
use crate::solver::SatMap;

/// CYC-SATMAP: the cyclic relaxation router for repeated circuits.
///
/// Routes the circuit `prefix ; subcircuit × cycles`. The prefix must
/// contain no two-qubit gates (QAOA's Hadamard layer).
///
/// # Examples
///
/// ```
/// use circuit::{qaoa, verify::verify};
/// use satmap::{CyclicSatMap, SatMapConfig};
///
/// let edges = qaoa::three_regular_graph(6, 1);
/// let sub = qaoa::qaoa_subcircuit(6, &edges, 0.4, 0.3);
/// let mut prefix = circuit::Circuit::new(6);
/// for q in 0..6 { prefix.h(q); }
/// let graph = arch::devices::tokyo();
/// let router = CyclicSatMap::new(SatMapConfig::default());
/// let (full, routed) = router.route_repeated(&prefix, &sub, 2, &graph)?;
/// verify(&full, &graph, &routed).expect("verifies");
/// # Ok::<(), circuit::RouteError>(())
/// ```
#[derive(Debug)]
pub struct CyclicSatMap<B: SatBackend + Default = DefaultBackend> {
    config: SatMapConfig,
    _backend: PhantomData<fn() -> B>,
}

impl<B: SatBackend + Default> Clone for CyclicSatMap<B> {
    fn clone(&self) -> Self {
        CyclicSatMap {
            config: self.config.clone(),
            _backend: PhantomData,
        }
    }
}

impl CyclicSatMap {
    /// Creates a cyclic router with the given configuration and the
    /// default SAT backend.
    pub fn new(config: SatMapConfig) -> Self {
        Self::with_backend(config)
    }
}

impl<B: SatBackend + Default> CyclicSatMap<B> {
    /// Creates a cyclic router with an explicit SAT backend type.
    pub fn with_backend(config: SatMapConfig) -> Self {
        CyclicSatMap {
            config,
            _backend: PhantomData,
        }
    }

    /// Routes `prefix ; sub × cycles` on `graph`, returning the assembled
    /// full circuit together with its routed solution.
    ///
    /// # Errors
    ///
    /// [`RouteError::Unsatisfiable`] if the prefix contains two-qubit gates
    /// or the subproblem has no solution; [`RouteError::Timeout`] on budget
    /// expiry.
    pub fn route_repeated(
        &self,
        prefix: &Circuit,
        sub: &Circuit,
        cycles: usize,
        graph: &ConnectivityGraph,
    ) -> Result<(Circuit, RoutedCircuit), RouteError> {
        self.route_repeated_with_telemetry(prefix, sub, cycles, graph)
            .0
    }

    /// [`CyclicSatMap::route_repeated`] plus the solver effort spent — the
    /// telemetry is reported even when routing fails, so timed-out
    /// attempts still account for their work.
    pub fn route_repeated_with_telemetry(
        &self,
        prefix: &Circuit,
        sub: &Circuit,
        cycles: usize,
        graph: &ConnectivityGraph,
    ) -> (
        Result<(Circuit, RoutedCircuit), RouteError>,
        SolverTelemetry,
    ) {
        let mut telemetry = SolverTelemetry::new();
        if prefix.num_two_qubit_gates() > 0 {
            return (
                Err(RouteError::Unsatisfiable(
                    "cyclic prefix must not contain two-qubit gates".into(),
                )),
                telemetry,
            );
        }
        if prefix.num_qubits() != sub.num_qubits() {
            return (
                Err(RouteError::Unsatisfiable(
                    "prefix and subcircuit qubit counts differ".into(),
                )),
                telemetry,
            );
        }
        if let Err(e) = check_fits(sub, graph) {
            return (Err(e), telemetry);
        }
        let budget = self.config.budget.arm();

        // Assemble the full circuit (what the caller actually wants run).
        let mut full = Circuit::named(&format!("{}x{}", sub.name(), cycles), sub.num_qubits());
        full.extend_from(prefix);
        for _ in 0..cycles {
            full.extend_from(sub);
        }

        // Solve the subcircuit once, cyclically.
        let sub_routed = match self.solve_subcircuit(sub, graph, &budget, &mut telemetry) {
            Ok(r) => r,
            Err(e) => return (Err(e), telemetry),
        };
        debug_assert_eq!(sub_routed.final_map(), sub_routed.initial_map());

        // Stitch: prefix 1q gates, then `cycles` copies of the subcircuit
        // ops with shifted gate indices.
        let initial_map = sub_routed.initial_map().to_vec();
        let mut ops: Vec<RoutedOp> = (0..prefix.len()).map(RoutedOp::Logical).collect();
        for cycle in 0..cycles {
            let offset = prefix.len() + cycle * sub.len();
            for op in sub_routed.ops() {
                ops.push(match *op {
                    RoutedOp::Logical(k) => RoutedOp::Logical(k + offset),
                    RoutedOp::Swap(a, b) => RoutedOp::Swap(a, b),
                });
            }
        }
        (Ok((full, RoutedCircuit::new(initial_map, ops))), telemetry)
    }

    /// Solves `sub` with the final-map = initial-map constraint, slicing if
    /// configured and the subcircuit is large enough.
    fn solve_subcircuit(
        &self,
        sub: &Circuit,
        graph: &ConnectivityGraph,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
    ) -> Result<RoutedCircuit, RouteError> {
        let n = self.config.swaps_per_gap;
        let monolithic = match self.config.slice_size {
            Some(size) => sub.num_two_qubit_gates() <= size,
            None => true,
        };
        if monolithic {
            let encode_start = Instant::now();
            let mut enc = QmrEncoding::build(
                sub,
                graph,
                n,
                EncodeShape {
                    leading_slots: 0,
                    trailing_swaps: true,
                },
                &self.config.objective,
            );
            enc.require_cyclic();
            telemetry.encode_time += encode_start.elapsed();
            let out = maxsat::solve_with_options::<B>(
                enc.instance(),
                budget,
                &self.config.solve_options(),
            );
            telemetry.absorb(&out.telemetry);
            return match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (maps, swaps) = enc.decode(&model);
                    Ok(routed_from_solution(sub, &enc, &maps, &swaps, n, 0))
                }
                MaxSatStatus::Unsat => Err(RouteError::Unsatisfiable(format!(
                    "cyclic subcircuit unsolvable with n = {n}"
                ))),
                MaxSatStatus::Unknown => Err(RouteError::Timeout),
            };
        }
        // Composed with slicing: route the subcircuit normally, then close
        // the cycle by solving a final "restore" slice that must land on
        // the initial map (an empty slice whose exit is pinned).
        let inner = SatMap::<B>::with_backend(self.config.clone());
        let (inner_result, inner_telemetry) = inner.route_with_telemetry(sub, graph);
        telemetry.absorb(&inner_telemetry);
        let routed = inner_result?;
        let initial = routed.initial_map().to_vec();
        let final_map = routed.final_map();
        if final_map == initial {
            return Ok(routed);
        }
        let restore = self.solve_restore(
            &final_map,
            &initial,
            graph,
            sub.num_qubits(),
            budget,
            telemetry,
        )?;
        let mut ops = routed.ops().to_vec();
        ops.extend(restore);
        Ok(RoutedCircuit::new(initial, ops))
    }

    /// Finds a swap sequence transforming `from` into `to` (both
    /// logical→physical maps) using an empty pinned encoding with enough
    /// leading swap slots.
    fn solve_restore(
        &self,
        from: &[usize],
        to: &[usize],
        graph: &ConnectivityGraph,
        num_logical: usize,
        budget: &ResourceBudget,
        telemetry: &mut SolverTelemetry,
    ) -> Result<Vec<RoutedOp>, RouteError> {
        // Upper bound on swaps needed: routing each qubit home costs at
        // most diameter swaps.
        let max_slots = (graph.diameter() * num_logical).max(1);
        let empty = Circuit::new(num_logical);
        // Grow the slot count geometrically until satisfiable.
        let mut slots = num_logical.max(2);
        loop {
            if budget.expired() {
                return Err(RouteError::Timeout);
            }
            let encode_start = Instant::now();
            let mut enc = QmrEncoding::build(
                &empty,
                graph,
                1,
                EncodeShape {
                    leading_slots: slots,
                    trailing_swaps: false,
                },
                &self.config.objective,
            );
            enc.pin_initial_map(from);
            enc.pin_final_map(to);
            telemetry.encode_time += encode_start.elapsed();
            let out = maxsat::solve_with_options::<B>(
                enc.instance(),
                budget,
                &self.config.solve_options(),
            );
            telemetry.absorb(&out.telemetry);
            match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (_, swaps) = enc.decode(&model);
                    return Ok(swaps
                        .into_iter()
                        .flatten()
                        .map(|(a, b)| RoutedOp::Swap(a, b))
                        .collect());
                }
                MaxSatStatus::Unknown => return Err(RouteError::Timeout),
                MaxSatStatus::Unsat if slots < max_slots => {
                    slots = (slots * 2).min(max_slots);
                }
                MaxSatStatus::Unsat => {
                    return Err(RouteError::Unsatisfiable(
                        "cannot restore cyclic map".into(),
                    ))
                }
            }
        }
    }
}

impl<B: SatBackend + Default> Router for CyclicSatMap<B> {
    fn name(&self) -> &str {
        "cyc-satmap"
    }

    /// Routes a circuit that is already `sub × cycles` *without* a prefix,
    /// by treating the whole input as one repetition (callers with known
    /// cyclic structure should prefer [`CyclicSatMap::route_repeated`]).
    fn route(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
    ) -> Result<RoutedCircuit, RouteError> {
        let prefix = Circuit::new(circuit.num_qubits());
        let (_, routed) = self.route_repeated(&prefix, circuit, 1, graph)?;
        Ok(routed)
    }

    fn route_with_telemetry(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
    ) -> (Result<RoutedCircuit, RouteError>, SolverTelemetry) {
        let prefix = Circuit::new(circuit.num_qubits());
        let (result, telemetry) = self.route_repeated_with_telemetry(&prefix, circuit, 1, graph);
        (result.map(|(_, routed)| routed), telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;

    fn fig3() -> (Circuit, ConnectivityGraph) {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        (
            c,
            ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]),
        )
    }

    #[test]
    fn fig8_running_example_two_swaps_per_cycle() {
        let (sub, g) = fig3();
        let prefix = Circuit::new(4);
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        let (full, routed) = router.route_repeated(&prefix, &sub, 3, &g).expect("solves");
        verify(&full, &g, &routed).expect("verifies");
        // Fig. 8: two swaps per repetition (one to route, one to restore).
        assert_eq!(routed.swap_count(), 2 * 3);
        assert_eq!(routed.final_map(), routed.initial_map());
    }

    #[test]
    fn qaoa_on_tokyo_verifies() {
        let edges = circuit::qaoa::three_regular_graph(6, 2);
        let sub = circuit::qaoa::qaoa_subcircuit(6, &edges, 0.4, 0.3);
        let mut prefix = Circuit::new(6);
        for q in 0..6 {
            prefix.h(q);
        }
        let g = arch::devices::tokyo();
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        let (full, routed) = router.route_repeated(&prefix, &sub, 2, &g).expect("solves");
        verify(&full, &g, &routed).expect("verifies");
    }

    #[test]
    fn rejects_two_qubit_prefix() {
        let (sub, g) = fig3();
        let mut prefix = Circuit::new(4);
        prefix.cx(0, 1);
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        assert!(matches!(
            router.route_repeated(&prefix, &sub, 2, &g),
            Err(RouteError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn sliced_cyclic_composition_verifies() {
        let edges = circuit::qaoa::three_regular_graph(6, 4);
        let sub = circuit::qaoa::qaoa_subcircuit(6, &edges, 0.4, 0.3);
        let prefix = Circuit::new(6);
        let g = arch::devices::tokyo();
        // Slice size smaller than the subcircuit forces composition.
        let router = CyclicSatMap::new(SatMapConfig::sliced(4));
        let (full, routed) = router.route_repeated(&prefix, &sub, 3, &g).expect("solves");
        verify(&full, &g, &routed).expect("verifies");
        assert_eq!(routed.final_map(), routed.initial_map());
    }

    #[test]
    fn telemetry_flows_through_cyclic_composition() {
        let (sub, g) = fig3();
        let prefix = Circuit::new(4);
        let router = CyclicSatMap::new(SatMapConfig::monolithic());
        let (result, telemetry) = router.route_repeated_with_telemetry(&prefix, &sub, 2, &g);
        result.expect("solves");
        assert!(telemetry.sat_calls > 0, "{telemetry}");
    }
}

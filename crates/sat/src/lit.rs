//! Variables and literals.
//!
//! A [`Var`] is an index into the solver's variable table. A [`Lit`] is a
//! signed occurrence of a variable, packed into a single `u32` using the
//! MiniSat convention: `code = 2 * var + sign`, where `sign == 1` means the
//! literal is negated.

use std::fmt;

/// A propositional variable, identified by a dense index starting at 0.
///
/// # Examples
///
/// ```
/// use sat::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index < (u32::MAX / 2) as usize, "variable index overflow");
        Var(index as u32)
    }

    /// Returns the dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Stored as `2 * var + sign` where `sign == 1` encodes negation, so that a
/// literal and its complement differ only in the lowest bit.
///
/// # Examples
///
/// ```
/// use sat::{Lit, Var};
/// let v = Var::new(0);
/// let a = v.positive();
/// assert_eq!(!a, v.negative());
/// assert_eq!(a.var(), v);
/// assert!(a.is_positive());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var`; `positive == false` yields the negation.
    #[inline]
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// Reconstructs a literal from its packed code (see type docs).
    #[inline]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Returns the packed code of this literal.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// Returns the underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is the positive (unnegated) literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `true` if this is the negated literal.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Parses a literal from DIMACS convention: nonzero integer, negative
    /// numbers denote negated variables, `1` is variable 0.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i64) -> Self {
        assert!(dimacs != 0, "DIMACS literal must be nonzero");
        let var = Var::new(dimacs.unsigned_abs() as usize - 1);
        Lit::new(var, dimacs > 0)
    }

    /// Converts this literal to the DIMACS integer convention.
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().index() as i64 + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬")?;
        }
        write!(f, "{:?}", self.var())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// Ternary truth value used for partial assignments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a `bool` into the corresponding defined value.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Returns the truth value of a literal whose variable has this value.
    ///
    /// Flips `True`/`False` for negative literals; `Undef` is preserved.
    #[inline]
    pub fn under_sign(self, positive: bool) -> Self {
        match (self, positive) {
            (LBool::Undef, _) => LBool::Undef,
            (v, true) => v,
            (LBool::True, false) => LBool::False,
            (LBool::False, false) => LBool::True,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_negation_flips_low_bit() {
        let v = Var::new(7);
        let pos = v.positive();
        let neg = v.negative();
        assert_ne!(pos, neg);
        assert_eq!(!pos, neg);
        assert_eq!(!neg, pos);
        assert_eq!(pos.var(), neg.var());
    }

    #[test]
    fn dimacs_round_trip() {
        for d in [-5i64, -1, 1, 2, 42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_under_sign() {
        assert_eq!(LBool::True.under_sign(false), LBool::False);
        assert_eq!(LBool::False.under_sign(false), LBool::True);
        assert_eq!(LBool::Undef.under_sign(false), LBool::Undef);
        assert_eq!(LBool::True.under_sign(true), LBool::True);
    }

    #[test]
    fn code_round_trip() {
        let l = Lit::new(Var::new(9), false);
        assert_eq!(Lit::from_code(l.code()), l);
        assert!(l.is_negative());
    }
}

//! The shared resource budget threaded through every solver layer.
//!
//! Historically each layer of the stack had its own budget plumbing (the
//! SAT solver took per-call duration caps, the MaxSAT engine a total
//! duration plus a conflict cap, the routers an `Option<Duration>`), and a
//! child call could silently overshoot its parent's allowance because every
//! layer restarted the clock. [`ResourceBudget`] replaces all of them with
//! one *deadline-based* type: arming a budget converts its relative time
//! limit into an absolute deadline, and children inherit the deadline, so a
//! nested SAT call can never outlive the routing request that spawned it.
//!
//! Budgets also carry an optional [`CancelToken`], a thread-safe kill
//! switch checked alongside the deadline in [`ResourceBudget::expired`].
//! Tokens form a parent/child chain mirroring budget inheritance:
//! cancelling a parent token stops every descendant, so a portfolio race or
//! an experiment sweep can tear down all of its in-flight solver work from
//! another thread.
//!
//! # Examples
//!
//! ```
//! use sat::ResourceBudget;
//! use std::time::Duration;
//!
//! let parent = ResourceBudget::with_time(Duration::from_millis(50)).arm();
//! // A child may ask for more time, but arming clamps to the parent's
//! // deadline.
//! let child = parent.limit_time(Duration::from_secs(60)).arm();
//! assert_eq!(child.deadline(), parent.deadline());
//!
//! // Cooperative cancellation from another thread:
//! let (budget, token) = ResourceBudget::unlimited().cancellable();
//! assert!(!budget.expired());
//! token.cancel();
//! assert!(budget.expired());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One step of the splitmix64 generator: advances `state` and returns the
/// next 64-bit draw. Small, seedable, and dependency-free — shared by the
/// retry-backoff jitter here and the fault-injection plan in
/// [`crate::chaos`].
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the next splitmix64 output.
pub(crate) fn unit_draw(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A thread-safe cooperative cancellation flag.
///
/// Cloning shares the same flag; [`CancelToken::child`] creates a *linked*
/// token that is considered cancelled whenever any ancestor is, mirroring
/// the budget-inheritance chain (a child solver killed by its parent's
/// token can never outlive the parent's allowance).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no parent.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token cancelled whenever `self` (or any ancestor of `self`) is,
    /// and additionally cancellable on its own without affecting `self`.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Raises the flag: every budget carrying this token (or a descendant
    /// of it) reports [`ResourceBudget::expired`] from now on.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True if this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        let mut cur = Some(self);
        while let Some(t) = cur {
            if t.inner.cancelled.load(Ordering::Acquire) {
                return true;
            }
            cur = t.inner.parent.as_ref();
        }
        false
    }
}

/// A wall-clock and conflict allowance for solver work.
///
/// Two states:
///
/// * **unarmed** — carries a relative `time_limit` (what configuration
///   files and builders produce; reusable across repeated calls);
/// * **armed** — [`ResourceBudget::arm`] has converted the limit into an
///   absolute `deadline`, clamped to any deadline already inherited from a
///   parent. Arming an already armed budget never extends the deadline.
///
/// The conflict cap applies to each individual SAT call (it protects the
/// anytime MaxSAT loop from one call consuming the entire allowance) and is
/// inherited unchanged by children, as is the cancellation token.
#[derive(Clone, Debug, Default)]
pub struct ResourceBudget {
    /// Relative allowance, consumed by [`ResourceBudget::arm`].
    time_limit: Option<Duration>,
    /// Absolute point after which work must stop.
    deadline: Option<Instant>,
    /// Conflict cap per individual SAT call.
    conflicts_per_call: Option<u64>,
    /// Cooperative kill switch, checked alongside the deadline.
    cancel: Option<CancelToken>,
}

impl ResourceBudget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget allowing `d` of wall-clock time once armed.
    pub fn with_time(d: Duration) -> Self {
        ResourceBudget {
            time_limit: Some(d),
            ..Self::default()
        }
    }

    /// Returns a copy with a per-SAT-call conflict cap.
    pub fn conflicts_per_call(&self, n: u64) -> Self {
        let mut b = self.clone();
        b.conflicts_per_call = Some(n);
        b
    }

    /// Returns a copy whose relative time limit is `d` (the inherited
    /// deadline, if any, still applies — a child can only tighten).
    pub fn limit_time(&self, d: Duration) -> Self {
        let mut b = self.clone();
        b.time_limit = Some(match b.time_limit {
            Some(existing) => existing.min(d),
            None => d,
        });
        b
    }

    /// Returns a copy observing `token`: once the token (or any ancestor
    /// of it) is cancelled, the budget reports [`ResourceBudget::expired`].
    /// Replaces any token previously attached.
    pub fn with_cancel(&self, token: CancelToken) -> Self {
        let mut b = self.clone();
        b.cancel = Some(token);
        b
    }

    /// Returns a copy of the budget together with a token that cancels it.
    ///
    /// If the budget already carries a token, the new token is created as a
    /// *child* of it, so cancellation from the original (parent) token
    /// still propagates — a worker armed through `cancellable` can never
    /// outlive the budget it descended from.
    pub fn cancellable(&self) -> (Self, CancelToken) {
        let token = match &self.cancel {
            Some(parent) => parent.child(),
            None => CancelToken::new(),
        };
        let mut budget = self.clone();
        budget.cancel = Some(token.clone());
        (budget, token)
    }

    /// The cancellation token attached to this budget, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Starts the clock: converts the relative time limit into an absolute
    /// deadline, clamped to any inherited deadline. Idempotent on armed
    /// budgets; unlimited budgets stay unlimited.
    #[must_use = "arming returns the budget that enforces the deadline"]
    pub fn arm(&self) -> Self {
        let mut armed = self.clone();
        if let Some(limit) = armed.time_limit.take() {
            let from_limit = Instant::now() + limit;
            armed.deadline = Some(match armed.deadline {
                Some(existing) => existing.min(from_limit),
                None => from_limit,
            });
        }
        armed
    }

    /// The absolute deadline, if armed with a time limit.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The per-SAT-call conflict cap, if any.
    pub fn conflict_cap(&self) -> Option<u64> {
        self.conflicts_per_call
    }

    /// True if any limit (time or conflicts) is configured. A cancellation
    /// token alone does not count: an uncancelled token imposes no limit.
    pub fn is_limited(&self) -> bool {
        self.time_limit.is_some() || self.deadline.is_some() || self.conflicts_per_call.is_some()
    }

    /// Time left until the deadline (`None` = no time limit). An unarmed
    /// time limit counts in full.
    pub fn remaining_time(&self) -> Option<Duration> {
        match (self.deadline, self.time_limit) {
            (Some(d), _) => Some(d.saturating_duration_since(Instant::now())),
            (None, Some(l)) => Some(l),
            (None, None) => None,
        }
    }

    /// The pause before retry number `attempt` (1-based) of a failed
    /// request: exponential in the attempt with a deterministic seeded
    /// jitter, capped at `cap`.
    ///
    /// The nominal delay is `base * 2^(attempt-1)`; each attempt's value is
    /// then scaled by a jitter factor in `[0.75, 1.25)` drawn from
    /// `(seed, attempt)`, so concurrent retry ladders with different seeds
    /// de-synchronize while any single ladder stays reproducible. Because
    /// the doubling outpaces the jitter band (`2 * 0.75 > 1.25`), the
    /// sequence is monotone nondecreasing in `attempt` until it plateaus at
    /// `cap`. Attempt 0 (the initial try) waits nothing.
    ///
    /// Shared by the routing supervisor's escalation ladder and any future
    /// server-side retry queue, so all layers pace retries identically.
    pub fn backoff_for(attempt: u32, base: Duration, cap: Duration, seed: u64) -> Duration {
        if attempt == 0 || base.is_zero() {
            return Duration::ZERO;
        }
        let exp = i32::try_from(attempt - 1).unwrap_or(i32::MAX).min(62);
        let mut state = seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let jitter = 0.75 + 0.5 * unit_draw(&mut state);
        let nominal = base.as_secs_f64() * 2f64.powi(exp) * jitter;
        let capped = nominal.min(cap.as_secs_f64());
        Duration::from_secs_f64(capped.max(0.0))
    }

    /// True once the armed deadline has passed or the attached cancellation
    /// token (or any of its ancestors) has been cancelled.
    pub fn expired(&self) -> bool {
        if matches!(&self.cancel, Some(t) if t.is_cancelled()) {
            return true;
        }
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }
}

impl From<Duration> for ResourceBudget {
    /// A plain duration is the most common budget: wall-clock only.
    fn from(d: Duration) -> Self {
        ResourceBudget::with_time(d)
    }
}

/// A keyed registry of live [`CancelToken`]s — the server-side abort
/// surface.
///
/// A serving layer registers each in-flight request's token under its
/// request id; an `abort <id>` verb (or an operator) cancels by id from
/// any thread, and completion removes the entry. The registry is
/// poison-tolerant: a panicking worker thread cannot wedge the abort path
/// for every other request.
///
/// # Examples
///
/// ```
/// use sat::{CancelRegistry, ResourceBudget};
///
/// let registry = CancelRegistry::new();
/// let (budget, token) = ResourceBudget::unlimited().cancellable();
/// registry.insert(7, token);
/// assert!(registry.cancel(7));
/// assert!(budget.expired());
/// assert!(!registry.cancel(7), "cancelled entries are consumed");
/// ```
#[derive(Debug, Default)]
pub struct CancelRegistry {
    inner: std::sync::Mutex<std::collections::HashMap<u64, CancelToken>>,
}

impl CancelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, std::collections::HashMap<u64, CancelToken>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers `token` as the abort handle for request `id`, replacing
    /// any previous handle under that id.
    pub fn insert(&self, id: u64, token: CancelToken) {
        self.lock().insert(id, token);
    }

    /// Cancels (and removes) the handle registered under `id`. Returns
    /// `false` when no live handle exists — the request already completed,
    /// was never registered, or was aborted before.
    pub fn cancel(&self, id: u64) -> bool {
        match self.lock().remove(&id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Removes the handle for a completed request without cancelling it.
    /// Returns `true` if a handle was present.
    pub fn complete(&self, id: u64) -> bool {
        self.lock().remove(&id).is_some()
    }

    /// Cancels every live handle (drain/shutdown path); returns how many
    /// were cancelled.
    pub fn cancel_all(&self) -> usize {
        let handles: Vec<CancelToken> = self.lock().drain().map(|(_, t)| t).collect();
        for t in &handles {
            t.cancel();
        }
        handles.len()
    }

    /// Number of live handles (in-flight or queued requests).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no handles are live.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = ResourceBudget::unlimited().arm();
        assert!(!b.expired());
        assert!(!b.is_limited());
        assert_eq!(b.remaining_time(), None);
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let b = ResourceBudget::with_time(Duration::ZERO).arm();
        assert!(b.expired());
    }

    #[test]
    fn child_cannot_extend_parent_deadline() {
        let parent = ResourceBudget::with_time(Duration::from_millis(10)).arm();
        let child = parent.limit_time(Duration::from_secs(3600)).arm();
        assert_eq!(child.deadline(), parent.deadline());
        // And a child may tighten.
        let tight = parent.limit_time(Duration::ZERO).arm();
        assert!(tight.deadline() <= parent.deadline());
        assert!(tight.expired());
    }

    #[test]
    fn arm_is_idempotent() {
        let b = ResourceBudget::with_time(Duration::from_secs(5)).arm();
        let again = b.arm();
        assert_eq!(again.deadline(), b.deadline());
    }

    #[test]
    fn conflict_cap_is_inherited() {
        let b = ResourceBudget::unlimited().conflicts_per_call(7);
        assert_eq!(b.conflict_cap(), Some(7));
        assert_eq!(b.arm().conflict_cap(), Some(7));
        assert!(b.is_limited());
    }

    #[test]
    fn from_duration_is_time_budget() {
        let b: ResourceBudget = Duration::from_millis(500).into();
        assert_eq!(b.remaining_time(), Some(Duration::from_millis(500)));
        assert!(!b.expired(), "unarmed budget has no deadline yet");
    }

    #[test]
    fn cancel_expires_budget() {
        let (b, token) = ResourceBudget::unlimited().cancellable();
        assert!(!b.expired());
        assert!(!b.is_limited(), "a token alone is not a limit");
        token.cancel();
        assert!(b.expired());
        // Budgets derived from the cancelled one inherit the token.
        assert!(b.limit_time(Duration::from_secs(1)).arm().expired());
    }

    #[test]
    fn parent_cancel_propagates_to_children() {
        let (parent, parent_token) = ResourceBudget::unlimited().cancellable();
        let (child, child_token) = parent.cancellable();
        // Child cancellation does not touch the parent.
        child_token.cancel();
        assert!(child.expired());
        assert!(!parent.expired());
        // Parent cancellation reaches grandchildren.
        let (grandchild, _gc_token) = child.cancellable();
        parent_token.cancel();
        assert!(parent.expired());
        assert!(grandchild.expired());
    }

    #[test]
    fn cancel_crosses_threads() {
        let (b, token) = ResourceBudget::unlimited().cancellable();
        let handle = std::thread::spawn(move || token.cancel());
        handle.join().expect("cancel thread");
        assert!(b.expired());
    }

    #[test]
    fn backoff_is_monotone_and_deterministic() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(10);
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let mut prev = Duration::ZERO;
            for attempt in 1..=16 {
                let d = ResourceBudget::backoff_for(attempt, base, cap, seed);
                assert!(
                    d >= prev,
                    "seed {seed} attempt {attempt}: {d:?} < {prev:?} breaks monotonicity"
                );
                assert_eq!(
                    d,
                    ResourceBudget::backoff_for(attempt, base, cap, seed),
                    "same (seed, attempt) must reproduce the same delay"
                );
                prev = d;
            }
        }
        // Jitter stays within the +-25% band around the nominal doubling.
        let d1 = ResourceBudget::backoff_for(1, base, cap, 7);
        assert!(d1 >= Duration::from_micros(7_500) && d1 < Duration::from_micros(12_500));
    }

    #[test]
    fn backoff_plateaus_at_cap_and_skips_attempt_zero() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_millis(350);
        assert_eq!(
            ResourceBudget::backoff_for(0, base, cap, 3),
            Duration::ZERO,
            "the initial attempt waits nothing"
        );
        for attempt in 4..=40 {
            assert_eq!(
                ResourceBudget::backoff_for(attempt, base, cap, 3),
                cap,
                "attempt {attempt} must sit on the cap"
            );
        }
        // A zero base disables backoff entirely.
        assert_eq!(
            ResourceBudget::backoff_for(9, Duration::ZERO, cap, 3),
            Duration::ZERO
        );
    }

    #[test]
    fn cancel_registry_aborts_by_id_and_forgets_completed() {
        let registry = CancelRegistry::new();
        let (a, token_a) = ResourceBudget::unlimited().cancellable();
        let (b, token_b) = ResourceBudget::unlimited().cancellable();
        registry.insert(1, token_a);
        registry.insert(2, token_b);
        assert_eq!(registry.len(), 2);
        // Abort by id: only the targeted budget expires.
        assert!(registry.cancel(1));
        assert!(a.expired());
        assert!(!b.expired());
        // Completion removes without cancelling.
        assert!(registry.complete(2));
        assert!(!b.expired());
        assert!(registry.is_empty());
        assert!(!registry.cancel(2), "completed entries are gone");
        // cancel_all sweeps whatever is left.
        let (c, token_c) = ResourceBudget::unlimited().cancellable();
        registry.insert(3, token_c);
        assert_eq!(registry.cancel_all(), 1);
        assert!(c.expired());
    }

    #[test]
    fn arm_preserves_token() {
        let (b, token) = ResourceBudget::with_time(Duration::from_secs(60)).cancellable();
        let armed = b.arm();
        assert!(!armed.expired());
        token.cancel();
        assert!(armed.expired());
        assert!(armed.cancel_token().expect("token kept").is_cancelled());
    }
}

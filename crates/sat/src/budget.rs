//! The shared resource budget threaded through every solver layer.
//!
//! Historically each layer of the stack had its own budget plumbing (the
//! SAT solver took per-call duration caps, the MaxSAT engine a total
//! duration plus a conflict cap, the routers an `Option<Duration>`), and a
//! child call could silently overshoot its parent's allowance because every
//! layer restarted the clock. [`ResourceBudget`] replaces all of them with
//! one *deadline-based* type: arming a budget converts its relative time
//! limit into an absolute deadline, and children inherit the deadline, so a
//! nested SAT call can never outlive the routing request that spawned it.
//!
//! # Examples
//!
//! ```
//! use sat::ResourceBudget;
//! use std::time::Duration;
//!
//! let parent = ResourceBudget::with_time(Duration::from_millis(50)).arm();
//! // A child may ask for more time, but arming clamps to the parent's
//! // deadline.
//! let child = parent.limit_time(Duration::from_secs(60)).arm();
//! assert_eq!(child.deadline(), parent.deadline());
//! ```

use std::time::{Duration, Instant};

/// A wall-clock and conflict allowance for solver work.
///
/// Two states:
///
/// * **unarmed** — carries a relative `time_limit` (what configuration
///   files and builders produce; reusable across repeated calls);
/// * **armed** — [`ResourceBudget::arm`] has converted the limit into an
///   absolute `deadline`, clamped to any deadline already inherited from a
///   parent. Arming an already armed budget never extends the deadline.
///
/// The conflict cap applies to each individual SAT call (it protects the
/// anytime MaxSAT loop from one call consuming the entire allowance) and is
/// inherited unchanged by children.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Relative allowance, consumed by [`ResourceBudget::arm`].
    time_limit: Option<Duration>,
    /// Absolute point after which work must stop.
    deadline: Option<Instant>,
    /// Conflict cap per individual SAT call.
    conflicts_per_call: Option<u64>,
}

impl ResourceBudget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget allowing `d` of wall-clock time once armed.
    pub fn with_time(d: Duration) -> Self {
        ResourceBudget {
            time_limit: Some(d),
            ..Self::default()
        }
    }

    /// Returns a copy with a per-SAT-call conflict cap.
    pub fn conflicts_per_call(mut self, n: u64) -> Self {
        self.conflicts_per_call = Some(n);
        self
    }

    /// Returns a copy whose relative time limit is `d` (the inherited
    /// deadline, if any, still applies — a child can only tighten).
    pub fn limit_time(mut self, d: Duration) -> Self {
        self.time_limit = Some(match self.time_limit {
            Some(existing) => existing.min(d),
            None => d,
        });
        self
    }

    /// Starts the clock: converts the relative time limit into an absolute
    /// deadline, clamped to any inherited deadline. Idempotent on armed
    /// budgets; unlimited budgets stay unlimited.
    #[must_use = "arming returns the budget that enforces the deadline"]
    pub fn arm(&self) -> Self {
        let mut armed = *self;
        if let Some(limit) = armed.time_limit.take() {
            let from_limit = Instant::now() + limit;
            armed.deadline = Some(match armed.deadline {
                Some(existing) => existing.min(from_limit),
                None => from_limit,
            });
        }
        armed
    }

    /// The absolute deadline, if armed with a time limit.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The per-SAT-call conflict cap, if any.
    pub fn conflict_cap(&self) -> Option<u64> {
        self.conflicts_per_call
    }

    /// True if any limit (time or conflicts) is configured.
    pub fn is_limited(&self) -> bool {
        self.time_limit.is_some() || self.deadline.is_some() || self.conflicts_per_call.is_some()
    }

    /// Time left until the deadline (`None` = no time limit). An unarmed
    /// time limit counts in full.
    pub fn remaining_time(&self) -> Option<Duration> {
        match (self.deadline, self.time_limit) {
            (Some(d), _) => Some(d.saturating_duration_since(Instant::now())),
            (None, Some(l)) => Some(l),
            (None, None) => None,
        }
    }

    /// True once the armed deadline has passed.
    pub fn expired(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }
}

impl From<Duration> for ResourceBudget {
    /// A plain duration is the most common budget: wall-clock only.
    fn from(d: Duration) -> Self {
        ResourceBudget::with_time(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = ResourceBudget::unlimited().arm();
        assert!(!b.expired());
        assert!(!b.is_limited());
        assert_eq!(b.remaining_time(), None);
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let b = ResourceBudget::with_time(Duration::ZERO).arm();
        assert!(b.expired());
    }

    #[test]
    fn child_cannot_extend_parent_deadline() {
        let parent = ResourceBudget::with_time(Duration::from_millis(10)).arm();
        let child = parent.limit_time(Duration::from_secs(3600)).arm();
        assert_eq!(child.deadline(), parent.deadline());
        // And a child may tighten.
        let tight = parent.limit_time(Duration::ZERO).arm();
        assert!(tight.deadline() <= parent.deadline());
        assert!(tight.expired());
    }

    #[test]
    fn arm_is_idempotent() {
        let b = ResourceBudget::with_time(Duration::from_secs(5)).arm();
        let again = b.arm();
        assert_eq!(again.deadline(), b.deadline());
    }

    #[test]
    fn conflict_cap_is_inherited() {
        let b = ResourceBudget::unlimited().conflicts_per_call(7);
        assert_eq!(b.conflict_cap(), Some(7));
        assert_eq!(b.arm().conflict_cap(), Some(7));
        assert!(b.is_limited());
    }

    #[test]
    fn from_duration_is_time_budget() {
        let b: ResourceBudget = Duration::from_millis(500).into();
        assert_eq!(b.remaining_time(), Some(Duration::from_millis(500)));
        assert!(!b.expired(), "unarmed budget has no deadline yet");
    }
}

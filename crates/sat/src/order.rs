//! VSIDS decision order: an indexed max-heap over variable activities.

use crate::lit::Var;

/// Indexed binary max-heap keyed by per-variable activity.
///
/// Supports `O(log n)` insert/remove-max and re-prioritization of a variable
/// already in the heap, which the VSIDS scheme requires on every activity
/// bump.
#[derive(Clone, Debug, Default)]
pub(crate) struct VarOrder {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarOrder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn grow_to(&mut self, num_vars: usize) {
        if self.position.len() < num_vars {
            self.position.resize(num_vars, ABSENT);
        }
    }

    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.position[v.index()] != ABSENT
    }

    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.position[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.position[top.index()] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores the heap property after `v`'s activity increased.
    pub fn bumped(&mut self, v: Var, activity: &[f64]) {
        let pos = self.position[v.index()];
        if pos != ABSENT {
            self.sift_up(pos, activity);
        }
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = self.heap[parent];
            if activity[pv.index()] >= activity[v.index()] {
                break;
            }
            self.heap[i] = pv;
            self.position[pv.index()] = i;
            i = parent;
        }
        self.heap[i] = v;
        self.position[v.index()] = i;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && activity[self.heap[right].index()] > activity[self.heap[left].index()]
            {
                right
            } else {
                left
            };
            let cv = self.heap[child];
            if activity[v.index()] >= activity[cv.index()] {
                break;
            }
            self.heap[i] = cv;
            self.position[cv.index()] = i;
            i = child;
        }
        self.heap[i] = v;
        self.position[v.index()] = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let mut order = VarOrder::new();
        let activity = vec![0.5, 2.0, 1.0, 3.0];
        order.grow_to(4);
        for i in 0..4 {
            order.insert(Var::new(i), &activity);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| order.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(popped, vec![3, 1, 2, 0]);
    }

    #[test]
    fn bump_reorders() {
        let mut order = VarOrder::new();
        let mut activity = vec![1.0, 2.0, 3.0];
        order.grow_to(3);
        for i in 0..3 {
            order.insert(Var::new(i), &activity);
        }
        activity[0] = 10.0;
        order.bumped(Var::new(0), &activity);
        assert_eq!(order.pop_max(&activity), Some(Var::new(0)));
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut order = VarOrder::new();
        let activity = vec![1.0];
        order.grow_to(1);
        order.insert(Var::new(0), &activity);
        order.insert(Var::new(0), &activity);
        assert_eq!(order.len(), 1);
        assert_eq!(order.pop_max(&activity), Some(Var::new(0)));
        assert_eq!(order.pop_max(&activity), None);
    }
}

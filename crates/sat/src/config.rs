//! Deterministic search-diversification knobs for the CDCL solver.
//!
//! A portfolio of CDCL solvers only pays off when the workers explore the
//! search space *differently*: the same formula handed to N identical
//! solvers produces N identical searches. [`SolverConfig`] collects the
//! diversification axes the engine exposes — restart-schedule scaling,
//! random decision polarity, phase initialization, and a decision-order
//! seed — and [`SolverConfig::diversified`] maps a worker index onto a
//! fixed preset so a portfolio is reproducible run-over-run.

/// Initial saved phase assigned to freshly created variables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PhaseInit {
    /// Branch negative first (MiniSat's classic default).
    #[default]
    Negative,
    /// Branch positive first.
    Positive,
    /// Branch per a deterministic pseudo-random stream from the seed.
    Random,
}

/// Search-diversification configuration for one CDCL solver instance.
///
/// The default configuration reproduces the undiversified solver exactly;
/// every knob is deterministic, so two solvers with equal configs perform
/// identical searches.
///
/// # Examples
///
/// ```
/// use sat::{SolverConfig, Solver, SolveResult};
///
/// let mut s = Solver::with_config(SolverConfig::diversified(2));
/// let a = s.new_var().positive();
/// s.add_clause([a]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverConfig {
    /// Scales the Luby restart schedule's base interval (default `1.0`;
    /// `< 1` restarts more aggressively, `> 1` commits longer to each
    /// search trajectory). Clamped so the interval never reaches zero.
    pub restart_multiplier: f64,
    /// Probability in `[0, 1]` that a branching decision ignores the saved
    /// phase and picks a pseudo-random polarity instead (default `0.0`).
    pub random_polarity_freq: f64,
    /// Initial saved phase for new variables (default
    /// [`PhaseInit::Negative`]).
    pub phase_init: PhaseInit,
    /// Seed for the solver's deterministic PRNG. Nonzero seeds also apply
    /// a tiny per-variable activity jitter, perturbing the initial VSIDS
    /// decision order; seed `0` keeps the exact undiversified order.
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            restart_multiplier: 1.0,
            random_polarity_freq: 0.0,
            phase_init: PhaseInit::Negative,
            seed: 0,
        }
    }
}

impl SolverConfig {
    /// The fixed diversification preset for portfolio worker `worker`.
    ///
    /// Worker 0 is always the undiversified default (so a 1-worker
    /// portfolio degenerates to the plain solver); higher indices cycle
    /// through complementary strategies — rapid restarts, inverted phase,
    /// randomized phase with noisy polarity — with the worker index folded
    /// into the seed so arbitrarily large portfolios stay distinct.
    pub fn diversified(worker: usize) -> Self {
        if worker == 0 {
            return Self::default();
        }
        let seed = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker as u64);
        match (worker - 1) % 4 {
            // Rapid restarts escape bad prefixes on satisfiable instances.
            0 => SolverConfig {
                restart_multiplier: 0.5,
                random_polarity_freq: 0.02,
                phase_init: PhaseInit::Negative,
                seed,
            },
            // Inverted phase: strongest complement to the default on
            // instances whose models are mostly-true assignments.
            1 => SolverConfig {
                restart_multiplier: 1.0,
                random_polarity_freq: 0.0,
                phase_init: PhaseInit::Positive,
                seed,
            },
            // Randomized phase plus noisy polarity: a broad scatter shot.
            2 => SolverConfig {
                restart_multiplier: 1.0,
                random_polarity_freq: 0.05,
                phase_init: PhaseInit::Random,
                seed,
            },
            // Long restarts with a jittered decision order: deep dives
            // along an order the default would never try.
            _ => SolverConfig {
                restart_multiplier: 2.0,
                random_polarity_freq: 0.01,
                phase_init: PhaseInit::Random,
                seed: seed | 1,
            },
        }
    }

    /// The restart interval for restart index `idx` of the Luby sequence,
    /// scaled by [`SolverConfig::restart_multiplier`].
    pub(crate) fn restart_interval(&self, luby_value: u64) -> u64 {
        let base = 100.0 * self.restart_multiplier.max(0.01);
        ((base * luby_value as f64) as u64).max(1)
    }
}

/// Deterministic xorshift64* PRNG — the solver's only randomness source,
/// so diversified searches are reproducible from their seed.
#[derive(Clone, Copy, Debug)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub fn new(seed: u64) -> Self {
        // State must be nonzero; fold seed 0 onto a fixed odd constant.
        XorShift64 {
            state: if seed == 0 {
                0x853C_49E6_845D_1CB5
            } else {
                seed
            },
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_undiversified() {
        let c = SolverConfig::default();
        assert_eq!(c, SolverConfig::diversified(0));
        assert_eq!(c.restart_interval(1), 100);
        assert_eq!(c.restart_interval(4), 400);
    }

    #[test]
    fn presets_are_distinct_and_deterministic() {
        let presets: Vec<SolverConfig> = (0..6).map(SolverConfig::diversified).collect();
        for (i, a) in presets.iter().enumerate() {
            assert_eq!(*a, SolverConfig::diversified(i), "preset {i} deterministic");
            for (j, b) in presets.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "presets {i} and {j} must differ");
            }
        }
    }

    #[test]
    fn restart_interval_never_zero() {
        let c = SolverConfig {
            restart_multiplier: 0.0,
            ..SolverConfig::default()
        };
        assert!(c.restart_interval(1) >= 1);
    }

    #[test]
    fn xorshift_is_deterministic_and_spread() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let f = XorShift64::new(42).next_f64();
        assert!((0.0..1.0).contains(&f));
        // Seed 0 must still produce a usable stream.
        assert_ne!(XorShift64::new(0).next_u64(), 0);
    }
}

//! DIMACS CNF reading and writing.
//!
//! Supports the standard `p cnf <vars> <clauses>` header, `c` comment lines,
//! and zero-terminated clause lines (clauses may span lines).

use std::fmt::Write as _;

use crate::lit::Lit;

/// A parsed CNF formula: a variable count and a list of clauses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Declared (or inferred) number of variables.
    pub num_vars: usize,
    /// The clauses, each a disjunction of literals.
    pub clauses: Vec<Vec<Lit>>,
}

/// Error produced when DIMACS parsing fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// Line number (1-based) where the problem was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

impl Cnf {
    /// Parses a DIMACS CNF document.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] on malformed headers or non-integer
    /// tokens. A missing header is tolerated; the variable count is then
    /// inferred from the literals.
    ///
    /// # Examples
    ///
    /// ```
    /// use sat::dimacs::Cnf;
    /// let cnf = Cnf::parse("p cnf 2 2\n1 -2 0\n2 0\n")?;
    /// assert_eq!(cnf.num_vars, 2);
    /// assert_eq!(cnf.clauses.len(), 2);
    /// # Ok::<(), sat::dimacs::ParseDimacsError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Self, ParseDimacsError> {
        let mut cnf = Cnf::default();
        let mut current: Vec<Lit> = Vec::new();
        let mut declared_vars = 0usize;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut parts = rest.split_whitespace();
                if parts.next() != Some("cnf") {
                    return Err(ParseDimacsError {
                        line: lineno + 1,
                        message: "expected 'p cnf <vars> <clauses>'".into(),
                    });
                }
                declared_vars =
                    parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| ParseDimacsError {
                            line: lineno + 1,
                            message: "missing variable count".into(),
                        })?;
                continue;
            }
            for tok in line.split_whitespace() {
                let value: i64 = tok.parse().map_err(|_| ParseDimacsError {
                    line: lineno + 1,
                    message: format!("invalid literal token '{tok}'"),
                })?;
                if value == 0 {
                    cnf.clauses.push(std::mem::take(&mut current));
                } else {
                    let l = Lit::from_dimacs(value);
                    cnf.num_vars = cnf.num_vars.max(l.var().index() + 1);
                    current.push(l);
                }
            }
        }
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        cnf.num_vars = cnf.num_vars.max(declared_vars);
        Ok(cnf)
    }

    /// Renders the formula in DIMACS CNF format.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for l in clause {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Loads this formula into a fresh [`crate::Solver`].
    pub fn into_solver(&self) -> crate::Solver {
        let mut s = crate::Solver::new();
        s.reserve_vars(self.num_vars);
        for clause in &self.clauses {
            s.add_clause(clause.iter().copied());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parse_round_trip() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = Cnf::parse(text).expect("parses");
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let again = Cnf::parse(&cnf.to_dimacs()).expect("round trip");
        assert_eq!(cnf, again);
    }

    #[test]
    fn parse_clause_spanning_lines() {
        let cnf = Cnf::parse("1 2\n-3 0 3 0").expect("parses");
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].len(), 3);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(Cnf::parse("p wcnf 1 1\n1 0").is_err());
        assert!(Cnf::parse("p cnf x y\n").is_err());
        assert!(Cnf::parse("1 zz 0\n").is_err());
    }

    #[test]
    fn solve_parsed_instance() {
        let cnf = Cnf::parse("p cnf 2 3\n1 2 0\n-1 2 0\n-2 1 0\n").expect("parses");
        let mut s = cnf.into_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        let m = s.model();
        assert!(m[0] && m[1]);
    }
}

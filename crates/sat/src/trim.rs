//! Budget-capped trimming of UNSAT cores.
//!
//! Assumption cores returned by CDCL solvers are rarely minimal: the final
//! conflict analysis keeps every assumption that happened to sit on the
//! trail, not the subset that is actually needed. Core-guided MaxSAT pays
//! for that slack twice — the relaxation totalizer built over the core
//! grows with its size, and the totalizer's outputs feed later cores. A
//! cheap trimming pass before relaxation keeps both small.
//!
//! [`trim_core`] runs the classic destructive loop: drop one assumption,
//! re-solve under the rest, and on UNSAT *adopt the solver's new core*
//! (a subset of the candidate, often much smaller than just "one fewer").
//! Every probe is a full SAT call, so the pass is capped by an explicit
//! probe budget and the caller's [`ResourceBudget`] deadline; whatever
//! core the cap interrupts is still a correct (if unminimized) core.

use crate::backend::SatBackend;
use crate::budget::ResourceBudget;
use crate::{Lit, SolveResult};

/// Shrinks `core` (a set of assumption literals whose conjunction is
/// unsatisfiable with the backend's clauses) by destructive probing:
/// repeatedly drop one literal, re-solve under the remainder, and adopt
/// the backend's returned core whenever the remainder is still UNSAT.
///
/// Spends at most `max_probes` SAT calls and stops early once `budget`
/// expires; an `Unknown` probe answer conservatively keeps the dropped
/// literal. The result is always a subset of `core` that is itself an
/// UNSAT core (the input is returned unchanged when no probe ran).
///
/// # Examples
///
/// ```
/// use sat::{trim_core, Lit, ResourceBudget, SatBackend, Solver};
///
/// let mut s = Solver::new();
/// let (a, b, c) = (Lit::from_dimacs(1), Lit::from_dimacs(2), Lit::from_dimacs(3));
/// s.reserve_vars(3);
/// s.add_clause([!a, !b]); // a and b cannot both hold
/// let trimmed = trim_core(&mut s, vec![a, b, c], &ResourceBudget::unlimited(), 8);
/// assert!(trimmed.len() <= 2);
/// assert!(!trimmed.contains(&c));
/// ```
pub fn trim_core<B: SatBackend + ?Sized>(
    backend: &mut B,
    mut core: Vec<Lit>,
    budget: &ResourceBudget,
    max_probes: u32,
) -> Vec<Lit> {
    let mut probes = 0u32;
    // Probe from the back so index bookkeeping survives adoption of a
    // smaller core (we simply restart from the new end).
    let mut i = core.len();
    while i > 0 && core.len() > 1 && probes < max_probes && !budget.expired() {
        i -= 1;
        let mut candidate = core.clone();
        candidate.swap_remove(i);
        probes += 1;
        match backend.solve_under_assumptions(&candidate, budget) {
            SolveResult::Unsat => {
                // The new core is a subset of `candidate`, so it excludes
                // the dropped literal and possibly more.
                let next = backend.unsat_core().to_vec();
                core = if next.is_empty() { candidate } else { next };
                i = core.len().min(i);
            }
            // SAT (the dropped literal was necessary) or Unknown (budget
            // noise): keep the literal and move on.
            SolveResult::Sat | SolveResult::Unknown => {}
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lit, Solver};

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    /// Plants a 2-literal conflict among a pile of free assumptions: only
    /// {a, b} is a real core; c..f are padding a naive core could drag in.
    fn planted(n_padding: usize) -> (Solver, Vec<Lit>) {
        let mut s = Solver::new();
        s.reserve_vars(2 + n_padding);
        let a = lit(1);
        let b = lit(2);
        s.add_clause([!a, !b]);
        let mut assumptions = vec![a, b];
        for i in 0..n_padding {
            assumptions.push(lit(3 + i as i64));
        }
        (s, assumptions)
    }

    #[test]
    fn trims_padding_down_to_the_planted_core() {
        let (mut s, inflated) = planted(4);
        let trimmed = trim_core(&mut s, inflated.clone(), &ResourceBudget::unlimited(), 16);
        assert!(trimmed.len() <= 2, "planted core has two members");
        assert!(trimmed.iter().all(|l| inflated.contains(l)), "subset");
        // The trimmed set is still a core.
        assert_eq!(
            s.solve_under_assumptions(&trimmed, &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
    }

    #[test]
    fn zero_probe_cap_returns_the_input_unchanged() {
        let (mut s, inflated) = planted(3);
        let out = trim_core(&mut s, inflated.clone(), &ResourceBudget::unlimited(), 0);
        assert_eq!(out, inflated);
    }

    #[test]
    fn expired_budget_returns_the_input_unchanged() {
        let (mut s, inflated) = planted(3);
        let spent = ResourceBudget::with_time(std::time::Duration::ZERO).arm();
        let out = trim_core(&mut s, inflated.clone(), &spent, 16);
        assert_eq!(out, inflated);
    }

    #[test]
    fn probe_cap_bounds_the_work_but_keeps_a_core() {
        let (mut s, inflated) = planted(6);
        let out = trim_core(&mut s, inflated, &ResourceBudget::unlimited(), 1);
        // One probe can only shrink so far, but the result must stay UNSAT.
        assert_eq!(
            s.solve_under_assumptions(&out, &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
    }

    #[test]
    fn minimal_cores_survive_trimming_intact() {
        let mut s = Solver::new();
        s.reserve_vars(3);
        let (a, b, c) = (lit(1), lit(2), lit(3));
        // All three assumptions are needed: ¬(a ∧ b ∧ c).
        s.add_clause([!a, !b, !c]);
        let out = trim_core(&mut s, vec![a, b, c], &ResourceBudget::unlimited(), 16);
        assert_eq!(out.len(), 3, "nothing to trim from a minimal core");
    }
}

//! The CDCL solver engine.
//!
//! A conflict-driven clause-learning SAT solver in the MiniSat lineage:
//! two-watched-literal propagation, VSIDS decision heuristic with phase
//! saving, first-UIP conflict analysis with clause minimization, Luby
//! restarts, and activity/LBD-based learned-clause database reduction.
//! Clauses live in a flat arena ([`crate::clause`]) that is periodically
//! garbage-collected; watch lists and reason references are remapped in
//! one pass per compaction. Supports incremental solving under
//! assumptions, cooperative [`ResourceBudget`]s (conflicts or wall-clock
//! deadlines), which the MaxSAT layer uses for anytime behaviour, and
//! portfolio clause sharing through an optional [`ExchangePort`]: learned
//! clauses below the glue threshold are exported during search and peers'
//! clauses are imported at restart boundaries.

use crate::budget::ResourceBudget;
use crate::clause::{ClauseDb, ClauseRef};
use crate::config::{PhaseInit, SolverConfig, XorShift64};
use crate::exchange::ExchangePort;
use crate::lit::{LBool, Lit, Var};
use crate::order::VarOrder;
use crate::stats::Stats;

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it via [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The budget expired before a definitive answer.
    Unknown,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and the watch list walk can skip it.
    blocker: Lit,
}

/// A CDCL SAT solver.
///
/// Cloning a solver duplicates its entire state — for the clause store
/// that is one `memcpy` of the flat arena, which is how
/// [`crate::PortfolioBackend`] materializes diversified workers from a
/// loaded template instead of re-emitting every clause per worker.
///
/// # Examples
///
/// ```
/// use sat::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause([a, b]);
/// s.add_clause([!a]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.model_value(b), Some(true));
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    db: ClauseDb,
    /// Watch lists indexed by literal code. `watches[l]` holds clauses that
    /// watch `¬l` (i.e. must be inspected when `l` becomes true).
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    /// Saved phase per variable for phase-saving.
    polarity: Vec<bool>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    var_decay: f64,
    cla_inc: f32,
    order: VarOrder,
    /// False once an unconditional conflict has been derived.
    ok: bool,
    seen: Vec<bool>,
    analyze_clear: Vec<Lit>,
    /// Reusable DFS stack for recursive conflict-clause minimization.
    minimize_stack: Vec<Lit>,
    model: Vec<LBool>,
    conflict_core: Vec<Lit>,
    stats: Stats,
    max_learnt: f64,
    /// Reusable scratch for LBD computation: one stamp slot per decision
    /// level, validated against `lbd_gen` (no per-clause allocation).
    lbd_stamp: Vec<u32>,
    lbd_gen: u32,
    /// Diversification knobs (restarts, polarity, phase, seed).
    config: SolverConfig,
    /// Deterministic PRNG driving every randomized knob.
    rng: XorShift64,
    /// Portfolio clause-sharing port, when racing (see [`ExchangePort`]).
    exchange: Option<ExchangePort>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

/// Bumps `v`'s VSIDS activity, rescaling on overflow — free function so
/// conflict analysis can call it under a split borrow while clause
/// literals are read in place from the arena.
fn bump_var_in(activity: &mut [f64], var_inc: &mut f64, order: &mut VarOrder, v: Var) {
    activity[v.index()] += *var_inc;
    if activity[v.index()] > 1e100 {
        for a in activity.iter_mut() {
            *a *= 1e-100;
        }
        *var_inc *= 1e-100;
    }
    order.bumped(v, activity);
}

/// The value of `l` under `assigns` (split-borrow form of
/// [`Solver::value_lit`]).
#[inline]
fn lit_value(assigns: &[LBool], l: Lit) -> LBool {
    assigns[l.var().index()].under_sign(l.is_positive())
}

impl Solver {
    /// Creates an empty solver with no variables or clauses and the
    /// undiversified default configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given search-diversification
    /// configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            var_decay: 0.95,
            cla_inc: 1.0,
            order: VarOrder::new(),
            ok: true,
            seen: Vec::new(),
            analyze_clear: Vec::new(),
            minimize_stack: Vec::new(),
            model: Vec::new(),
            conflict_core: Vec::new(),
            stats: Stats::default(),
            max_learnt: 2000.0,
            lbd_stamp: Vec::new(),
            lbd_gen: 0,
            rng: XorShift64::new(config.seed),
            config,
            exchange: None,
        }
    }

    /// Replaces the search-diversification configuration.
    ///
    /// Reseeds the PRNG and re-initializes the saved phase of *existing*
    /// variables per the new [`PhaseInit`] policy (phase saving overwrites
    /// it as search progresses, as usual). Intended to be called before
    /// solving starts; safe at any root-level point.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.rng = XorShift64::new(config.seed);
        self.config = config;
        for i in 0..self.polarity.len() {
            let p = self.initial_phase();
            self.polarity[i] = p;
        }
    }

    /// The active search-diversification configuration.
    pub fn solver_config(&self) -> &SolverConfig {
        &self.config
    }

    /// Attaches this solver to a portfolio clause exchange (or detaches it
    /// with `None`). While attached, learned clauses below the exchange's
    /// glue threshold are exported during search and peers' clauses are
    /// imported at restart boundaries — both sound, since learned clauses
    /// are logical consequences of the shared formula.
    pub fn set_clause_exchange(&mut self, port: Option<ExchangePort>) {
        self.exchange = port;
    }

    /// Detaches and returns the clause-exchange port, if one is attached.
    ///
    /// The returned port keeps its per-peer read cursors and dedup state,
    /// so re-attaching it later resumes the exchange exactly where it left
    /// off — the mechanism `PortfolioBackend` uses to persist one exchange
    /// across successive solve calls (cross-call lemma reuse).
    pub fn take_clause_exchange(&mut self) -> Option<ExchangePort> {
        self.exchange.take()
    }

    /// Initial saved phase for a variable per the configured policy.
    fn initial_phase(&mut self) -> bool {
        match self.config.phase_init {
            PhaseInit::Negative => false,
            PhaseInit::Positive => true,
            PhaseInit::Random => self.rng.next_bool(),
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live problem clauses (excluding units absorbed into the
    /// top-level trail).
    pub fn num_clauses(&self) -> usize {
        self.db.num_problem
    }

    /// Solver statistics accumulated across all `solve` calls.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Creates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len());
        let phase = self.initial_phase();
        // A nonzero seed perturbs the initial VSIDS tie-breaking order with
        // a jitter far below one activity bump, diversifying only ties.
        let jitter = if self.config.seed != 0 {
            self.rng.next_f64() * 1e-6
        } else {
            0.0
        };
        self.assigns.push(LBool::Undef);
        self.polarity.push(phase);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(jitter);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> LBool {
        lit_value(&self.assigns, l)
    }

    /// Adds a clause. Returns `false` if the solver is now known
    /// unsatisfiable at the top level (the clause may still have been
    /// recorded).
    ///
    /// Duplicated literals are removed and tautologies are dropped. Must not
    /// be called between `solve` calls' partial states — the solver
    /// backtracks to the root level automatically.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        let mut ps: Vec<Lit> = lits.into_iter().collect();
        ps.sort_unstable();
        ps.dedup();
        // Tautology / root-level simplification.
        let mut simplified = Vec::with_capacity(ps.len());
        let mut i = 0;
        while i < ps.len() {
            let l = ps[i];
            if i + 1 < ps.len() && ps[i + 1] == !l {
                return true; // tautology: contains l and ¬l
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at root
                LBool::False => {}          // drop falsified literal
                LBool::Undef => simplified.push(l),
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&simplified, false, false, 0);
                self.attach(cref);
                self.stats.arena_bytes = self.db.arena_bytes() as u64;
                true
            }
        }
    }

    fn attach(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        self.watches[(!l0).code() as usize].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code() as usize].push(Watcher { cref, blocker: l0 });
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.reason[v] = from;
        self.level[v] = self.decision_level();
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code() as usize]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value_lit(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                let false_lit = !p;
                // Split borrows: the clause is reordered in place in the
                // arena while values are read and the new watch is pushed.
                let first = {
                    let Solver {
                        db,
                        assigns,
                        watches,
                        ..
                    } = self;
                    let lits = db.lits_mut(cref);
                    // Make sure ¬p is lits[1].
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                    let first = lits[0];
                    if first != w.blocker && lit_value(assigns, first) == LBool::True {
                        ws[j] = Watcher {
                            cref,
                            blocker: first,
                        };
                        j += 1;
                        continue 'watchers;
                    }
                    // Look for a new literal to watch.
                    let mut new_watch = None;
                    for (k, &lk) in lits.iter().enumerate().skip(2) {
                        if lit_value(assigns, lk) != LBool::False {
                            new_watch = Some(k);
                            break;
                        }
                    }
                    if let Some(k) = new_watch {
                        let lk = lits[k];
                        lits.swap(1, k);
                        watches[(!lk).code() as usize].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                    first
                };
                // Clause is unit or conflicting under the current assignment.
                ws[j] = Watcher {
                    cref,
                    blocker: first,
                };
                j += 1;
                if self.value_lit(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    // Copy remaining watchers back.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            debug_assert!(self.watches[p.code() as usize].is_empty());
            self.watches[p.code() as usize] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for idx in (bound..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var();
            self.assigns[v.index()] = LBool::Undef;
            self.polarity[v.index()] = l.is_positive();
            self.reason[v.index()] = None;
            if !self.order.contains(v) {
                self.order.insert(v, &self.activity);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.var_decay;
        self.cla_inc /= 0.999;
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let bumped = self.db.activity(cref) + self.cla_inc;
        self.db.set_activity(cref, bumped);
        if bumped > 1e20 {
            let refs: Vec<ClauseRef> = self.db.learnt_refs().collect();
            for r in refs {
                let scaled = self.db.activity(r) * 1e-20;
                self.db.set_activity(r, scaled);
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut index = self.trail.len();
        let current_level = self.decision_level();

        loop {
            self.bump_clause(cref);
            // Import-usefulness signal: the first time an imported clause
            // joins a resolution, credit it (once) — the adaptive sharing
            // thresholds tune themselves on this yield.
            if self.db.is_imported(cref) {
                self.db.clear_imported(cref);
                self.stats.useful_imports += 1;
            }
            // Split borrows: the resolved clause's literals are read in
            // place from the arena — the hottest loop in the solver runs
            // allocation-free — while the VSIDS state mutates disjoint
            // fields.
            let Solver {
                db,
                seen,
                level,
                activity,
                var_inc,
                order,
                ..
            } = self;
            let lits = db.lits(cref);
            let skip = usize::from(p.is_some());
            for &q in &lits[skip..] {
                let v = q.var();
                if !seen[v.index()] && level[v.index()] > 0 {
                    seen[v.index()] = true;
                    bump_var_in(activity, var_inc, order, v);
                    if level[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to resolve on.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found UIP candidate").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            cref = self.reason[pv.index()].expect("non-decision has a reason");
        }
        learnt[0] = !p.expect("UIP literal");

        // Mark remaining seen lits for minimization bookkeeping; the clear
        // list is a reused scratch buffer, not a fresh allocation.
        let mut clear = std::mem::take(&mut self.analyze_clear);
        clear.clear();
        clear.extend(learnt.iter().copied());
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = true;
        }
        // Full recursive (MiniSat-style) conflict-clause minimization, in
        // place: drop every literal whose reason cone bottoms out in
        // already-seen literals. The level-set bitmask prunes whole cones
        // whose levels cannot appear in the clause.
        self.stats.premin_literals += learnt.len() as u64;
        let abstract_levels = learnt[1..].iter().fold(0u32, |mask, l| {
            mask | 1u32 << (self.level[l.var().index()] & 31)
        });
        let mut kept = 1;
        for i in 1..learnt.len() {
            if !self.lit_redundant(learnt[i], abstract_levels, &mut clear) {
                learnt[kept] = learnt[i];
                kept += 1;
            }
        }
        learnt.truncate(kept);

        for &l in &clear {
            self.seen[l.var().index()] = false;
        }
        self.analyze_clear = clear;

        // Compute backtrack level: max level among learnt[1..].
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    /// Checks whether `l` is redundant in the learned clause: walks `l`'s
    /// entire reason cone (iteratively, via the reusable DFS stack) and
    /// reports `true` when every path bottoms out in already-seen literals
    /// or root-level assignments — the full MiniSat recursive test, reading
    /// clause literals in place from the flat arena.
    ///
    /// Literals proven redundant along the way stay marked in `seen` (and
    /// are pushed onto `clear`), so later redundancy checks within the same
    /// conflict reuse the work. On failure, marks added by this walk are
    /// rolled back so the outcome is order-independent.
    fn lit_redundant(&mut self, l: Lit, abstract_levels: u32, clear: &mut Vec<Lit>) -> bool {
        if self.reason[l.var().index()].is_none() {
            return false;
        }
        let mut stack = std::mem::take(&mut self.minimize_stack);
        stack.clear();
        stack.push(l);
        let rollback_from = clear.len();
        let mut redundant = true;
        'walk: while let Some(p) = stack.pop() {
            let r = self.reason[p.var().index()].expect("stacked literals have reasons");
            let Solver {
                db,
                seen,
                level,
                reason,
                ..
            } = self;
            // lits[0] is the implied literal (== ¬p on the trail); the
            // antecedents to explain are lits[1..].
            for &q in &db.lits(r)[1..] {
                let v = q.var().index();
                if seen[v] || level[v] == 0 {
                    continue;
                }
                if reason[v].is_some() && (1u32 << (level[v] & 31)) & abstract_levels != 0 {
                    // Plausibly redundant: mark and explain it too.
                    seen[v] = true;
                    stack.push(q);
                    clear.push(q);
                } else {
                    // A decision (or a level outside the clause): the cone
                    // escapes the learned clause, so `l` must stay.
                    redundant = false;
                    break 'walk;
                }
            }
        }
        if !redundant {
            for &x in &clear[rollback_from..] {
                self.seen[x.var().index()] = false;
            }
            clear.truncate(rollback_from);
        }
        stack.clear();
        self.minimize_stack = stack;
        redundant
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        self.stats.learned_literals += learnt.len() as u64;
        if learnt.len() == 1 {
            self.export_clause(&learnt, 1);
            self.unchecked_enqueue(learnt[0], None);
        } else {
            let lbd = self.compute_lbd(&learnt);
            self.export_clause(&learnt, lbd);
            let asserting = learnt[0];
            let cref = self.db.alloc(&learnt, true, false, lbd);
            self.attach(cref);
            self.bump_clause(cref);
            self.unchecked_enqueue(asserting, Some(cref));
            self.stats.arena_bytes = self.db.arena_bytes() as u64;
        }
    }

    /// Offers a learned clause to the attached exchange, if any.
    fn export_clause(&mut self, lits: &[Lit], lbd: u32) {
        if let Some(port) = &mut self.exchange {
            if port.export(lits, lbd) {
                self.stats.clauses_exported += 1;
            }
        }
    }

    /// Imports peers' shared clauses at a root-level point. Returns `false`
    /// when the imports (all logical consequences) close the formula —
    /// i.e. a root conflict proves unsatisfiability.
    fn import_shared(&mut self) -> bool {
        let Some(mut port) = self.exchange.take() else {
            return self.ok;
        };
        debug_assert_eq!(self.decision_level(), 0);
        let mut imported = 0u64;
        let mut carried = 0u64;
        port.drain(&mut |lits, lbd, cross_call| {
            if self.import_clause(lits, lbd) {
                imported += 1;
                if cross_call {
                    carried += 1;
                }
            }
        });
        self.exchange = Some(port);
        if imported > 0 {
            self.stats.clauses_imported += imported;
            self.stats.cross_call_imports += carried;
            self.stats.arena_bytes = self.db.arena_bytes() as u64;
            if self.ok && self.propagate().is_some() {
                self.ok = false;
            }
        }
        self.ok
    }

    /// Adds one imported clause as a learned clause, simplifying against
    /// the root-level trail. Returns `true` if the clause (or its implied
    /// unit) was recorded.
    fn import_clause(&mut self, lits: &[Lit], lbd: u32) -> bool {
        if !self.ok || lits.iter().any(|l| l.var().index() >= self.num_vars()) {
            // Unknown variables can only mean a misrouted port; drop.
            return false;
        }
        let mut ps: Vec<Lit> = lits.to_vec();
        ps.sort_unstable();
        ps.dedup();
        let mut simplified = Vec::with_capacity(ps.len());
        for (i, &l) in ps.iter().enumerate() {
            if i + 1 < ps.len() && ps[i + 1] == !l {
                return false; // tautology
            }
            match self.value_lit(l) {
                LBool::True => return false, // already satisfied at root
                LBool::False => {}           // falsified at root: drop literal
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                // An imported consequence is empty at root: unsatisfiable.
                self.ok = false;
                true
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                true
            }
            _ => {
                let lbd = lbd.clamp(1, simplified.len() as u32);
                let cref = self.db.alloc(&simplified, true, true, lbd);
                self.attach(cref);
                true
            }
        }
    }

    /// Literal block distance of `lits` via the reusable level-stamp
    /// scratch buffer (no allocation, sort, or dedup per learned clause).
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_gen = self.lbd_gen.wrapping_add(1);
        if self.lbd_gen == 0 {
            // Generation counter wrapped: invalidate every stale stamp.
            self.lbd_stamp.iter_mut().for_each(|s| *s = 0);
            self.lbd_gen = 1;
        }
        let mut distinct = 0u32;
        for l in lits {
            // The asserting literal's level entry may be stale (deeper than
            // the post-backtrack level), so size by what we actually see.
            let lev = self.level[l.var().index()] as usize;
            if lev >= self.lbd_stamp.len() {
                self.lbd_stamp.resize(lev + 1, 0);
            }
            if self.lbd_stamp[lev] != self.lbd_gen {
                self.lbd_stamp[lev] = self.lbd_gen;
                distinct += 1;
            }
        }
        distinct
    }

    /// Removes roughly half of the learned clauses, keeping binary/glue and
    /// high-activity clauses.
    ///
    /// Freed clauses are swept from the watch lists in one batch pass, and
    /// when the freed space crosses the arena's dead-fraction threshold a
    /// garbage-collecting compaction slides live clauses down and remaps
    /// watch lists and reason references (see [`crate::clause`]).
    fn reduce_db(&mut self) {
        self.db.prune_learnts();
        let mut refs: Vec<ClauseRef> = self.db.learnt_refs().collect();
        refs.sort_by(|&a, &b| {
            self.db
                .activity(a)
                .partial_cmp(&self.db.activity(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = refs
            .iter()
            .map(|&r| {
                let first = self.db.lits(r)[0];
                self.reason[first.var().index()] == Some(r) && self.value_lit(first) == LBool::True
            })
            .collect();
        let target = refs.len() / 2;
        let mut removed = 0;
        for (i, &r) in refs.iter().enumerate() {
            if removed >= target {
                break;
            }
            if locked[i] || self.db.len(r) <= 2 || self.db.lbd(r) <= 2 {
                continue;
            }
            self.db.free(r);
            removed += 1;
        }
        if removed > 0 {
            // References are stable until compaction (clauses are only
            // flagged), so `is_deleted` is a safe liveness test here.
            let db = &self.db;
            for ws in &mut self.watches {
                ws.retain(|w| !db.is_deleted(w.cref));
            }
            self.db.prune_learnts();
        }
        self.stats.reductions += 1;
        self.maybe_compact();
    }

    /// Runs the arena garbage collector when enough dead space accrued.
    fn maybe_compact(&mut self) {
        if self.db.should_compact() {
            self.compact_now();
        }
    }

    /// Compacts the arena unconditionally, remapping watch lists and
    /// reason references to the moved clauses.
    fn compact_now(&mut self) {
        let remap = self.db.compact();
        for ws in &mut self.watches {
            for w in ws {
                w.cref = remap.map(w.cref);
            }
        }
        for r in self.reason.iter_mut().flatten() {
            *r = remap.map(*r);
        }
        self.stats.compactions += 1;
        self.stats.arena_bytes = self.db.arena_bytes() as u64;
    }

    /// Forces a learned-clause reduction (and, if the dead-space threshold
    /// is crossed, an arena compaction) immediately. Test hook for
    /// exercising the garbage collector at chosen points; production
    /// reductions are triggered by the `max_learnt` budget during search.
    #[doc(hidden)]
    pub fn force_reduce_db(&mut self) {
        self.reduce_db();
    }

    /// Forces an arena compaction immediately, regardless of the
    /// dead-space threshold. Test hook: lets the compaction-correctness
    /// property tests churn the garbage collector on instances far too
    /// small to cross the production trigger.
    #[doc(hidden)]
    pub fn force_compact(&mut self) {
        self.compact_now();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                let positive = if self.config.random_polarity_freq > 0.0
                    && self.rng.next_f64() < self.config.random_polarity_freq
                {
                    self.rng.next_bool()
                } else {
                    self.polarity[v.index()]
                };
                return Some(Lit::new(v, positive));
            }
        }
        None
    }

    /// Solves the current formula with no assumptions and no budget.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_under_assumptions(&[], &ResourceBudget::unlimited())
    }

    /// Solves under `assumptions` within `budget`.
    ///
    /// The budget is armed on entry ([`ResourceBudget::arm`]): a relative
    /// time limit starts counting now, while a deadline inherited from a
    /// parent call is honored as-is — a nested call can therefore never
    /// overshoot its parent's allowance. The solver checks the deadline at
    /// coarse-grained intervals, so overshoot is bounded but nonzero.
    ///
    /// On [`SolveResult::Unsat`] with nonempty assumptions, the subset of
    /// assumptions involved in the conflict is available from
    /// [`Solver::unsat_core`].
    pub fn solve_under_assumptions(
        &mut self,
        assumptions: &[Lit],
        budget: &ResourceBudget,
    ) -> SolveResult {
        let budget = budget.arm();
        self.model.clear();
        self.conflict_core.clear();
        self.cancel_until(0);
        // Clauses already sitting in peer queues were published during an
        // *earlier* call; the boundary lets the exchange count how many of
        // them this call reuses (`Stats::cross_call_imports`). A boundary
        // pre-marked by the port's owner (the portfolio, before spawning
        // the race) is kept as-is so racing workers all measure the same
        // cut.
        if let Some(port) = &mut self.exchange {
            port.begin_call();
        }
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        // Pick up clauses peers shared before this call began.
        if !self.import_shared() {
            return SolveResult::Unsat;
        }

        let conflict_start = self.stats.conflicts;
        let mut restart_idx = 0u64;
        loop {
            let restart_budget = self.config.restart_interval(luby(restart_idx));
            restart_idx += 1;
            match self.search(assumptions, restart_budget, &budget, conflict_start) {
                SearchOutcome::Sat => {
                    self.model = self.assigns.clone();
                    self.cancel_until(0);
                    return SolveResult::Sat;
                }
                SearchOutcome::Unsat => {
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                SearchOutcome::Restart => {
                    self.cancel_until(0);
                    self.stats.restarts += 1;
                    // Restart boundaries are the import points for shared
                    // clauses: the trail is at root, so every import lands
                    // as a proper root-level learned clause.
                    if !self.import_shared() {
                        return SolveResult::Unsat;
                    }
                }
                SearchOutcome::BudgetExhausted => {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
            }
        }
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        restart_conflicts: u64,
        budget: &ResourceBudget,
        conflict_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                // Conflict within the assumption prefix: extract a core.
                if (self.decision_level() as usize) <= assumptions.len() {
                    self.extract_core(conflict, assumptions);
                    return SearchOutcome::Unsat;
                }
                let (learnt, bt_level) = self.analyze(conflict);
                // Never backtrack into the middle of the assumption prefix
                // with an asserting clause that assumes deeper context.
                let bt = bt_level;
                self.cancel_until(bt.max(self.assumption_level_floor(assumptions, bt)));
                self.record_learnt(learnt);
                self.decay_activities();
                if self.db.num_learnt as f64 > self.max_learnt {
                    self.reduce_db();
                    self.max_learnt *= 1.5;
                }
            } else {
                if conflicts_here >= restart_conflicts
                    && self.decision_level() as usize > assumptions.len()
                {
                    return SearchOutcome::Restart;
                }
                if let Some(cap) = budget.conflict_cap() {
                    if self.stats.conflicts - conflict_start >= cap {
                        return SearchOutcome::BudgetExhausted;
                    }
                }
                if (self.stats.decisions + self.stats.conflicts).is_multiple_of(64)
                    && budget.expired()
                {
                    return SearchOutcome::BudgetExhausted;
                }
                // Establish assumptions as pseudo-decisions first.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value_lit(a) {
                        LBool::True => {
                            // Already implied: introduce an empty decision level
                            // so the prefix depth still matches.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.extract_core_from_assumption(a, assumptions);
                            return SearchOutcome::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => return SearchOutcome::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }

    fn assumption_level_floor(&self, assumptions: &[Lit], bt: u32) -> u32 {
        // Keep the solver at or below the assumption prefix if the asserting
        // level falls inside it; re-entry re-establishes assumptions.
        let _ = assumptions;
        bt
    }

    /// Computes the set of assumption literals entailed in `conflict`.
    fn extract_core(&mut self, conflict: ClauseRef, assumptions: &[Lit]) {
        use std::collections::HashSet;
        let assumption_set: HashSet<Lit> = assumptions.iter().copied().collect();
        let mut seen = vec![false; self.num_vars()];
        let mut queue: Vec<Lit> = self.db.lits(conflict).to_vec();
        let mut core = Vec::new();
        while let Some(l) = queue.pop() {
            let v = l.var().index();
            if seen[v] || self.level[v] == 0 {
                continue;
            }
            seen[v] = true;
            if assumption_set.contains(&!l) {
                core.push(!l);
            } else if let Some(r) = self.reason[v] {
                queue.extend(self.db.lits(r).iter().copied());
            }
        }
        self.conflict_core = core;
    }

    fn extract_core_from_assumption(&mut self, failed: Lit, assumptions: &[Lit]) {
        use std::collections::HashSet;
        let assumption_set: HashSet<Lit> = assumptions.iter().copied().collect();
        let mut seen = vec![false; self.num_vars()];
        let mut core = vec![failed];
        // `queue` holds literals that are FALSE under the current trail and
        // whose (true) complements still need explaining.
        let mut queue: Vec<Lit> = vec![failed];
        while let Some(l) = queue.pop() {
            let v = l.var().index();
            if seen[v] || self.level[v] == 0 {
                continue;
            }
            seen[v] = true;
            let t = !l; // the literal that is true on the trail
            if t != !failed && assumption_set.contains(&t) {
                core.push(t);
            } else if let Some(r) = self.reason[v] {
                queue.extend(self.db.lits(r).iter().copied().filter(|&q| q != t));
            } else if assumption_set.contains(&t) {
                // Contradictory assumption pair {failed, ¬failed}.
                core.push(t);
            }
        }
        core.sort_unstable();
        core.dedup();
        self.conflict_core = core;
    }

    /// The value of `l` in the last satisfying model, or `None` if the last
    /// call did not produce a model or `l`'s variable did not exist then.
    pub fn model_value(&self, l: Lit) -> Option<bool> {
        match self.model.get(l.var().index()) {
            Some(LBool::True) => Some(l.is_positive()),
            Some(LBool::False) => Some(l.is_negative()),
            _ => None,
        }
    }

    /// The full model of the last SAT answer as booleans per variable.
    ///
    /// Variables untouched by the search default to `false`.
    pub fn model(&self) -> Vec<bool> {
        self.model
            .iter()
            .map(|v| matches!(v, LBool::True))
            .collect()
    }

    /// Subset of assumptions responsible for the last UNSAT answer.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...).
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence that contains index i.
    let mut k = 1u32;
    loop {
        if i + 1 == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        if i + 1 < (1u64 << k) - 1 {
            i -= (1u64 << (k - 1)) - 1;
            k = 1;
            continue;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, d: i64) -> Lit {
        while s.num_vars() < d.unsigned_abs() as usize {
            s.new_var();
        }
        Lit::from_dimacs(d)
    }

    #[test]
    fn luby_sequence() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expect.len() as u64).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let a = lit(&mut s, 1);
        s.add_clause([a]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let a = lit(&mut s, 1);
        assert!(s.add_clause([a]));
        assert!(!s.add_clause([!a]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn requires_propagation_chain() {
        let mut s = Solver::new();
        let (a, b, c) = (lit(&mut s, 1), lit(&mut s, 2), lit(&mut s, 3));
        s.add_clause([a]);
        s.add_clause([!a, b]);
        s.add_clause([!b, c]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(c), Some(true));
    }

    #[test]
    fn pigeonhole_two_in_one() {
        // Two pigeons, one hole: unsat.
        let mut s = Solver::new();
        let p1 = lit(&mut s, 1); // pigeon 1 in hole 1
        let p2 = lit(&mut s, 2); // pigeon 2 in hole 1
        s.add_clause([p1]);
        s.add_clause([p2]);
        s.add_clause([!p1, !p2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_pigeons_2_holes() {
        // Classic PHP(3,2): unsat, requires real search.
        let mut s = Solver::new();
        let mut x = [[Lit::from_code(0); 2]; 3];
        for (p, row) in x.iter_mut().enumerate() {
            for (h, cell) in row.iter_mut().enumerate() {
                *cell = lit(&mut s, (p * 2 + h + 1) as i64);
            }
        }
        for row in &x {
            s.add_clause(row.to_vec());
        }
        for p1 in 0..3 {
            for p2 in (p1 + 1)..3 {
                for (h, &cell) in x[p1].iter().enumerate() {
                    s.add_clause([!cell, !x[p2][h]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let (a, b) = (lit(&mut s, 1), lit(&mut s, 2));
        s.add_clause([a, b]);
        s.add_clause([!a, b]);
        let unlimited = ResourceBudget::unlimited();
        assert_eq!(
            s.solve_under_assumptions(&[!b], &unlimited),
            SolveResult::Unsat
        );
        assert!(s.unsat_core().contains(&!b));
        assert_eq!(
            s.solve_under_assumptions(&[b], &unlimited),
            SolveResult::Sat
        );
        // Solver stays usable incrementally.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = Solver::new();
        let (a, b) = (lit(&mut s, 1), lit(&mut s, 2));
        s.add_clause([a, b]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([!a]);
        s.add_clause([!b]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_returns_unknown_or_answer() {
        // A hard instance (PHP 6/5) with a 1-conflict budget should give
        // Unknown rather than hanging or mis-answering.
        let mut s = Solver::new();
        let n = 6usize;
        let m = 5usize;
        let var = |p: usize, h: usize| (p * m + h + 1) as i64;
        for p in 0..n {
            let row: Vec<Lit> = (0..m).map(|h| lit(&mut s, var(p, h))).collect();
            s.add_clause(row);
        }
        for h in 0..m {
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    let (l1, l2) = (lit(&mut s, var(p1, h)), lit(&mut s, var(p2, h)));
                    s.add_clause([!l1, !l2]);
                }
            }
        }
        let r = s.solve_under_assumptions(&[], &ResourceBudget::unlimited().conflicts_per_call(1));
        assert_ne!(r, SolveResult::Sat);
        // And with no budget it is definitively unsat.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn inherited_deadline_bounds_child_call() {
        // A child call asking for an hour still stops at the parent's
        // (already expired) deadline.
        let mut s = Solver::new();
        let n = 9usize;
        let m = 8usize;
        let var = |p: usize, h: usize| (p * m + h + 1) as i64;
        for p in 0..n {
            let row: Vec<Lit> = (0..m).map(|h| lit(&mut s, var(p, h))).collect();
            s.add_clause(row);
        }
        for h in 0..m {
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    let (l1, l2) = (lit(&mut s, var(p1, h)), lit(&mut s, var(p2, h)));
                    s.add_clause([!l1, !l2]);
                }
            }
        }
        let parent = ResourceBudget::with_time(std::time::Duration::ZERO).arm();
        let child = parent.limit_time(std::time::Duration::from_secs(3600));
        let started = std::time::Instant::now();
        let r = s.solve_under_assumptions(&[], &child);
        assert_eq!(r, SolveResult::Unknown);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "child call must respect the parent's deadline"
        );
    }

    #[test]
    fn cloned_solver_is_independent_and_equivalent() {
        // The arena clone path the portfolio relies on: a clone answers
        // like the original and diverges cleanly on later additions.
        let mut s = Solver::new();
        let (a, b) = (lit(&mut s, 1), lit(&mut s, 2));
        s.add_clause([a, b]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let mut c = s.clone();
        assert_eq!(c.num_vars(), s.num_vars());
        assert_eq!(c.solve(), SolveResult::Sat);
        c.add_clause([!a]);
        c.add_clause([!b]);
        assert_eq!(c.solve(), SolveResult::Unsat);
        // The original is unaffected by the clone's extra clauses.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn forced_reduction_and_compaction_keep_answers() {
        // Learn a pile of clauses on a hard instance, then force
        // reductions until the arena compacts; the solver must stay
        // consistent and reusable.
        let mut s = Solver::new();
        let n = 7usize;
        let m = 6usize;
        let var = |p: usize, h: usize| (p * m + h + 1) as i64;
        for p in 0..n {
            let row: Vec<Lit> = (0..m).map(|h| lit(&mut s, var(p, h))).collect();
            s.add_clause(row);
        }
        for h in 0..m {
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    let (l1, l2) = (lit(&mut s, var(p1, h)), lit(&mut s, var(p2, h)));
                    s.add_clause([!l1, !l2]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().arena_bytes > 0);
    }

    #[test]
    fn export_and_import_flow_between_attached_solvers() {
        use crate::exchange::{ClauseExchange, ExchangePort, SharingConfig};
        use std::sync::Arc;

        // Worker 0 learns clauses on a hard UNSAT instance and exports
        // them; worker 1 then imports at its restart boundaries and must
        // reach the same answer.
        let build = |s: &mut Solver| {
            let n = 5usize;
            let m = 4usize;
            let var = |p: usize, h: usize| (p * m + h + 1) as i64;
            for p in 0..n {
                let row: Vec<Lit> = (0..m).map(|h| lit(s, var(p, h))).collect();
                s.add_clause(row);
            }
            for h in 0..m {
                for p1 in 0..n {
                    for p2 in (p1 + 1)..n {
                        let (l1, l2) = (lit(s, var(p1, h)), lit(s, var(p2, h)));
                        s.add_clause([!l1, !l2]);
                    }
                }
            }
        };
        let exchange = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let mut exporter = Solver::new();
        build(&mut exporter);
        exporter.set_clause_exchange(Some(ExchangePort::new(exchange.clone(), 0)));
        assert_eq!(exporter.solve(), SolveResult::Unsat);
        assert!(
            exporter.stats().clauses_exported > 0,
            "low-LBD clauses must be exported: {}",
            exporter.stats()
        );

        let mut importer = Solver::new();
        build(&mut importer);
        importer.set_clause_exchange(Some(ExchangePort::new(exchange, 1)));
        assert_eq!(importer.solve(), SolveResult::Unsat);
        assert!(
            importer.stats().clauses_imported > 0,
            "peer clauses must be imported: {}",
            importer.stats()
        );
    }
}

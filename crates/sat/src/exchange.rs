//! Learned-clause exchange between portfolio workers.
//!
//! A [`ClauseExchange`] holds one bounded, lock-free, append-only export
//! queue per worker. During search each worker *exports* learned clauses
//! whose LBD is at or below [`SharingConfig::lbd_max`] into its own queue
//! (single producer, one atomic store per publish) and *imports* its
//! peers' queues at restart boundaries through its [`ExchangePort`], which
//! tracks a read cursor per peer and deduplicates by clause hash. Shared
//! clauses are logical consequences of the common formula, so importing
//! them never changes SAT/UNSAT answers — it only prunes peer searches.
//!
//! The queues are bounded ([`SharingConfig::capacity`]): a worker that has
//! already published `capacity` clauses in one race simply stops
//! exporting, which keeps memory finite without ever blocking the search
//! thread. Imports are likewise capped per drain
//! ([`SharingConfig::import_cap`]); cursors persist, so clauses skipped by
//! the cap are picked up at the next restart.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::lit::Lit;

/// Tunables of the portfolio clause-sharing layer.
///
/// # Examples
///
/// ```
/// use sat::SharingConfig;
/// let cfg = SharingConfig::default();
/// assert!(cfg.lbd_max >= 2 && cfg.capacity > 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharingConfig {
    /// Only clauses with LBD at or below this glue threshold are exported
    /// (low-LBD clauses are the ones empirically worth sharing).
    pub lbd_max: u32,
    /// Clauses longer than this are never exported, whatever their LBD.
    pub max_len: usize,
    /// Per-worker export-queue capacity; further exports are dropped.
    pub capacity: usize,
    /// Maximum clauses imported per drain (one drain per restart).
    pub import_cap: usize,
}

impl Default for SharingConfig {
    fn default() -> Self {
        SharingConfig {
            lbd_max: 4,
            max_len: 32,
            capacity: 4096,
            import_cap: 512,
        }
    }
}

/// A published clause: its LBD at learning time plus the literals.
type SharedClause = (u32, Box<[Lit]>);

/// One worker's bounded single-producer export queue.
///
/// The producer writes a slot, then publishes it with a release store of
/// `len`; consumers acquire-load `len` and may then read every slot below
/// it. Slots are write-once, so consumers never observe torn clauses.
#[derive(Debug)]
struct ExportQueue {
    slots: Box<[OnceLock<SharedClause>]>,
    len: AtomicUsize,
}

impl ExportQueue {
    fn new(capacity: usize) -> Self {
        ExportQueue {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
        }
    }
}

/// Shared state of one portfolio race: a queue per worker plus the
/// sharing tunables.
#[derive(Debug)]
pub struct ClauseExchange {
    queues: Vec<ExportQueue>,
    config: SharingConfig,
}

impl ClauseExchange {
    /// An exchange for `workers` participants.
    pub fn new(workers: usize, config: SharingConfig) -> Self {
        ClauseExchange {
            queues: (0..workers)
                .map(|_| ExportQueue::new(config.capacity))
                .collect(),
            config,
        }
    }

    /// The sharing tunables this exchange was built with.
    pub fn config(&self) -> &SharingConfig {
        &self.config
    }

    /// Number of participating workers.
    pub fn num_workers(&self) -> usize {
        self.queues.len()
    }

    /// Publishes a clause into `worker`'s queue. Returns `false` when the
    /// queue is full (the clause is dropped — sharing is best-effort).
    fn publish(&self, worker: usize, lits: &[Lit], lbd: u32) -> bool {
        let q = &self.queues[worker];
        let idx = q.len.load(Ordering::Relaxed);
        if idx >= q.slots.len() {
            return false;
        }
        if q.slots[idx].set((lbd, lits.into())).is_err() {
            // A second producer raced this slot — contract violation, but
            // dropping the export is always safe.
            return false;
        }
        q.len.store(idx + 1, Ordering::Release);
        true
    }
}

/// A worker's handle onto a [`ClauseExchange`]: its identity, per-peer
/// read cursors, and the dedup filter for imports.
#[derive(Clone, Debug)]
pub struct ExchangePort {
    exchange: Arc<ClauseExchange>,
    worker: usize,
    cursors: Vec<usize>,
    seen: HashSet<u64>,
    scratch: Vec<u32>,
}

impl ExchangePort {
    /// A port for `worker` on `exchange`.
    pub fn new(exchange: Arc<ClauseExchange>, worker: usize) -> Self {
        let peers = exchange.num_workers();
        debug_assert!(worker < peers);
        ExchangePort {
            exchange,
            worker,
            cursors: vec![0; peers],
            seen: HashSet::new(),
            scratch: Vec::new(),
        }
    }

    /// Offers a learned clause for export. Returns `true` when the clause
    /// passed the LBD/length filters and was published.
    pub fn export(&mut self, lits: &[Lit], lbd: u32) -> bool {
        let cfg = self.exchange.config;
        if lits.is_empty() || lits.len() > cfg.max_len || lbd > cfg.lbd_max {
            return false;
        }
        // Remember own exports so a peer re-deriving the same clause does
        // not bounce it back in.
        let hash = Self::clause_hash(&mut self.scratch, lits);
        self.seen.insert(hash);
        self.exchange.publish(self.worker, lits, lbd)
    }

    /// Drains unread, not-yet-seen clauses from every peer queue, calling
    /// `f(lits, lbd)` for each, up to [`SharingConfig::import_cap`].
    pub fn drain(&mut self, f: &mut dyn FnMut(&[Lit], u32)) {
        let Self {
            exchange,
            worker,
            cursors,
            seen,
            scratch,
        } = self;
        let cap = exchange.config.import_cap;
        let mut taken = 0usize;
        for (peer, cursor) in cursors.iter_mut().enumerate() {
            if peer == *worker {
                continue;
            }
            let q = &exchange.queues[peer];
            let published = q.len.load(Ordering::Acquire).min(q.slots.len());
            while *cursor < published && taken < cap {
                let (lbd, lits) = q.slots[*cursor]
                    .get()
                    .expect("slots below len are published");
                *cursor += 1;
                if seen.insert(Self::clause_hash(scratch, lits)) {
                    f(lits, *lbd);
                    taken += 1;
                }
            }
            if taken >= cap {
                break;
            }
        }
    }

    /// Order-insensitive hash of a clause's literal set.
    fn clause_hash(scratch: &mut Vec<u32>, lits: &[Lit]) -> u64 {
        scratch.clear();
        scratch.extend(lits.iter().map(|l| l.code()));
        scratch.sort_unstable();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        scratch.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(v: &[i64]) -> Vec<Lit> {
        v.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn export_respects_filters_and_import_sees_peers_only() {
        let ex = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let mut a = ExchangePort::new(ex.clone(), 0);
        let mut b = ExchangePort::new(ex, 1);
        assert!(a.export(&lits(&[1, 2]), 2));
        assert!(!a.export(&lits(&[1, 2, 3]), 99), "high LBD filtered");
        let long: Vec<i64> = (1..=64).collect();
        assert!(!a.export(&lits(&long), 2), "long clause filtered");

        let mut got = Vec::new();
        b.drain(&mut |c, lbd| got.push((c.to_vec(), lbd)));
        assert_eq!(got, vec![(lits(&[1, 2]), 2)]);
        // Re-draining yields nothing new (cursor advanced).
        got.clear();
        b.drain(&mut |c, lbd| got.push((c.to_vec(), lbd)));
        assert!(got.is_empty());
        // The exporter never imports its own clause.
        got.clear();
        a.drain(&mut |c, lbd| got.push((c.to_vec(), lbd)));
        assert!(got.is_empty());
    }

    #[test]
    fn duplicate_clauses_are_imported_once() {
        let ex = Arc::new(ClauseExchange::new(3, SharingConfig::default()));
        let mut a = ExchangePort::new(ex.clone(), 0);
        let mut b = ExchangePort::new(ex.clone(), 1);
        let mut c = ExchangePort::new(ex, 2);
        assert!(a.export(&lits(&[1, -2]), 2));
        assert!(b.export(&lits(&[-2, 1]), 2), "same clause, permuted");
        let mut got = 0;
        c.drain(&mut |_, _| got += 1);
        assert_eq!(got, 1, "permutations of one clause dedup to one import");
    }

    #[test]
    fn own_export_is_not_bounced_back() {
        let ex = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let mut a = ExchangePort::new(ex.clone(), 0);
        let mut b = ExchangePort::new(ex, 1);
        assert!(a.export(&lits(&[3, 4]), 1));
        // Peer re-derives and re-exports the identical clause.
        assert!(b.export(&lits(&[4, 3]), 1));
        let mut got = 0;
        a.drain(&mut |_, _| got += 1);
        assert_eq!(got, 0, "a clause this worker exported is never imported");
    }

    #[test]
    fn capacity_bounds_exports_and_cap_bounds_imports() {
        let cfg = SharingConfig {
            capacity: 3,
            import_cap: 2,
            ..SharingConfig::default()
        };
        let ex = Arc::new(ClauseExchange::new(2, cfg));
        let mut a = ExchangePort::new(ex.clone(), 0);
        for i in 0..5i64 {
            let accepted = a.export(&lits(&[i + 1, -(i + 2)]), 2);
            assert_eq!(accepted, i < 3, "queue accepts exactly `capacity`");
        }
        let mut b = ExchangePort::new(ex, 1);
        let mut got = 0;
        b.drain(&mut |_, _| got += 1);
        assert_eq!(got, 2, "import_cap bounds one drain");
        b.drain(&mut |_, _| got += 1);
        assert_eq!(got, 3, "the cursor resumes at the next drain");
    }

    #[test]
    fn concurrent_export_import_is_race_free() {
        let ex = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let producer = ExchangePort::new(ex.clone(), 0);
        let consumer = ExchangePort::new(ex, 1);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut p = producer;
                for i in 1..=200i64 {
                    p.export(&lits(&[i, -(i + 1)]), 2);
                }
            });
            s.spawn(move || {
                let mut c = consumer;
                let mut total = 0usize;
                for _ in 0..50 {
                    c.drain(&mut |clause, _| {
                        assert_eq!(clause.len(), 2, "imported clauses arrive intact");
                        total += 1;
                    });
                }
                assert!(total <= 200);
            });
        });
    }
}

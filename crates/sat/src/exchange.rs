//! Learned-clause exchange between portfolio workers.
//!
//! A [`ClauseExchange`] holds one bounded, lock-free, append-only export
//! queue per worker. During search each worker *exports* learned clauses
//! whose LBD is at or below [`SharingConfig::lbd_max`] into its own queue
//! (single producer, one atomic store per publish) and *imports* its
//! peers' queues at restart boundaries through its [`ExchangePort`], which
//! tracks a read cursor per peer and deduplicates by clause hash. Shared
//! clauses are logical consequences of the common formula, so importing
//! them never changes SAT/UNSAT answers — it only prunes peer searches.
//!
//! The queues are bounded ([`SharingConfig::capacity`]): a worker that has
//! already published `capacity` clauses simply stops exporting, which
//! keeps memory finite without ever blocking the search thread. Imports
//! are likewise capped per drain ([`SharingConfig::import_cap`]); cursors
//! persist, so clauses skipped by the cap are picked up at the next
//! restart.
//!
//! **Cross-call persistence.** Ports survive detach/re-attach with their
//! cursors and dedup state intact ([`crate::Solver::take_clause_exchange`]),
//! so one exchange can span *successive* solve calls: refutation lemmas
//! published during an earlier call are imported by later calls. A worker
//! marks a call boundary on entry ([`ExchangePort::mark_call_boundary`]);
//! drains then distinguish clauses published before the boundary
//! (cross-call reuse, surfaced as [`crate::Stats::cross_call_imports`])
//! from clauses published during the current call. Soundness is preserved
//! because the clause set only ever grows between calls: a lemma implied
//! by an earlier, smaller formula is implied by every later one.
//!
//! **Adaptive thresholds.** Each port carries its own effective copy of
//! the sharing tunables; [`SharingConfig::adapted`] tightens `lbd_max` and
//! `import_cap` when observed import *usefulness* (imported clauses that
//! later join a conflict, [`crate::Stats::useful_imports`]) is low and
//! loosens them when the yield is high — the way modern portfolio solvers
//! throttle clause traffic per instance.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::lit::Lit;

/// Tunables of the portfolio clause-sharing layer.
///
/// # Examples
///
/// ```
/// use sat::SharingConfig;
/// let cfg = SharingConfig::default();
/// assert!(cfg.lbd_max >= 2 && cfg.capacity > 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharingConfig {
    /// Only clauses with LBD at or below this glue threshold are exported
    /// (low-LBD clauses are the ones empirically worth sharing).
    pub lbd_max: u32,
    /// Clauses longer than this are never exported, whatever their LBD.
    pub max_len: usize,
    /// Per-worker export-queue capacity; further exports are dropped.
    pub capacity: usize,
    /// Maximum clauses imported per drain (one drain per restart).
    pub import_cap: usize,
    /// When set, only clauses whose variables all lie below this index are
    /// exchanged. Workers that extend a *shared* formula with their own
    /// private definitional variables (e.g. the MaxSAT strategies' distinct
    /// totalizers) race soundly by limiting traffic to the shared prefix.
    pub var_limit: Option<usize>,
    /// Instances smaller than this (variables + clauses) skip clause
    /// sharing entirely: on small formulas the exchange overhead exceeds
    /// any pruning benefit (`sharing/on` is ~1.4x slower than
    /// `sharing/off` at fig3 scale). Set to 0 to share unconditionally.
    pub min_instance_size: usize,
}

impl Default for SharingConfig {
    fn default() -> Self {
        SharingConfig {
            lbd_max: 4,
            max_len: 32,
            capacity: 4096,
            import_cap: 512,
            var_limit: None,
            min_instance_size: DEFAULT_MIN_INSTANCE_SIZE,
        }
    }
}

/// Default [`SharingConfig::min_instance_size`]: comfortably above the
/// fig3-scale routing encodings where sharing measured as a net loss
/// (fig3 on Tokyo− encodes to ~3.9k variables + hard clauses), and below
/// the paper-scale device encodings where it pays off.
pub const DEFAULT_MIN_INSTANCE_SIZE: usize = 5000;

/// Bounds the adaptive walk of [`SharingConfig::adapted`].
const ADAPT_LBD_MIN: u32 = 2;
const ADAPT_LBD_MAX: u32 = 8;
const ADAPT_CAP_MIN: usize = 64;
const ADAPT_CAP_MAX: usize = 4096;

impl SharingConfig {
    /// Minimum observed imports before [`SharingConfig::adapted`] reacts
    /// (smaller samples are statistically meaningless).
    pub const ADAPT_SAMPLE: u64 = 64;

    /// Returns thresholds tuned by the observed import yield: of
    /// `imported` clauses taken in, `useful` later participated in a
    /// conflict. A low yield (< 5%) tightens `lbd_max`/`import_cap`
    /// (import less, only the best glue); a high yield (> 25%) loosens
    /// them. Below [`SharingConfig::ADAPT_SAMPLE`] imports the config is
    /// returned unchanged.
    #[must_use]
    pub fn adapted(mut self, imported: u64, useful: u64) -> SharingConfig {
        if imported < Self::ADAPT_SAMPLE {
            return self;
        }
        let yield_rate = useful as f64 / imported as f64;
        if yield_rate < 0.05 {
            self.lbd_max = self.lbd_max.saturating_sub(1).max(ADAPT_LBD_MIN);
            self.import_cap = (self.import_cap / 2).max(ADAPT_CAP_MIN);
        } else if yield_rate > 0.25 {
            self.lbd_max = (self.lbd_max + 1).min(ADAPT_LBD_MAX);
            self.import_cap = (self.import_cap * 2).min(ADAPT_CAP_MAX);
        }
        self
    }
}

/// A published clause: its LBD at learning time plus the literals.
type SharedClause = (u32, Box<[Lit]>);

/// One worker's bounded single-producer export queue.
///
/// The producer writes a slot, then publishes it with a release store of
/// `len`; consumers acquire-load `len` and may then read every slot below
/// it. Slots are write-once, so consumers never observe torn clauses.
#[derive(Debug)]
struct ExportQueue {
    slots: Box<[OnceLock<SharedClause>]>,
    len: AtomicUsize,
}

impl ExportQueue {
    fn new(capacity: usize) -> Self {
        ExportQueue {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
        }
    }
}

/// Shared state of one portfolio race: a queue per worker plus the
/// sharing tunables.
#[derive(Debug)]
pub struct ClauseExchange {
    queues: Vec<ExportQueue>,
    config: SharingConfig,
}

impl ClauseExchange {
    /// An exchange for `workers` participants.
    pub fn new(workers: usize, config: SharingConfig) -> Self {
        ClauseExchange {
            queues: (0..workers)
                .map(|_| ExportQueue::new(config.capacity))
                .collect(),
            config,
        }
    }

    /// The sharing tunables this exchange was built with.
    pub fn config(&self) -> &SharingConfig {
        &self.config
    }

    /// Number of participating workers.
    pub fn num_workers(&self) -> usize {
        self.queues.len()
    }

    /// True once *any* export queue is full: queues are append-only
    /// lifetime buffers, so a worker whose queue hit capacity can never
    /// export again — the owner should rotate the exchange rather than
    /// let one prolific worker's sharing silently decay to zero while a
    /// quiet peer's queue stays open.
    pub fn is_saturated(&self) -> bool {
        self.queues
            .iter()
            .any(|q| q.len.load(Ordering::Relaxed) >= q.slots.len())
    }

    /// Publishes a clause into `worker`'s queue. Returns `false` when the
    /// queue is full (the clause is dropped — sharing is best-effort).
    fn publish(&self, worker: usize, lits: &[Lit], lbd: u32) -> bool {
        let q = &self.queues[worker];
        let idx = q.len.load(Ordering::Relaxed);
        if idx >= q.slots.len() {
            return false;
        }
        if q.slots[idx].set((lbd, lits.into())).is_err() {
            // A second producer raced this slot — contract violation, but
            // dropping the export is always safe.
            return false;
        }
        q.len.store(idx + 1, Ordering::Release);
        true
    }
}

/// A worker's handle onto a [`ClauseExchange`]: its identity, per-peer
/// read cursors, the dedup filter for imports, and its own (retunable)
/// copy of the sharing thresholds.
#[derive(Clone, Debug)]
pub struct ExchangePort {
    exchange: Arc<ClauseExchange>,
    worker: usize,
    cursors: Vec<usize>,
    /// Per-peer published length at the most recent call boundary; slots
    /// below it were exported during an earlier solve call.
    boundary: Vec<usize>,
    /// True when the boundary was pre-marked by the port's owner (e.g. a
    /// portfolio, before spawning a race) and the next
    /// [`ExchangePort::begin_call`] must not re-snapshot it.
    premarked: bool,
    seen: HashSet<u64>,
    scratch: Vec<u32>,
    /// Effective thresholds; starts as the exchange's config, adjustable
    /// per instance via [`ExchangePort::retune`] (queue capacity stays a
    /// property of the exchange).
    config: SharingConfig,
}

impl ExchangePort {
    /// A port for `worker` on `exchange`.
    pub fn new(exchange: Arc<ClauseExchange>, worker: usize) -> Self {
        let peers = exchange.num_workers();
        debug_assert!(worker < peers);
        let config = exchange.config;
        ExchangePort {
            exchange,
            worker,
            cursors: vec![0; peers],
            boundary: vec![0; peers],
            premarked: false,
            seen: HashSet::new(),
            scratch: Vec::new(),
            config,
        }
    }

    /// This port's worker index on the exchange.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The effective sharing thresholds this port currently applies.
    pub fn config(&self) -> &SharingConfig {
        &self.config
    }

    /// Replaces the effective thresholds (LBD/length filters, import cap,
    /// variable limit). Queue capacity is fixed per exchange and ignored
    /// here.
    pub fn retune(&mut self, config: SharingConfig) {
        self.config = config;
    }

    /// A port for `worker` sharing this port's read position and dedup
    /// state. Used when a portfolio rebuilds a peer as a clone of its
    /// primary: the clone already contains everything the primary
    /// imported, so it must resume from the primary's cursors instead of
    /// re-importing history.
    #[must_use]
    pub fn for_worker(&self, worker: usize) -> ExchangePort {
        debug_assert!(worker < self.exchange.num_workers());
        let mut port = self.clone();
        port.worker = worker;
        port
    }

    /// A fresh port on `exchange` for `worker` that keeps this port's
    /// dedup knowledge (so clauses already imported are not taken again)
    /// but resets cursors for the new exchange's empty queues. Used when a
    /// saturated exchange is rotated out.
    #[must_use]
    pub fn rebind(&self, exchange: Arc<ClauseExchange>, worker: usize) -> ExchangePort {
        let peers = exchange.num_workers();
        debug_assert!(worker < peers);
        ExchangePort {
            exchange,
            worker,
            cursors: vec![0; peers],
            boundary: vec![0; peers],
            premarked: false,
            seen: self.seen.clone(),
            scratch: Vec::new(),
            config: self.config,
        }
    }

    /// Snapshots every peer queue's published length: clauses below the
    /// snapshot belong to earlier solve calls, and importing one later is
    /// *cross-call* reuse.
    ///
    /// Owners that hand ports to several workers (a portfolio race) call
    /// this once per port *before* spawning, so every worker measures the
    /// same boundary; the subsequent [`ExchangePort::begin_call`] then
    /// keeps the pre-marked snapshot instead of re-taking it mid-race
    /// (which would misclassify a faster peer's same-call exports).
    pub fn mark_call_boundary(&mut self) {
        for (peer, b) in self.boundary.iter_mut().enumerate() {
            let q = &self.exchange.queues[peer];
            *b = q.len.load(Ordering::Acquire).min(q.slots.len());
        }
        self.premarked = true;
    }

    /// Establishes the call boundary on entry to a solve call: consumes a
    /// pre-marked snapshot if the owner took one, otherwise snapshots now
    /// (the standalone-solver case, where the solve entry *is* the call
    /// boundary).
    pub fn begin_call(&mut self) {
        if self.premarked {
            self.premarked = false;
        } else {
            self.mark_call_boundary();
            self.premarked = false;
        }
    }

    /// Offers a learned clause for export. Returns `true` when the clause
    /// passed the LBD/length/variable filters and was published.
    pub fn export(&mut self, lits: &[Lit], lbd: u32) -> bool {
        let cfg = &self.config;
        if lits.is_empty() || lits.len() > cfg.max_len || lbd > cfg.lbd_max {
            return false;
        }
        if let Some(limit) = cfg.var_limit {
            if lits.iter().any(|l| l.var().index() >= limit) {
                return false;
            }
        }
        // Remember own exports so a peer re-deriving the same clause does
        // not bounce it back in.
        let hash = Self::clause_hash(&mut self.scratch, lits);
        self.seen.insert(hash);
        self.exchange.publish(self.worker, lits, lbd)
    }

    /// Drains unread, not-yet-seen clauses from every peer queue, calling
    /// `f(lits, lbd, cross_call)` for each, up to
    /// [`SharingConfig::import_cap`]. `cross_call` is `true` for clauses
    /// published before the most recent [`ExchangePort::mark_call_boundary`].
    pub fn drain(&mut self, f: &mut dyn FnMut(&[Lit], u32, bool)) {
        let Self {
            exchange,
            worker,
            cursors,
            boundary,
            seen,
            scratch,
            config,
            ..
        } = self;
        let cap = config.import_cap;
        let mut taken = 0usize;
        for (peer, cursor) in cursors.iter_mut().enumerate() {
            if peer == *worker {
                continue;
            }
            let q = &exchange.queues[peer];
            let published = q.len.load(Ordering::Acquire).min(q.slots.len());
            while *cursor < published && taken < cap {
                let slot = *cursor;
                let (lbd, lits) = q.slots[slot].get().expect("slots below len are published");
                *cursor += 1;
                if let Some(limit) = config.var_limit {
                    // Defense in depth: the exporter already filtered, but
                    // a clause over private variables must never cross.
                    if lits.iter().any(|l| l.var().index() >= limit) {
                        continue;
                    }
                }
                if seen.insert(Self::clause_hash(scratch, lits)) {
                    f(lits, *lbd, slot < boundary[peer]);
                    taken += 1;
                }
            }
            if taken >= cap {
                break;
            }
        }
    }

    /// Order-insensitive hash of a clause's literal set.
    fn clause_hash(scratch: &mut Vec<u32>, lits: &[Lit]) -> u64 {
        scratch.clear();
        scratch.extend(lits.iter().map(|l| l.code()));
        scratch.sort_unstable();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        scratch.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(v: &[i64]) -> Vec<Lit> {
        v.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn export_respects_filters_and_import_sees_peers_only() {
        let ex = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let mut a = ExchangePort::new(ex.clone(), 0);
        let mut b = ExchangePort::new(ex, 1);
        assert!(a.export(&lits(&[1, 2]), 2));
        assert!(!a.export(&lits(&[1, 2, 3]), 99), "high LBD filtered");
        let long: Vec<i64> = (1..=64).collect();
        assert!(!a.export(&lits(&long), 2), "long clause filtered");

        let mut got = Vec::new();
        b.drain(&mut |c, lbd, _| got.push((c.to_vec(), lbd)));
        assert_eq!(got, vec![(lits(&[1, 2]), 2)]);
        // Re-draining yields nothing new (cursor advanced).
        got.clear();
        b.drain(&mut |c, lbd, _| got.push((c.to_vec(), lbd)));
        assert!(got.is_empty());
        // The exporter never imports its own clause.
        got.clear();
        a.drain(&mut |c, lbd, _| got.push((c.to_vec(), lbd)));
        assert!(got.is_empty());
    }

    #[test]
    fn duplicate_clauses_are_imported_once() {
        let ex = Arc::new(ClauseExchange::new(3, SharingConfig::default()));
        let mut a = ExchangePort::new(ex.clone(), 0);
        let mut b = ExchangePort::new(ex.clone(), 1);
        let mut c = ExchangePort::new(ex, 2);
        assert!(a.export(&lits(&[1, -2]), 2));
        assert!(b.export(&lits(&[-2, 1]), 2), "same clause, permuted");
        let mut got = 0;
        c.drain(&mut |_, _, _| got += 1);
        assert_eq!(got, 1, "permutations of one clause dedup to one import");
    }

    #[test]
    fn own_export_is_not_bounced_back() {
        let ex = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let mut a = ExchangePort::new(ex.clone(), 0);
        let mut b = ExchangePort::new(ex, 1);
        assert!(a.export(&lits(&[3, 4]), 1));
        // Peer re-derives and re-exports the identical clause.
        assert!(b.export(&lits(&[4, 3]), 1));
        let mut got = 0;
        a.drain(&mut |_, _, _| got += 1);
        assert_eq!(got, 0, "a clause this worker exported is never imported");
    }

    #[test]
    fn capacity_bounds_exports_and_cap_bounds_imports() {
        let cfg = SharingConfig {
            capacity: 3,
            import_cap: 2,
            ..SharingConfig::default()
        };
        let ex = Arc::new(ClauseExchange::new(2, cfg));
        let mut a = ExchangePort::new(ex.clone(), 0);
        for i in 0..5i64 {
            let accepted = a.export(&lits(&[i + 1, -(i + 2)]), 2);
            assert_eq!(accepted, i < 3, "queue accepts exactly `capacity`");
        }
        let mut b = ExchangePort::new(ex, 1);
        let mut got = 0;
        b.drain(&mut |_, _, _| got += 1);
        assert_eq!(got, 2, "import_cap bounds one drain");
        b.drain(&mut |_, _, _| got += 1);
        assert_eq!(got, 3, "the cursor resumes at the next drain");
    }

    #[test]
    fn var_limit_blocks_private_variables_both_ways() {
        let cfg = SharingConfig {
            var_limit: Some(3),
            ..SharingConfig::default()
        };
        let ex = Arc::new(ClauseExchange::new(2, cfg));
        let mut a = ExchangePort::new(ex.clone(), 0);
        // Vars 0..3 are shared (dimacs 1..=3); dimacs 4 is private.
        assert!(a.export(&lits(&[1, -3]), 2));
        assert!(!a.export(&lits(&[2, 4]), 2), "private var must not export");
        let mut b = ExchangePort::new(ex, 1);
        let mut got = Vec::new();
        b.drain(&mut |c, _, _| got.push(c.to_vec()));
        assert_eq!(got, vec![lits(&[1, -3])]);
    }

    #[test]
    fn call_boundary_distinguishes_cross_call_imports() {
        let ex = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let mut a = ExchangePort::new(ex.clone(), 0);
        let mut b = ExchangePort::new(ex, 1);
        assert!(a.export(&lits(&[1, 2]), 2)); // "call 1" export
        b.mark_call_boundary(); // a new call begins: prior exports are carried
        assert!(a.export(&lits(&[2, 3]), 2)); // same-call export
        let mut carried = Vec::new();
        b.drain(&mut |c, _, cross| carried.push((c.to_vec(), cross)));
        assert_eq!(
            carried,
            vec![(lits(&[1, 2]), true), (lits(&[2, 3]), false)],
            "only the pre-boundary clause counts as cross-call"
        );
    }

    #[test]
    fn begin_call_keeps_a_premarked_boundary() {
        let ex = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let mut a = ExchangePort::new(ex.clone(), 0);
        let mut b = ExchangePort::new(ex, 1);
        assert!(a.export(&lits(&[1, 2]), 2)); // previous call's export
        b.mark_call_boundary(); // owner cuts before spawning the race
        assert!(a.export(&lits(&[2, 3]), 2)); // same-call export by a peer
        b.begin_call(); // the worker's entry must keep the owner's cut
        let mut carried = Vec::new();
        b.drain(&mut |c, _, cross| carried.push((c.to_vec(), cross)));
        assert_eq!(
            carried,
            vec![(lits(&[1, 2]), true), (lits(&[2, 3]), false)],
            "a pre-marked boundary is not re-taken at call entry"
        );
        // Without a premark, begin_call snapshots (standalone solver).
        assert!(a.export(&lits(&[3, 4]), 2));
        b.begin_call();
        carried.clear();
        b.drain(&mut |c, _, cross| carried.push((c.to_vec(), cross)));
        assert_eq!(carried, vec![(lits(&[3, 4]), true)]);
    }

    #[test]
    fn for_worker_resumes_from_shared_cursors() {
        let ex = Arc::new(ClauseExchange::new(3, SharingConfig::default()));
        let mut a = ExchangePort::new(ex.clone(), 0);
        let mut b = ExchangePort::new(ex, 1);
        assert!(b.export(&lits(&[1, 2]), 2));
        let mut got = 0;
        a.drain(&mut |_, _, _| got += 1);
        assert_eq!(got, 1);
        // A rebuilt peer derived from `a` must not re-import what `a`
        // already took (its arena clone contains the clause).
        let mut peer = a.for_worker(2);
        assert_eq!(peer.worker(), 2);
        let mut again = 0;
        peer.drain(&mut |_, _, _| again += 1);
        assert_eq!(again, 0, "cursors carried over from the template port");
    }

    #[test]
    fn rebind_keeps_dedup_but_reads_the_new_exchange() {
        let cfg = SharingConfig {
            capacity: 1,
            ..SharingConfig::default()
        };
        let ex1 = Arc::new(ClauseExchange::new(2, cfg));
        let mut a = ExchangePort::new(ex1.clone(), 0);
        let mut b = ExchangePort::new(ex1.clone(), 1);
        assert!(!ex1.is_saturated(), "fresh queues are open");
        assert!(a.export(&lits(&[5, 6]), 2));
        assert!(
            ex1.is_saturated(),
            "any full queue saturates the exchange (that worker can never \
             export again)"
        );
        assert!(b.export(&lits(&[1, 2]), 2));
        let mut got = 0;
        a.drain(&mut |_, _, _| got += 1);
        assert_eq!(got, 1);

        // Rotate to a fresh exchange; the re-published duplicate is
        // filtered by the carried dedup state, new clauses flow.
        let ex2 = Arc::new(ClauseExchange::new(2, cfg));
        let mut a2 = a.rebind(ex2.clone(), 0);
        let mut b2 = b.rebind(ex2, 1);
        assert!(b2.export(&lits(&[2, 1]), 2), "export to the new queue");
        let mut seen = 0;
        a2.drain(&mut |_, _, _| seen += 1);
        assert_eq!(seen, 0, "duplicate of an already-imported clause");
    }

    #[test]
    fn adapted_tightens_on_low_yield_and_loosens_on_high() {
        let base = SharingConfig::default();
        let unchanged = base.adapted(SharingConfig::ADAPT_SAMPLE - 1, 0);
        assert_eq!(unchanged, base, "small samples are ignored");

        let tightened = base.adapted(1000, 10); // 1% useful
        assert!(tightened.lbd_max < base.lbd_max);
        assert!(tightened.import_cap < base.import_cap);
        // Repeated tightening bottoms out at the floor.
        let mut floor = base;
        for _ in 0..16 {
            floor = floor.adapted(1000, 0);
        }
        assert_eq!(floor.lbd_max, ADAPT_LBD_MIN);
        assert_eq!(floor.import_cap, ADAPT_CAP_MIN);

        let loosened = floor.adapted(1000, 900); // 90% useful
        assert!(loosened.lbd_max > floor.lbd_max);
        assert!(loosened.import_cap > floor.import_cap);
        // A middling yield holds steady.
        assert_eq!(loosened.adapted(1000, 150), loosened);
    }

    #[test]
    fn retune_overrides_port_thresholds() {
        let ex = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let mut a = ExchangePort::new(ex, 0);
        assert!(a.export(&lits(&[1, 2, 3]), 4), "LBD 4 passes the default");
        a.retune(SharingConfig {
            lbd_max: 2,
            ..SharingConfig::default()
        });
        assert!(!a.export(&lits(&[3, 4, 5]), 4), "retuned filter rejects");
        assert_eq!(a.config().lbd_max, 2);
    }

    #[test]
    fn concurrent_export_import_is_race_free() {
        let ex = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let producer = ExchangePort::new(ex.clone(), 0);
        let consumer = ExchangePort::new(ex, 1);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut p = producer;
                for i in 1..=200i64 {
                    p.export(&lits(&[i, -(i + 1)]), 2);
                }
            });
            s.spawn(move || {
                let mut c = consumer;
                let mut total = 0usize;
                for _ in 0..50 {
                    c.drain(&mut |clause, _, _| {
                        assert_eq!(clause.len(), 2, "imported clauses arrive intact");
                        total += 1;
                    });
                }
                assert!(total <= 200);
            });
        });
    }
}

//! Solver-effort accounting that flows *up* the stack.
//!
//! Every layer above the SAT solver (the MaxSAT engine, the SATMAP slice
//! loop, the OLSQ baselines) produces a [`SolverTelemetry`] describing the
//! work a call performed; parents absorb their children's records, and the
//! experiment runner reports the totals next to swap counts so the paper
//! tables show solver effort, not just solution quality.

use std::time::Duration;

/// Aggregated solver effort for one routing (or MaxSAT) call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverTelemetry {
    /// Number of individual SAT-solver invocations.
    pub sat_calls: u64,
    /// Conflicts across all SAT calls.
    pub conflicts: u64,
    /// Branching decisions across all SAT calls.
    pub decisions: u64,
    /// Unit propagations across all SAT calls.
    pub propagations: u64,
    /// Solver restarts across all SAT calls.
    pub restarts: u64,
    /// Learned-clause database reductions across all SAT calls.
    pub db_reductions: u64,
    /// Learned clauses exported to portfolio peers across all SAT calls.
    pub clauses_exported: u64,
    /// Learned clauses imported from portfolio peers across all SAT calls.
    pub clauses_imported: u64,
    /// Imported clauses that later participated in a conflict resolution
    /// (the yield signal behind the adaptive sharing thresholds).
    pub useful_imports: u64,
    /// Imported clauses published during an *earlier* SAT call (cross-call
    /// lemma reuse through a persistent clause exchange).
    pub cross_call_imports: u64,
    /// Clause-arena garbage collections across all SAT calls.
    pub compactions: u64,
    /// Portfolio workers retired after panicking mid-race (the race
    /// continued on the survivors).
    pub worker_panics: u64,
    /// Peak clause-arena footprint in bytes observed across the call tree
    /// (a gauge: absorbing a child takes the maximum, not the sum).
    pub arena_bytes: u64,
    /// Time spent building encodings (clauses, totalizers).
    pub encode_time: Duration,
    /// Time spent inside SAT `solve` calls.
    pub solve_time: Duration,
    /// Slices solved by the local relaxation (0 for monolithic solving).
    pub slices: u64,
    /// Backtracking steps taken across slice boundaries.
    pub backtracks: u64,
    /// Portfolio solving only: index of the worker that produced the most
    /// recent definitive answer (`None` for single-threaded backends).
    pub winning_worker: Option<u32>,
    /// MaxSAT engine only: name of the search strategy that produced the
    /// answer (for a strategy race, the winner). `None` outside MaxSAT.
    pub strategy: Option<&'static str>,
    /// Total worker count the instance-feature dispatcher resolved for
    /// this call (0 when no dispatch decision was made, e.g. plain SAT).
    pub dispatch_width: u32,
    /// Strategy mix of the dispatched worker plan (`"linear"`,
    /// `"core-guided"`, or `"linear+core-guided"`); `None` outside the
    /// dispatched MaxSAT path.
    pub dispatch_mix: Option<&'static str>,
    /// Whether the dispatched plan enabled clause sharing.
    pub dispatch_sharing: bool,
    /// The instance-hardness signal (vars + hard clauses, or the encoding
    /// estimate pre-encode) the dispatcher sized the plan from.
    pub dispatch_hardness: u64,
    /// Weight strata the core-guided search partitioned the softs into
    /// (0 outside the stratified core-guided path; 1 = uniform weights,
    /// no stratification took effect). A gauge: absorbing takes the max.
    pub strata: u64,
    /// Core-exhaustion probes that paid an extra weight unit into the
    /// lower bound (UNSAT re-solves against a freshly relaxed core's
    /// tightened totalizer bound, inside one search iteration).
    pub exhaustion_steps: u64,
    /// Soft indicators asserted hard because their weight exceeded the
    /// incumbent-minus-lower-bound gap (RC2-style hardening).
    pub hardened_softs: u64,
    /// Whether this outcome was served from a route cache without solving.
    pub cache_hit: bool,
    /// Whether the solve warm-started from a prior session's clause DB and
    /// bounds instead of encoding and searching from scratch.
    pub warm_start: bool,
    /// Clauses carried into the solve from a prior session's arena instead
    /// of being re-emitted (0 for cold solves).
    pub reused_clauses: u64,
    /// Caller-assigned correlation id of the request this effort served
    /// (`None` outside a server or sweep context). Travels in the
    /// telemetry so it survives aggregation and reaches the JSON row.
    pub request_id: Option<u64>,
}

impl SolverTelemetry {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a child call's effort into this record.
    pub fn absorb(&mut self, child: &SolverTelemetry) {
        self.sat_calls += child.sat_calls;
        self.conflicts += child.conflicts;
        self.decisions += child.decisions;
        self.propagations += child.propagations;
        self.restarts += child.restarts;
        self.db_reductions += child.db_reductions;
        self.clauses_exported += child.clauses_exported;
        self.clauses_imported += child.clauses_imported;
        self.useful_imports += child.useful_imports;
        self.cross_call_imports += child.cross_call_imports;
        self.compactions += child.compactions;
        self.worker_panics += child.worker_panics;
        self.arena_bytes = self.arena_bytes.max(child.arena_bytes);
        self.encode_time += child.encode_time;
        self.solve_time += child.solve_time;
        self.slices += child.slices;
        self.backtracks += child.backtracks;
        if child.winning_worker.is_some() {
            self.winning_worker = child.winning_worker;
        }
        if child.strategy.is_some() {
            self.strategy = child.strategy;
        }
        // The dispatch decision of the widest child describes the call
        // tree (retries re-dispatch; the sliced loop dispatches per
        // slice — the peak width is what capacity planning needs).
        self.dispatch_width = self.dispatch_width.max(child.dispatch_width);
        if child.dispatch_mix.is_some() {
            self.dispatch_mix = child.dispatch_mix;
        }
        self.dispatch_sharing |= child.dispatch_sharing;
        self.dispatch_hardness = self.dispatch_hardness.max(child.dispatch_hardness);
        self.strata = self.strata.max(child.strata);
        self.exhaustion_steps += child.exhaustion_steps;
        self.hardened_softs += child.hardened_softs;
        self.cache_hit |= child.cache_hit;
        self.warm_start |= child.warm_start;
        self.reused_clauses += child.reused_clauses;
        // The parent's id identifies the request being served; a child
        // call's id only fills the gap when the parent has none.
        if self.request_id.is_none() {
            self.request_id = child.request_id;
        }
    }
}

impl std::fmt::Display for SolverTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sat_calls={} conflicts={} restarts={} slices={} backtracks={} encode={:.3}s solve={:.3}s",
            self.sat_calls,
            self.conflicts,
            self.restarts,
            self.slices,
            self.backtracks,
            self.encode_time.as_secs_f64(),
            self.solve_time.as_secs_f64()
        )?;
        if let Some(w) = self.winning_worker {
            write!(f, " winner={w}")?;
        }
        if let Some(s) = self.strategy {
            write!(f, " strategy={s}")?;
        }
        if let Some(mix) = self.dispatch_mix {
            write!(
                f,
                " dispatch={mix}x{} sharing={}",
                self.dispatch_width, self.dispatch_sharing
            )?;
        }
        if self.strata > 0 {
            write!(
                f,
                " strata={} exhaustion={} hardened={}",
                self.strata, self.exhaustion_steps, self.hardened_softs
            )?;
        }
        if self.cache_hit {
            write!(f, " cache_hit")?;
        }
        if self.warm_start {
            write!(f, " warm_start reused_clauses={}", self.reused_clauses)?;
        }
        if let Some(id) = self.request_id {
            write!(f, " request={id}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut parent = SolverTelemetry {
            sat_calls: 1,
            conflicts: 10,
            slices: 1,
            ..SolverTelemetry::new()
        };
        let child = SolverTelemetry {
            sat_calls: 2,
            conflicts: 5,
            backtracks: 3,
            clauses_exported: 4,
            clauses_imported: 2,
            compactions: 1,
            arena_bytes: 1024,
            encode_time: Duration::from_millis(4),
            solve_time: Duration::from_millis(6),
            ..SolverTelemetry::new()
        };
        parent.absorb(&child);
        assert_eq!(parent.sat_calls, 3);
        assert_eq!(parent.conflicts, 15);
        assert_eq!(parent.slices, 1);
        assert_eq!(parent.backtracks, 3);
        assert_eq!(parent.clauses_exported, 4);
        assert_eq!(parent.clauses_imported, 2);
        assert_eq!(parent.compactions, 1);
        assert_eq!(parent.arena_bytes, 1024, "gauge absorbs by max");
        parent.absorb(&SolverTelemetry {
            arena_bytes: 512,
            ..SolverTelemetry::new()
        });
        assert_eq!(parent.arena_bytes, 1024, "smaller child keeps the peak");
        assert_eq!(parent.encode_time, Duration::from_millis(4));
        assert_eq!(parent.solve_time, Duration::from_millis(6));
    }

    #[test]
    fn absorb_keeps_the_parent_request_id() {
        let mut parent = SolverTelemetry {
            request_id: Some(3),
            ..SolverTelemetry::new()
        };
        parent.absorb(&SolverTelemetry {
            request_id: Some(9),
            ..SolverTelemetry::new()
        });
        assert_eq!(parent.request_id, Some(3), "parent id wins");
        let mut empty = SolverTelemetry::new();
        empty.absorb(&parent);
        assert_eq!(empty.request_id, Some(3), "child id fills a gap");
        assert!(empty.to_string().contains("request=3"));
    }

    #[test]
    fn display_is_compact() {
        let t = SolverTelemetry::new();
        let s = t.to_string();
        assert!(s.contains("sat_calls=0"));
        assert!(s.contains("solve=0.000s"));
        assert!(!s.contains("dispatch="), "no dispatch decision, no noise");
    }

    #[test]
    fn absorb_stratification_fields() {
        let mut parent = SolverTelemetry {
            strata: 2,
            exhaustion_steps: 3,
            hardened_softs: 1,
            ..SolverTelemetry::new()
        };
        parent.absorb(&SolverTelemetry {
            strata: 5,
            exhaustion_steps: 4,
            hardened_softs: 2,
            ..SolverTelemetry::new()
        });
        assert_eq!(parent.strata, 5, "strata is a gauge: max wins");
        assert_eq!(parent.exhaustion_steps, 7, "exhaustion steps sum");
        assert_eq!(parent.hardened_softs, 3, "hardened softs sum");
        assert!(parent
            .to_string()
            .contains("strata=5 exhaustion=7 hardened=3"));
        assert!(
            !SolverTelemetry::new().to_string().contains("strata="),
            "no stratified search, no noise"
        );
    }

    #[test]
    fn absorb_keeps_the_peak_dispatch_decision() {
        let mut parent = SolverTelemetry {
            dispatch_width: 1,
            dispatch_mix: Some("linear"),
            dispatch_hardness: 100,
            ..SolverTelemetry::new()
        };
        parent.absorb(&SolverTelemetry {
            dispatch_width: 4,
            dispatch_mix: Some("linear+core-guided"),
            dispatch_sharing: true,
            dispatch_hardness: 9000,
            ..SolverTelemetry::new()
        });
        assert_eq!(parent.dispatch_width, 4, "peak width wins");
        assert_eq!(parent.dispatch_mix, Some("linear+core-guided"));
        assert!(parent.dispatch_sharing);
        assert_eq!(parent.dispatch_hardness, 9000);
        parent.absorb(&SolverTelemetry::new());
        assert_eq!(
            parent.dispatch_mix,
            Some("linear+core-guided"),
            "an empty child does not erase the decision"
        );
        assert!(parent.to_string().contains("dispatch=linear+core-guidedx4"));
    }
}

//! Clause storage: a flat arena.
//!
//! All clauses live in one contiguous word buffer ([`ClauseDb`]) and are
//! addressed by [`ClauseRef`]s that are plain *word offsets* into it. Each
//! clause occupies `HEADER_WORDS + len` consecutive words:
//!
//! ```text
//! word 0   header: bit 0 = deleted, bit 1 = learnt, bit 2 = imported,
//!          bits 3..12 = LBD (saturating at 511), bits 12..32 = length
//! word 1   activity (f32 bits) — bump-based score for reduction
//! word 2+  the literals, one packed `Lit` code per word
//! ```
//!
//! The *imported* bit marks clauses that arrived through the portfolio
//! clause exchange; conflict analysis clears it the first time such a
//! clause participates in a resolution, which is how the solver measures
//! import *usefulness* (the signal the adaptive sharing thresholds feed
//! on).
//!
//! Compared to one heap `Vec<Lit>` per clause this cuts allocator traffic
//! on the learn path to a buffer append, makes cloning a whole formula for
//! a portfolio worker a single `memcpy` of the buffer, and gives unit
//! propagation cache-contiguous literal reads. Freeing a clause only flags
//! its header; the dead words are reclaimed by [`ClauseDb::compact`], a
//! garbage-collecting pass the solver triggers when the dead fraction
//! crosses [`ClauseDb::should_compact`]'s threshold. Compaction returns a
//! [`ClauseRemap`] the solver uses to rewrite watch lists and reason
//! references.
//!
//! The buffer is a `Vec<Lit>` rather than `Vec<u32>` so literal slices can
//! be handed out in place without `unsafe`; header words round-trip
//! through [`Lit::from_code`]/[`Lit::code`], which is a zero-cost newtype
//! cast.

use crate::lit::Lit;

/// Words of metadata preceding each clause's literals.
const HEADER_WORDS: usize = 2;

/// Maximum representable clause length (20 header bits).
const MAX_LEN: usize = (1 << 20) - 1;

/// Maximum representable LBD (9 header bits); larger values saturate.
const MAX_LBD: u32 = (1 << 9) - 1;

/// Handle to a clause inside the solver's flat clause arena: the word
/// offset of its header.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// Returns the raw arena word offset (useful for debugging/statistics).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Flat arena of clauses addressed by [`ClauseRef`].
#[derive(Clone, Debug, Default)]
pub(crate) struct ClauseDb {
    /// The word buffer; headers are stored through the `Lit` code
    /// round-trip (see module docs).
    words: Vec<Lit>,
    /// Words occupied by freed clauses, reclaimable by [`Self::compact`].
    wasted: usize,
    /// Offsets of learned clauses (pruned lazily; may contain deleted
    /// entries until [`Self::prune_learnts`] runs).
    learnts: Vec<ClauseRef>,
    /// Number of live (non-deleted) learned clauses.
    pub num_learnt: usize,
    /// Number of live problem (original) clauses.
    pub num_problem: usize,
}

impl ClauseDb {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn header(&self, cref: ClauseRef) -> u32 {
        self.words[cref.0 as usize].code()
    }

    #[inline]
    fn set_header(&mut self, cref: ClauseRef, header: u32) {
        self.words[cref.0 as usize] = Lit::from_code(header);
    }

    #[inline]
    fn pack_header(len: usize, lbd: u32, learnt: bool, imported: bool, deleted: bool) -> u32 {
        // A hard check, not a debug_assert: a truncated length would
        // silently misalign the compaction walk and corrupt the arena.
        assert!(len <= MAX_LEN, "clause length overflows the header");
        (len as u32) << 12
            | lbd.min(MAX_LBD) << 3
            | u32::from(imported) << 2
            | u32::from(learnt) << 1
            | u32::from(deleted)
    }

    /// Appends a clause to the arena and returns its reference. `imported`
    /// marks clauses received through the portfolio clause exchange (see
    /// [`Self::is_imported`]).
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool, imported: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        let cref = ClauseRef(self.words.len() as u32);
        self.words.push(Lit::from_code(Self::pack_header(
            lits.len(),
            lbd,
            learnt,
            imported,
            false,
        )));
        self.words.push(Lit::from_code(0f32.to_bits()));
        self.words.extend_from_slice(lits);
        if learnt {
            self.num_learnt += 1;
            self.learnts.push(cref);
        } else {
            self.num_problem += 1;
        }
        cref
    }

    /// Number of literals in the clause.
    #[inline]
    pub fn len(&self, cref: ClauseRef) -> usize {
        (self.header(cref) >> 12) as usize
    }

    /// The clause's literals, read in place from the arena.
    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let start = cref.0 as usize + HEADER_WORDS;
        &self.words[start..start + self.len(cref)]
    }

    /// Mutable access to the clause's literals (watch reordering).
    #[inline]
    pub fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        let start = cref.0 as usize + HEADER_WORDS;
        let len = self.len(cref);
        &mut self.words[start..start + len]
    }

    /// Literal block distance recorded at learning time (glue level).
    #[inline]
    pub fn lbd(&self, cref: ClauseRef) -> u32 {
        self.header(cref) >> 3 & MAX_LBD
    }

    /// True for clauses that arrived through the clause exchange and have
    /// not yet participated in a conflict.
    #[inline]
    pub fn is_imported(&self, cref: ClauseRef) -> bool {
        self.header(cref) & 0b100 != 0
    }

    /// Clears the imported mark (called the first time the clause joins a
    /// resolution, so each import is counted useful at most once).
    #[inline]
    pub fn clear_imported(&mut self, cref: ClauseRef) {
        let header = self.header(cref);
        self.set_header(cref, header & !0b100);
    }

    /// Bump-based activity score used by the reduction policy.
    #[inline]
    pub fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.words[cref.0 as usize + 1].code())
    }

    #[inline]
    pub fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        self.words[cref.0 as usize + 1] = Lit::from_code(activity.to_bits());
    }

    #[cfg(test)]
    pub fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.header(cref) & 0b10 != 0
    }

    #[inline]
    pub fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.header(cref) & 0b01 != 0
    }

    /// Marks a clause deleted; its words become reclaimable dead space.
    pub fn free(&mut self, cref: ClauseRef) {
        let header = self.header(cref);
        debug_assert_eq!(header & 1, 0, "double free");
        self.set_header(cref, header | 1);
        if header & 0b10 != 0 {
            self.num_learnt -= 1;
        } else {
            self.num_problem -= 1;
        }
        self.wasted += HEADER_WORDS + self.len(cref);
    }

    /// Iterates over references of live learned clauses without scanning
    /// the arena (deleted entries linger in the list until
    /// [`Self::prune_learnts`], so they are filtered here).
    pub fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.learnts
            .iter()
            .copied()
            .filter(|&c| !self.is_deleted(c))
    }

    /// Drops deleted entries from the learned-clause list.
    pub fn prune_learnts(&mut self) {
        let words = &self.words;
        self.learnts
            .retain(|&c| words[c.0 as usize].code() & 1 == 0);
    }

    /// Current arena footprint in bytes.
    #[inline]
    pub fn arena_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<Lit>()
    }

    /// Words occupied by freed clauses.
    #[cfg(test)]
    pub fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// True when dead space justifies a compaction pass: at least a
    /// quarter of the arena (and enough absolute waste to amortize the
    /// remap work).
    pub fn should_compact(&self) -> bool {
        self.wasted >= 1024 && self.wasted * 4 >= self.words.len()
    }

    /// Garbage-collects the arena: live clauses slide down over dead
    /// space, preserving their relative order. Returns the old-to-new
    /// reference mapping the caller must apply to watch lists and reason
    /// references. All previously handed-out `ClauseRef`s are invalid
    /// afterwards.
    pub fn compact(&mut self) -> ClauseRemap {
        // Deleted entries must leave the learnt list *before* the walk
        // overwrites their headers (a deleted ref has no new location).
        self.prune_learnts();
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(self.num_learnt + self.num_problem);
        let mut read = 0usize;
        let mut write = 0usize;
        let total = self.words.len();
        while read < total {
            let header = self.words[read].code();
            let footprint = HEADER_WORDS + (header >> 12) as usize;
            if header & 1 == 0 {
                if read != write {
                    self.words.copy_within(read..read + footprint, write);
                }
                pairs.push((read as u32, write as u32));
                write += footprint;
            }
            read += footprint;
        }
        self.words.truncate(write);
        self.wasted = 0;
        let remap = ClauseRemap { pairs };
        for c in &mut self.learnts {
            *c = remap.map(*c);
        }
        // Everything left in the learnt list is live by construction.
        debug_assert_eq!(self.learnts.len(), self.num_learnt);
        remap
    }
}

/// Old-to-new [`ClauseRef`] mapping produced by [`ClauseDb::compact`].
#[derive(Debug)]
pub(crate) struct ClauseRemap {
    /// `(old, new)` offsets of every surviving clause, sorted by `old`.
    pairs: Vec<(u32, u32)>,
}

impl ClauseRemap {
    /// Maps a pre-compaction reference to its new location.
    ///
    /// Must only be called with references to clauses that survived the
    /// compaction (the solver sweeps deleted watchers first and never
    /// keeps reasons for deleted clauses).
    #[inline]
    pub fn map(&self, cref: ClauseRef) -> ClauseRef {
        let i = self
            .pairs
            .binary_search_by_key(&cref.0, |&(old, _)| old)
            .expect("remapped reference must address a live clause");
        ClauseRef(self.pairs[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(v: &[i64]) -> Vec<Lit> {
        v.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn alloc_get_free() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(&lits(&[1, 2]), false, false, 0);
        let c2 = db.alloc(&lits(&[-1, 3, 4]), true, false, 2);
        assert_eq!(db.len(c1), 2);
        assert_eq!(db.lits(c2), lits(&[-1, 3, 4]).as_slice());
        assert!(db.is_learnt(c2));
        assert!(!db.is_learnt(c1));
        assert_eq!(db.lbd(c2), 2);
        assert_eq!(db.num_problem, 1);
        assert_eq!(db.num_learnt, 1);
        db.free(c2);
        assert_eq!(db.num_learnt, 0);
        assert!(db.is_deleted(c2));
        assert_eq!(db.learnt_refs().count(), 0);
        assert_eq!(db.wasted_words(), HEADER_WORDS + 3);
    }

    #[test]
    fn clause_ref_offsets_are_stable_without_compaction() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(&lits(&[1, 2]), false, false, 0);
        let c2 = db.alloc(&lits(&[3, 4]), false, false, 0);
        assert_eq!(db.lits(c1)[0], Var::new(0).positive());
        assert_eq!(c1.index(), 0);
        assert_eq!(c2.index(), HEADER_WORDS + 2);
    }

    #[test]
    fn activity_round_trips_through_the_header() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[1, 2, 3]), true, false, 3);
        assert_eq!(db.activity(c), 0.0);
        db.set_activity(c, 1.5e10);
        assert_eq!(db.activity(c), 1.5e10);
        // Activity storage must not clobber neighbours.
        assert_eq!(db.lits(c), lits(&[1, 2, 3]).as_slice());
        assert_eq!(db.lbd(c), 3);
    }

    #[test]
    fn lbd_saturates_at_header_capacity() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[1, 2]), true, false, 5000);
        assert_eq!(db.lbd(c), MAX_LBD);
        assert_eq!(db.len(c), 2);
    }

    #[test]
    fn compaction_moves_live_clauses_and_remaps() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[1, 2]), false, false, 0);
        let b = db.alloc(&lits(&[-1, 3, 4]), true, false, 2);
        let c = db.alloc(&lits(&[2, -3]), true, false, 1);
        db.set_activity(c, 7.0);
        db.free(b);
        assert!(db.wasted_words() > 0);
        let remap = db.compact();
        let a2 = remap.map(a);
        let c2 = remap.map(c);
        assert_eq!(a2, a, "clauses before the hole stay put");
        assert_eq!(db.lits(a2), lits(&[1, 2]).as_slice());
        assert_eq!(db.lits(c2), lits(&[2, -3]).as_slice());
        assert_eq!(db.activity(c2), 7.0);
        assert_eq!(db.lbd(c2), 1);
        assert!(db.is_learnt(c2));
        assert_eq!(db.wasted_words(), 0);
        assert_eq!(db.learnt_refs().collect::<Vec<_>>(), vec![c2]);
        assert_eq!(
            db.arena_bytes(),
            (2 * HEADER_WORDS + 2 + 2) * std::mem::size_of::<Lit>()
        );
    }

    #[test]
    fn should_compact_needs_both_ratio_and_floor() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[1, 2]), true, true, 1);
        db.free(c);
        // 100% dead but far below the absolute floor.
        assert!(!db.should_compact());
        let mut big = ClauseDb::new();
        let clause = lits(&(1..=100).collect::<Vec<i64>>());
        let mut refs = Vec::new();
        for _ in 0..40 {
            refs.push(big.alloc(&clause, true, false, 9));
        }
        for &r in &refs[..20] {
            big.free(r);
        }
        assert!(big.should_compact());
    }
}

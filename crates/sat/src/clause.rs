//! Clause storage.
//!
//! Clauses live in a [`ClauseDb`] arena and are addressed by lightweight
//! [`ClauseRef`] handles. Learned clauses carry an activity score and an LBD
//! (literal block distance) used by the reduction policy.

use crate::lit::Lit;

/// Handle to a clause inside the solver's clause arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// Returns the raw arena index (useful for debugging/statistics).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single clause: a disjunction of literals plus solver metadata.
#[derive(Debug)]
pub(crate) struct Clause {
    pub lits: Vec<Lit>,
    /// Bump-based activity for learned-clause reduction.
    pub activity: f32,
    /// Literal block distance at learning time (glue level).
    pub lbd: u32,
    pub learnt: bool,
    pub deleted: bool,
}

/// Arena of clauses addressed by [`ClauseRef`].
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<Clause>,
    /// Number of live (non-deleted) learned clauses.
    pub num_learnt: usize,
    /// Number of live problem (original) clauses.
    pub num_problem: usize,
}

impl ClauseDb {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn alloc(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        let cref = ClauseRef(self.clauses.len() as u32);
        self.clauses.push(Clause {
            lits,
            activity: 0.0,
            lbd,
            learnt,
            deleted: false,
        });
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_problem += 1;
        }
        cref
    }

    #[inline]
    pub fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.0 as usize]
    }

    #[inline]
    pub fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.0 as usize]
    }

    /// Marks a clause deleted and releases its literal storage.
    pub fn free(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        debug_assert!(!c.deleted);
        c.deleted = true;
        if c.learnt {
            self.num_learnt -= 1;
        } else {
            self.num_problem -= 1;
        }
        c.lits = Vec::new();
        c.lits.shrink_to_fit();
    }

    /// Iterates over references of live learned clauses.
    pub fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(v: &[i64]) -> Vec<Lit> {
        v.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn alloc_get_free() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(lits(&[1, 2]), false, 0);
        let c2 = db.alloc(lits(&[-1, 3, 4]), true, 2);
        assert_eq!(db.get(c1).lits.len(), 2);
        assert!(db.get(c2).learnt);
        assert_eq!(db.num_problem, 1);
        assert_eq!(db.num_learnt, 1);
        db.free(c2);
        assert_eq!(db.num_learnt, 0);
        assert!(db.get(c2).deleted);
        assert_eq!(db.learnt_refs().count(), 0);
    }

    #[test]
    fn clause_ref_index_is_stable() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(lits(&[1, 2]), false, 0);
        let _ = db.alloc(lits(&[3, 4]), false, 0);
        assert_eq!(db.get(c1).lits[0], Var::new(0).positive());
        assert_eq!(c1.index(), 0);
    }
}

//! The backend abstraction decoupling consumers from the bundled CDCL
//! solver.
//!
//! Everything above this crate (the MaxSAT engine, the QMR encoders, the
//! OLSQ baselines) talks to satisfiability through two traits:
//!
//! * [`ClauseSink`] — anything that accepts fresh variables and clauses
//!   (solvers *and* passive instance builders like WCNF containers), the
//!   interface CNF encoders are written against;
//! * [`SatBackend`] — a full incremental SAT solver: clause loading,
//!   assumption-based solving under a [`ResourceBudget`], model and
//!   UNSAT-core extraction, and [`Stats`] reporting.
//!
//! The bundled [`Solver`] implements both and is re-exported as
//! [`DefaultBackend`], the alias generic consumers name instead of the
//! concrete type — swapping in an alternative backend (or a portfolio of
//! them) is then a one-line change per call site.

use crate::budget::ResourceBudget;
use crate::config::SolverConfig;
use crate::exchange::ExchangePort;
use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver};
use crate::stats::Stats;

/// Sink for freshly created variables and emitted clauses.
///
/// Implemented by [`Solver`] here and by `maxsat::WcnfInstance` on the hard
/// side, so CNF encodings serve both the MaxSAT engine and direct SAT
/// consumers.
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Emits a clause.
    fn emit(&mut self, lits: &[Lit]);
}

/// An incremental SAT solver usable by the layers above.
///
/// # Examples
///
/// ```
/// use sat::{DefaultBackend, ResourceBudget, SatBackend, SolveResult};
///
/// let mut backend = DefaultBackend::default();
/// let a = backend.new_var().positive();
/// SatBackend::add_clause(&mut backend, &[a]);
/// let result = backend.solve_under_assumptions(&[], &ResourceBudget::unlimited());
/// assert_eq!(result, SolveResult::Sat);
/// assert_eq!(backend.model_value(a), Some(true));
/// ```
pub trait SatBackend: ClauseSink {
    /// Short identifier for telemetry and experiment tables.
    fn backend_name(&self) -> &'static str;

    /// Applies search-diversification knobs ([`SolverConfig`]), if the
    /// backend supports them. The default is a no-op so third-party
    /// backends compose into a [`crate::PortfolioBackend`] unchanged (the
    /// portfolio then diversifies only the backends that opt in).
    fn configure(&mut self, config: &SolverConfig) {
        let _ = config;
    }

    /// Requests a portfolio of `width` diversified workers, if the backend
    /// races one. The default is a no-op: single-threaded backends simply
    /// ignore the hint, so callers can thread a route request's
    /// parallelism hint through without knowing the backend's shape.
    fn set_portfolio_width(&mut self, width: usize) {
        let _ = width;
    }

    /// Assigns this backend a worker-plan role (see
    /// [`crate::WorkerRole`]): a strategy group in a heterogeneous
    /// portfolio applies its diversification seed — and, for backends
    /// that share clauses, an optional sharing override — before
    /// solving. The default rebases the backend's configuration on the
    /// role seed via [`SatBackend::configure`], which also gives
    /// fault-injection wrappers a stable per-role tag to target.
    fn set_worker_role(&mut self, role: &crate::WorkerRole) {
        self.configure(&SolverConfig {
            seed: role.seed,
            ..SolverConfig::default()
        });
    }

    /// Attaches this backend to a portfolio clause exchange (or detaches
    /// it with `None`): while attached, the backend may export learned
    /// clauses and import peers'. The default is a no-op, so backends
    /// without clause-sharing support simply race without cooperating.
    fn set_clause_exchange(&mut self, port: Option<ExchangePort>) {
        let _ = port;
    }

    /// Detaches and returns the previously attached exchange port, if the
    /// backend kept one. Ports keep their read cursors and dedup state, so
    /// re-attaching later resumes the exchange where it left off — the
    /// hook behind cross-call clause reuse. The default returns `None`
    /// (matching the default no-op `set_clause_exchange`).
    fn take_clause_exchange(&mut self) -> Option<ExchangePort> {
        None
    }

    /// Number of variables created so far.
    fn num_vars(&self) -> usize;

    /// Number of problem clauses loaded so far. Advisory: backends that do
    /// not track a clause count may return 0. Consumers use
    /// `num_vars() + num_clauses()` as the instance-size signal behind the
    /// small-instance sharing and portfolio gates.
    fn num_clauses(&self) -> usize {
        0
    }

    /// Snapshots the full solver state — clause arena (problem *and*
    /// learned clauses), saved phases, activities — as an independent
    /// backend. Returns `None` when the backend cannot snapshot itself.
    ///
    /// This is the warm-start primitive: a MaxSAT session stashes a solved
    /// backend and later solves of the same instance resume from the
    /// snapshot instead of re-emitting the encoding. Reuse is sound
    /// because learned clauses are consequences of the loaded formula and
    /// every bound travels as an assumption, never an asserted clause
    /// (the PR 5 conservative-extension argument).
    ///
    /// `where Self: Sized` keeps [`SatBackend`] object-safe; `dyn`
    /// consumers simply cannot snapshot.
    fn snapshot(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Ensures at least `n` variables exist.
    fn reserve_vars(&mut self, n: usize);

    /// Adds a clause; returns `false` if the formula is now known
    /// unsatisfiable at the top level.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Solves under `assumptions` within `budget`. The budget is armed (see
    /// [`ResourceBudget::arm`]) on entry, so a deadline inherited from a
    /// parent call is honored as-is.
    fn solve_under_assumptions(
        &mut self,
        assumptions: &[Lit],
        budget: &ResourceBudget,
    ) -> SolveResult;

    /// The value of `l` in the last satisfying model, if any.
    fn model_value(&self, l: Lit) -> Option<bool>;

    /// The full model of the last SAT answer as booleans per variable.
    fn model(&self) -> Vec<bool>;

    /// Subset of assumptions responsible for the last UNSAT answer.
    fn unsat_core(&self) -> &[Lit];

    /// Statistics accumulated across all solve calls.
    fn stats(&self) -> &Stats;
}

impl ClauseSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn emit(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits.iter().copied());
    }
}

impl SatBackend for Solver {
    fn backend_name(&self) -> &'static str {
        "cdcl"
    }

    fn configure(&mut self, config: &SolverConfig) {
        Solver::set_config(self, *config);
    }

    fn set_clause_exchange(&mut self, port: Option<ExchangePort>) {
        Solver::set_clause_exchange(self, port);
    }

    fn take_clause_exchange(&mut self) -> Option<ExchangePort> {
        Solver::take_clause_exchange(self)
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        Solver::num_clauses(self)
    }

    fn snapshot(&self) -> Option<Self> {
        // The flat clause arena makes this a set of contiguous memcpys
        // (~5.5x cheaper than re-emitting clauses, per `arena/*` benches).
        // Any attached exchange port is dropped: a cloned port would
        // duplicate its single-producer export slot.
        let mut snap = self.clone();
        Solver::set_clause_exchange(&mut snap, None);
        Some(snap)
    }

    fn reserve_vars(&mut self, n: usize) {
        Solver::reserve_vars(self, n);
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits.iter().copied())
    }

    fn solve_under_assumptions(
        &mut self,
        assumptions: &[Lit],
        budget: &ResourceBudget,
    ) -> SolveResult {
        Solver::solve_under_assumptions(self, assumptions, budget)
    }

    fn model_value(&self, l: Lit) -> Option<bool> {
        Solver::model_value(self, l)
    }

    fn model(&self) -> Vec<bool> {
        Solver::model(self)
    }

    fn unsat_core(&self) -> &[Lit] {
        Solver::unsat_core(self)
    }

    fn stats(&self) -> &Stats {
        Solver::stats(self)
    }
}

/// The backend generic consumers default to: the bundled CDCL solver.
pub type DefaultBackend = Solver;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceBudget;

    /// Exercises the whole trait surface through a generic function, the
    /// way `maxsat` and `olsq` consume it.
    fn roundtrip<B: SatBackend + Default>() {
        let mut backend = B::default();
        backend.reserve_vars(2);
        assert_eq!(backend.num_vars(), 2);
        let a = Var::new(0).positive();
        let b = Var::new(1).positive();
        assert!(backend.add_clause(&[a, b]));
        assert!(backend.add_clause(&[!a]));
        let r = backend.solve_under_assumptions(&[], &ResourceBudget::unlimited());
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(backend.model_value(b), Some(true));
        assert!(backend.model()[b.var().index()]);
        assert!(backend.stats().decisions <= backend.stats().propagations + 8);

        // Failed assumptions produce a core.
        let r = backend.solve_under_assumptions(&[!b], &ResourceBudget::unlimited());
        assert_eq!(r, SolveResult::Unsat);
        assert!(backend.unsat_core().contains(&!b));
    }

    #[test]
    fn default_backend_satisfies_contract() {
        roundtrip::<DefaultBackend>();
        assert_eq!(DefaultBackend::default().backend_name(), "cdcl");
    }

    #[test]
    fn clause_sink_emit_matches_add_clause() {
        let mut s = DefaultBackend::default();
        let a = ClauseSink::new_var(&mut s).positive();
        s.emit(&[a]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
    }
}

//! Deterministic seeded fault injection for resilience testing.
//!
//! [`ChaosBackend<B>`] wraps any [`SatBackend`] and perturbs it according
//! to a seeded [`FaultPlan`]: spurious cancellations (a solve call returns
//! `Unknown` without searching), artificial slowdowns, worker panics, and
//! dropped clause-exchange attachments. Every fault draw comes from a
//! splitmix64 stream seeded by the plan, so a failing scenario replays
//! bit-for-bit from its seed.
//!
//! The **soundness contract** is that every injected fault maps to a
//! degradation the real system could exhibit anyway, never to a wrong
//! answer:
//!
//! * a spurious cancellation returns [`SolveResult::Unknown`] — exactly
//!   what a budget expiry produces, and always a sound answer;
//! * a slowdown only burns wall-clock, pushing the caller toward its own
//!   deadline handling;
//! * a panic unwinds the worker thread; the portfolio retires the worker
//!   and races on ([`crate::PortfolioBackend`]);
//! * a dropped exchange port only withholds imported lemmas, which are
//!   consequences of the shared formula — losing them costs time, not
//!   correctness.
//!
//! Consequently any outcome a chaos-wrapped stack *does* prove (`Sat`,
//! `Unsat`, a MaxSAT optimum) is as trustworthy as one from the plain
//! stack — the invariant the supervisor's chaos suite asserts.
//!
//! Generic consumers build backends via `B::default()`, often on worker
//! threads the test never sees, so the plan travels through a process-wide
//! slot: [`install_plan`] arms it, and every `ChaosBackend::default()`
//! constructed afterwards picks it up. Tests that install a plan must
//! serialize on their own lock (the slot is global) and should call
//! [`silence_panic_reports`] once so injected panics don't spray backtraces
//! over the harness output.
//!
//! # Examples
//!
//! ```
//! use sat::chaos::{ChaosBackend, FaultPlan};
//! use sat::{ClauseSink, DefaultBackend, ResourceBudget, SatBackend, SolveResult};
//!
//! // A plan that cancels every solve call: the wrapped solver degrades to
//! // `Unknown`, it never lies.
//! let plan = FaultPlan::seeded(7).cancel_prob(1.0);
//! let mut chaotic = ChaosBackend::<DefaultBackend>::with_plan(plan);
//! let a = chaotic.new_var().positive();
//! SatBackend::add_clause(&mut chaotic, &[a]);
//! let r = chaotic.solve_under_assumptions(&[], &ResourceBudget::unlimited());
//! assert_eq!(r, SolveResult::Unknown);
//! ```

use std::sync::Mutex;
use std::time::Duration;

use crate::backend::{ClauseSink, SatBackend};
use crate::budget::{unit_draw, ResourceBudget};
use crate::config::SolverConfig;
use crate::exchange::ExchangePort;
use crate::lit::{Lit, Var};
use crate::solver::SolveResult;
use crate::stats::Stats;

/// Panic payload prefix of every injected panic, so harnesses (and the
/// [`silence_panic_reports`] hook) can tell chaos apart from real bugs.
pub const CHAOS_PANIC: &str = "chaos: injected worker panic";

/// A seeded schedule of faults for one [`ChaosBackend`] (and, through
/// cloning and diversification, a whole portfolio of them).
///
/// Probabilities are per *solve call*; draws come from a splitmix64 stream
/// derived from `seed` (and re-mixed with each worker's diversified
/// [`SolverConfig::seed`]), so different portfolio workers see different —
/// but individually reproducible — fault sequences.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Root of the fault-draw stream.
    pub seed: u64,
    /// Probability a solve call panics instead of running.
    pub panic_prob: f64,
    /// Probability a solve call is spuriously cancelled (returns
    /// [`SolveResult::Unknown`] without searching).
    pub cancel_prob: f64,
    /// Probability a solve call sleeps for [`FaultPlan::delay`] first.
    pub delay_prob: f64,
    /// Length of an injected slowdown.
    pub delay: Duration,
    /// Probability an exchange-port attachment is silently dropped (the
    /// worker then races without importing peers' lemmas).
    pub drop_import_prob: f64,
    /// Deterministic targeting: a worker whose diversified config seed
    /// equals this tag panics on its next solve call regardless of
    /// `panic_prob` — the knob behind "exactly one racer dies" tests.
    pub panic_tag: Option<u64>,
}

impl Default for FaultPlan {
    /// The benign plan: no faults at all.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_prob: 0.0,
            cancel_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_millis(1),
            drop_import_prob: 0.0,
            panic_tag: None,
        }
    }
}

impl FaultPlan {
    /// A benign plan with the fault stream rooted at `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// Returns a copy with the per-call panic probability set.
    pub fn panic_prob(mut self, p: f64) -> Self {
        self.panic_prob = p;
        self
    }

    /// Returns a copy with the per-call spurious-cancellation probability
    /// set.
    pub fn cancel_prob(mut self, p: f64) -> Self {
        self.cancel_prob = p;
        self
    }

    /// Returns a copy injecting a `delay`-long sleep with probability `p`
    /// per solve call.
    pub fn delay_with(mut self, p: f64, delay: Duration) -> Self {
        self.delay_prob = p;
        self.delay = delay;
        self
    }

    /// Returns a copy with the exchange-drop probability set.
    pub fn drop_import_prob(mut self, p: f64) -> Self {
        self.drop_import_prob = p;
        self
    }

    /// Returns a copy targeting the worker whose diversified config seed is
    /// `tag` for a guaranteed panic (see [`FaultPlan::panic_tag`]).
    pub fn panic_tag(mut self, tag: u64) -> Self {
        self.panic_tag = Some(tag);
        self
    }

    /// True if the plan injects nothing.
    pub fn is_benign(&self) -> bool {
        self.panic_prob == 0.0
            && self.cancel_prob == 0.0
            && self.delay_prob == 0.0
            && self.drop_import_prob == 0.0
            && self.panic_tag.is_none()
    }
}

/// The process-wide plan slot behind [`install_plan`] /
/// [`ChaosBackend::default`].
static INSTALLED_PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Installs (or, with `None`, clears) the plan that subsequently
/// constructed `ChaosBackend::default()` instances adopt; returns the
/// previously installed plan.
///
/// This is how a fault plan reaches backends built deep inside generic
/// code (`B::default()` on a router's worker thread). The slot is
/// process-global: concurrent tests that install different plans must
/// serialize themselves.
pub fn install_plan(plan: Option<FaultPlan>) -> Option<FaultPlan> {
    let mut slot = INSTALLED_PLAN
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    std::mem::replace(&mut *slot, plan)
}

/// Installs (once per process) a panic hook that swallows the report for
/// injected chaos panics — their payload starts with [`CHAOS_PANIC`] — and
/// delegates every other panic to the previous hook. The unwind itself
/// still happens; only the stderr noise is suppressed, so real bugs keep
/// their backtraces even while a chaos suite injects hundreds of panics.
pub fn silence_panic_reports() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with(CHAOS_PANIC))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with(CHAOS_PANIC))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

/// A [`SatBackend`] decorator injecting seeded faults around an inner
/// backend (see the module docs for the soundness contract).
#[derive(Clone, Debug)]
pub struct ChaosBackend<B> {
    inner: B,
    plan: FaultPlan,
    /// Fault-draw stream state; advanced by one splitmix64 step per draw.
    rng: u64,
    /// The diversified config seed last applied, matched against
    /// [`FaultPlan::panic_tag`].
    tag: u64,
}

impl<B: Default> Default for ChaosBackend<B> {
    /// Adopts the process-wide plan from [`install_plan`] (benign when none
    /// is installed) around a default inner backend.
    fn default() -> Self {
        let plan = {
            let slot = INSTALLED_PLAN
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            slot.unwrap_or_default()
        };
        Self::with_plan(plan)
    }
}

impl<B: Default> ChaosBackend<B> {
    /// A chaos wrapper with an explicit plan around a default inner
    /// backend.
    pub fn with_plan(plan: FaultPlan) -> Self {
        Self::wrap(B::default(), plan)
    }
}

impl<B> ChaosBackend<B> {
    /// Wraps an existing backend under `plan`.
    pub fn wrap(inner: B, plan: FaultPlan) -> Self {
        ChaosBackend {
            inner,
            plan,
            rng: plan.seed,
            tag: 0,
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// One uniform draw in `[0, 1)` from the fault stream.
    fn draw(&mut self) -> f64 {
        unit_draw(&mut self.rng)
    }
}

impl<B: ClauseSink> ClauseSink for ChaosBackend<B> {
    fn new_var(&mut self) -> Var {
        self.inner.new_var()
    }

    fn emit(&mut self, lits: &[Lit]) {
        self.inner.emit(lits);
    }
}

impl<B: SatBackend> SatBackend for ChaosBackend<B> {
    fn backend_name(&self) -> &'static str {
        "chaos"
    }

    fn configure(&mut self, config: &SolverConfig) {
        // Re-root this worker's fault stream on its diversified seed so
        // portfolio peers draw different (but reproducible) faults, and
        // remember the seed as the panic-targeting tag.
        self.tag = config.seed;
        self.rng = self.plan.seed ^ config.seed.rotate_left(17);
        self.inner.configure(config);
    }

    fn set_portfolio_width(&mut self, width: usize) {
        self.inner.set_portfolio_width(width);
    }

    fn set_clause_exchange(&mut self, port: Option<ExchangePort>) {
        // A dropped attachment starves this worker of imports — lemmas it
        // would only ever *gain* pruning from — so the race gets slower,
        // never wrong.
        if port.is_some() && self.plan.drop_import_prob > 0.0 {
            let roll = self.draw();
            if roll < self.plan.drop_import_prob {
                self.inner.set_clause_exchange(None);
                return;
            }
        }
        self.inner.set_clause_exchange(port);
    }

    fn take_clause_exchange(&mut self) -> Option<ExchangePort> {
        self.inner.take_clause_exchange()
    }

    fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }

    fn num_clauses(&self) -> usize {
        self.inner.num_clauses()
    }

    fn snapshot(&self) -> Option<Self> {
        // The snapshot inherits the plan and the *current* stream state,
        // then perturbs it: a forked session replays neither its parent's
        // future nor its past.
        let inner = self.inner.snapshot()?;
        Some(ChaosBackend {
            inner,
            plan: self.plan,
            rng: self.rng.wrapping_add(0xA5A5_A5A5_A5A5_A5A5),
            tag: self.tag,
        })
    }

    fn reserve_vars(&mut self, n: usize) {
        self.inner.reserve_vars(n);
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.inner.add_clause(lits)
    }

    fn solve_under_assumptions(
        &mut self,
        assumptions: &[Lit],
        budget: &ResourceBudget,
    ) -> SolveResult {
        if self.plan.panic_tag == Some(self.tag) {
            panic!("{CHAOS_PANIC} (targeted worker, tag {})", self.tag);
        }
        if self.plan.panic_prob > 0.0 && self.draw() < self.plan.panic_prob {
            panic!("{CHAOS_PANIC} (seed {})", self.plan.seed);
        }
        if self.plan.delay_prob > 0.0 && self.draw() < self.plan.delay_prob {
            std::thread::sleep(self.plan.delay);
        }
        if self.plan.cancel_prob > 0.0 && self.draw() < self.plan.cancel_prob {
            // Indistinguishable from a budget expiry: the one answer that
            // is sound in every context.
            return SolveResult::Unknown;
        }
        self.inner.solve_under_assumptions(assumptions, budget)
    }

    fn model_value(&self, l: Lit) -> Option<bool> {
        self.inner.model_value(l)
    }

    fn model(&self) -> Vec<bool> {
        self.inner.model()
    }

    fn unsat_core(&self) -> &[Lit] {
        self.inner.unsat_core()
    }

    fn stats(&self) -> &Stats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DefaultBackend;

    type Chaotic = ChaosBackend<DefaultBackend>;

    fn trivially_sat(backend: &mut Chaotic) -> Lit {
        let a = backend.new_var().positive();
        SatBackend::add_clause(backend, &[a]);
        a
    }

    #[test]
    fn benign_plan_is_transparent() {
        let mut c = Chaotic::with_plan(FaultPlan::default());
        assert!(c.plan().is_benign());
        let a = trivially_sat(&mut c);
        assert_eq!(
            c.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
        assert_eq!(c.model_value(a), Some(true));
        assert_eq!(c.backend_name(), "chaos");
    }

    #[test]
    fn certain_cancellation_degrades_to_unknown() {
        let mut c = Chaotic::with_plan(FaultPlan::seeded(3).cancel_prob(1.0));
        trivially_sat(&mut c);
        for _ in 0..4 {
            assert_eq!(
                c.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
                SolveResult::Unknown,
                "a spurious cancellation must look like a budget expiry"
            );
        }
    }

    #[test]
    fn injected_panic_unwinds_with_the_chaos_payload() {
        silence_panic_reports();
        let mut c = Chaotic::with_plan(FaultPlan::seeded(9).panic_prob(1.0));
        trivially_sat(&mut c);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.solve_under_assumptions(&[], &ResourceBudget::unlimited())
        }))
        .expect_err("panic_prob 1.0 must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted payload");
        assert!(msg.starts_with(CHAOS_PANIC), "payload was {msg:?}");
    }

    #[test]
    fn targeted_panic_fires_only_on_the_tagged_worker() {
        silence_panic_reports();
        let plan = FaultPlan::seeded(1).panic_tag(42);
        let mut tagged = Chaotic::with_plan(plan);
        let config = SolverConfig {
            seed: 42,
            ..SolverConfig::default()
        };
        SatBackend::configure(&mut tagged, &config);
        trivially_sat(&mut tagged);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tagged.solve_under_assumptions(&[], &ResourceBudget::unlimited())
        }))
        .is_err());

        let mut untagged = Chaotic::with_plan(plan);
        trivially_sat(&mut untagged);
        assert_eq!(
            untagged.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat,
            "workers with a different tag run clean"
        );
    }

    #[test]
    fn fault_draws_are_deterministic_per_seed() {
        // Same seed, same circuit of calls: identical outcomes.
        let outcomes = |seed: u64| {
            let mut c = Chaotic::with_plan(FaultPlan::seeded(seed).cancel_prob(0.5));
            trivially_sat(&mut c);
            (0..12)
                .map(|_| c.solve_under_assumptions(&[], &ResourceBudget::unlimited()))
                .collect::<Vec<_>>()
        };
        assert_eq!(outcomes(11), outcomes(11));
        // A 50% plan neither always fires nor never fires over 12 calls
        // for this seed (sanity that draws actually vary).
        let seq = outcomes(11);
        assert!(seq.contains(&SolveResult::Sat));
        assert!(seq.contains(&SolveResult::Unknown));
    }

    #[test]
    fn install_plan_reaches_default_constructed_backends() {
        let previous = install_plan(Some(FaultPlan::seeded(5).cancel_prob(1.0)));
        let mut c = Chaotic::default();
        trivially_sat(&mut c);
        let r = c.solve_under_assumptions(&[], &ResourceBudget::unlimited());
        install_plan(previous);
        assert_eq!(r, SolveResult::Unknown);
        // With the slot restored (empty in this test binary), defaults are
        // benign again.
        let mut clean = Chaotic::default();
        trivially_sat(&mut clean);
        assert_eq!(
            clean.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
    }

    #[test]
    fn dropped_exchange_attachment_only_withholds_imports() {
        use crate::exchange::{ClauseExchange, SharingConfig};
        use std::sync::Arc;
        let exchange = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let mut c = Chaotic::with_plan(FaultPlan::seeded(2).drop_import_prob(1.0));
        trivially_sat(&mut c);
        c.set_clause_exchange(Some(ExchangePort::new(exchange, 0)));
        assert!(
            c.take_clause_exchange().is_none(),
            "the attachment must have been dropped"
        );
        // The worker still answers correctly without the exchange.
        assert_eq!(
            c.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
    }

    #[test]
    fn snapshot_preserves_formula_and_plan() {
        let mut c = Chaotic::with_plan(FaultPlan::seeded(8));
        let a = trivially_sat(&mut c);
        let mut snap = SatBackend::snapshot(&c).expect("inner snapshots");
        assert_eq!(snap.plan(), c.plan());
        assert_eq!(
            snap.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
        assert_eq!(snap.model_value(a), Some(true));
    }
}

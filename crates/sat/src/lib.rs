//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate is the satisfiability substrate for the SATMAP reproduction:
//! the `maxsat` crate drives it in a loop to solve the qubit mapping and
//! routing (QMR) optimization problem from *"Qubit Mapping and Routing via
//! MaxSAT"* (MICRO 2022).
//!
//! Features:
//!
//! * two-watched-literal unit propagation with blocker literals,
//! * a flat clause arena with garbage-collecting compaction — clause
//!   storage is one contiguous buffer, so cloning a formula for a
//!   portfolio worker is a `memcpy` (see [`clause`][ClauseRef]),
//! * VSIDS decision heuristic with phase saving,
//! * first-UIP conflict analysis with clause minimization,
//! * Luby restarts and activity/LBD-guided learned-clause reduction,
//! * portfolio clause sharing: bounded lock-free export channels
//!   ([`ClauseExchange`]) carry low-LBD learned clauses between racing
//!   workers, imported at restart boundaries,
//! * incremental solving under assumptions with UNSAT-core extraction,
//! * cooperative deadline-based budgets ([`ResourceBudget`]) for anytime
//!   callers — nested calls inherit and can never overshoot a parent's
//!   deadline — with thread-safe cancellation ([`CancelToken`]),
//! * a backend abstraction ([`SatBackend`]) so higher layers are generic
//!   over the solver implementation,
//! * deterministic search diversification ([`SolverConfig`]) and a
//!   multi-threaded portfolio backend ([`PortfolioBackend`]) racing
//!   diversified workers to the first definitive answer,
//! * solver-effort accounting ([`SolverTelemetry`]) that higher layers
//!   aggregate and report,
//! * DIMACS CNF input/output ([`dimacs`]).
//!
//! # Examples
//!
//! ```
//! use sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var().positive();
//! let b = solver.new_var().positive();
//! solver.add_clause([a, b]);   //  a ∨ b
//! solver.add_clause([!a, b]);  // ¬a ∨ b
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.model_value(b), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod budget;
pub mod chaos;
mod clause;
pub mod config;
pub mod dimacs;
pub mod exchange;
mod lit;
mod order;
pub mod portfolio;
mod solver;
mod stats;
pub mod telemetry;
pub mod trim;

pub use backend::{ClauseSink, DefaultBackend, SatBackend};
pub use budget::{CancelRegistry, CancelToken, ResourceBudget};
pub use chaos::{ChaosBackend, FaultPlan};
pub use clause::ClauseRef;
pub use config::{PhaseInit, SolverConfig};
pub use exchange::{ClauseExchange, ExchangePort, SharingConfig, DEFAULT_MIN_INSTANCE_SIZE};
pub use lit::{LBool, Lit, Var};
pub use portfolio::{
    auto_width, auto_width_for_jobs, PortfolioBackend, WorkerRole, MAX_AUTO_WIDTH,
};
pub use solver::{SolveResult, Solver};
pub use stats::Stats;
pub use telemetry::SolverTelemetry;
pub use trim::trim_core;

//! Diversified portfolio solving: runtime-sized worker races on clones of
//! the formula.
//!
//! [`PortfolioBackend<B>`] wraps a runtime-chosen number of instances of
//! any [`SatBackend`] and implements [`SatBackend`] itself, so it drops
//! into every generic consumer (the MaxSAT engine, the SATMAP routers, the
//! OLSQ baselines) without touching their call sites. Clause and variable
//! traffic is mirrored into every worker; each `solve_under_assumptions`
//! call races the workers on OS threads ([`std::thread::scope`], no extra
//! dependencies), takes the **first definitive** `Sat`/`Unsat` answer, and
//! cancels the peers through a [`crate::CancelToken`] child of the caller's
//! budget — so cancelling the caller's budget still tears down every
//! worker, and a worker can never outlive the budget it descended from.
//!
//! The worker count (*width*) is a runtime value, not a type parameter:
//! [`PortfolioBackend::with_width`] picks it explicitly (e.g.
//! `with_width(auto_width())` to size from the machine), and
//! [`SatBackend::set_portfolio_width`] lets callers (the MaxSAT engine
//! acting on a route request's parallelism hint) resize a freshly created
//! backend before any clauses are loaded; [`PortfolioBackend::default`]
//! starts at width 1 so that path stays cheap. Width 1 solves inline on
//! the calling thread — no spawn, no race overhead.
//!
//! Workers are diversified deterministically via
//! [`SolverConfig::diversified`]: worker 0 always runs the undiversified
//! default configuration, so the portfolio's answers (and, for MaxSAT
//! consumers, its optimal costs) match the plain backend's — only the
//! wall-clock route to them differs.
//!
//! # Examples
//!
//! ```
//! use sat::{ClauseSink, PortfolioBackend, DefaultBackend, ResourceBudget, SatBackend, SolveResult};
//!
//! let mut portfolio = PortfolioBackend::<DefaultBackend>::with_width(4);
//! let a = portfolio.new_var().positive();
//! SatBackend::add_clause(&mut portfolio, &[a]);
//! let r = portfolio.solve_under_assumptions(&[], &ResourceBudget::unlimited());
//! assert_eq!(r, SolveResult::Sat);
//! assert_eq!(portfolio.model_value(a), Some(true));
//! assert!(portfolio.stats().last_winner.is_some());
//! ```

use std::sync::Mutex;

use crate::backend::{ClauseSink, DefaultBackend, SatBackend};
use crate::budget::ResourceBudget;
use crate::config::SolverConfig;
use crate::lit::{Lit, Var};
use crate::solver::SolveResult;
use crate::stats::Stats;

/// Upper bound on the automatically chosen portfolio width: the solver
/// ships four diversification presets, and widths past twice that only
/// cycle presets with fresh seeds for rapidly diminishing returns.
pub const MAX_AUTO_WIDTH: usize = 8;

/// Automatic portfolio width when `jobs` solver-bearing tasks run
/// concurrently in this process: the available cores split across the
/// jobs, clamped to `1..=`[`MAX_AUTO_WIDTH`].
pub fn auto_width_for_jobs(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores / jobs.max(1)).clamp(1, MAX_AUTO_WIDTH)
}

/// Automatic portfolio width for this process:
/// [`std::thread::available_parallelism`] shrunk by the `SATMAP_JOBS`
/// worker count when an experiment sweep already saturates the cores
/// (closing the loop the suite runner opens with `--jobs`).
pub fn auto_width() -> usize {
    let jobs = std::env::var("SATMAP_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(1);
    auto_width_for_jobs(jobs)
}

/// A portfolio of diversified [`SatBackend`] workers racing per call.
///
/// The width is chosen at runtime — explicitly via
/// [`PortfolioBackend::with_width`], from the machine via
/// [`PortfolioBackend::default`], or per request via
/// [`SatBackend::set_portfolio_width`] before clauses are loaded.
#[derive(Debug)]
pub struct PortfolioBackend<B: SatBackend = DefaultBackend> {
    workers: Vec<B>,
    /// Per-worker counters merged after every race, plus the last winner.
    merged: Stats,
    /// Index of the worker whose model/core answer the accessors serve.
    winner: usize,
    /// Count of races won per worker (diagnostic; survives across calls).
    wins: Vec<u64>,
}

impl<B: SatBackend + Default> Default for PortfolioBackend<B> {
    /// A width-1 portfolio (serial, zero racing overhead). Generic
    /// consumers construct backends via `B::default()` and then apply the
    /// caller's width through [`SatBackend::set_portfolio_width`], so the
    /// default stays cheap instead of eagerly building [`auto_width`]
    /// workers that an explicit width would immediately discard.
    fn default() -> Self {
        Self::with_width(1)
    }
}

impl<B: SatBackend + Default> PortfolioBackend<B> {
    /// A portfolio of `width` diversified workers (clamped to at least 1).
    pub fn with_width(width: usize) -> Self {
        let width = width.max(1);
        let workers = (0..width)
            .map(|i| {
                let mut w = B::default();
                w.configure(&SolverConfig::diversified(i));
                w
            })
            .collect();
        PortfolioBackend {
            workers,
            merged: Stats::default(),
            winner: 0,
            wins: vec![0; width],
        }
    }
}

impl<B: SatBackend> PortfolioBackend<B> {
    /// Number of workers in the portfolio.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// How many races each worker has won so far.
    pub fn wins(&self) -> &[u64] {
        &self.wins
    }

    /// Recomputes the merged statistics from the per-worker counters.
    fn refresh_stats(&mut self, last_winner: Option<u32>) {
        let mut merged = Stats::default();
        for w in &self.workers {
            merged.merge(w.stats());
        }
        merged.last_winner = last_winner.or(self.merged.last_winner);
        self.merged = merged;
    }
}

impl<B: SatBackend> ClauseSink for PortfolioBackend<B> {
    fn new_var(&mut self) -> Var {
        let mut it = self.workers.iter_mut();
        let v = it.next().expect("width >= 1 worker").new_var();
        for w in it {
            let v2 = w.new_var();
            debug_assert_eq!(v2, v, "workers must allocate variables in lockstep");
        }
        v
    }

    fn emit(&mut self, lits: &[Lit]) {
        for w in &mut self.workers {
            w.emit(lits);
        }
    }
}

impl<B: SatBackend + Send + Default> SatBackend for PortfolioBackend<B> {
    fn backend_name(&self) -> &'static str {
        "portfolio"
    }

    fn configure(&mut self, config: &SolverConfig) {
        // Re-diversify *relative to* the given base: worker 0 gets the base
        // config itself, the rest their usual presets seeded off it.
        for (i, w) in self.workers.iter_mut().enumerate() {
            if i == 0 {
                w.configure(config);
            } else {
                let mut c = SolverConfig::diversified(i);
                c.seed ^= config.seed;
                w.configure(&c);
            }
        }
    }

    fn set_portfolio_width(&mut self, width: usize) {
        // Only a pristine portfolio can be resized: once variables or
        // clauses were mirrored into the workers, rebuilding would lose
        // them. Callers set the width right after construction (the MaxSAT
        // engine does so before loading the instance).
        if self.num_vars() == 0 && width.max(1) != self.workers.len() {
            *self = Self::with_width(width);
        }
    }

    fn num_vars(&self) -> usize {
        self.workers[0].num_vars()
    }

    fn reserve_vars(&mut self, n: usize) {
        for w in &mut self.workers {
            w.reserve_vars(n);
        }
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        let mut ok = true;
        for w in &mut self.workers {
            ok &= w.add_clause(lits);
        }
        ok
    }

    fn solve_under_assumptions(
        &mut self,
        assumptions: &[Lit],
        budget: &ResourceBudget,
    ) -> SolveResult {
        // Width 1: no race to run — solve inline on the calling thread.
        if self.workers.len() == 1 {
            let result = self.workers[0].solve_under_assumptions(assumptions, budget);
            if matches!(result, SolveResult::Sat | SolveResult::Unsat) {
                self.winner = 0;
                self.wins[0] += 1;
                self.refresh_stats(Some(0));
            } else {
                self.refresh_stats(None);
            }
            return result;
        }

        // Arm once so every worker shares the same absolute deadline, then
        // derive the race token as a child of any inherited token: the
        // caller cancelling its budget still stops all workers.
        let armed = budget.arm();
        let (worker_budget, race) = armed.cancellable();

        // First definitive (Sat/Unsat) answer wins; losers are cancelled.
        let first: Mutex<Option<(usize, SolveResult)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for (i, worker) in self.workers.iter_mut().enumerate() {
                let wb = worker_budget.clone();
                let race = &race;
                let first = &first;
                scope.spawn(move || {
                    let result = worker.solve_under_assumptions(assumptions, &wb);
                    if matches!(result, SolveResult::Sat | SolveResult::Unsat) {
                        let mut slot = first.lock().expect("race winner lock");
                        if slot.is_none() {
                            *slot = Some((i, result));
                            race.cancel();
                        }
                    }
                });
            }
        });

        let decided = first.into_inner().expect("race winner lock");
        match decided {
            Some((i, result)) => {
                self.winner = i;
                self.wins[i] += 1;
                self.refresh_stats(Some(i as u32));
                result
            }
            None => {
                // Budget expired (or the caller cancelled) before anyone
                // finished. Note the workers have still entered a new solve
                // (clearing any prior model), so — exactly like the plain
                // solver — model/core accessors reflect only the *last*
                // definitive answer's state, not earlier races.
                self.refresh_stats(None);
                SolveResult::Unknown
            }
        }
    }

    fn model_value(&self, l: Lit) -> Option<bool> {
        self.workers[self.winner].model_value(l)
    }

    fn model(&self) -> Vec<bool> {
        self.workers[self.winner].model()
    }

    fn unsat_core(&self) -> &[Lit] {
        self.workers[self.winner].unsat_core()
    }

    fn stats(&self) -> &Stats {
        &self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    type Portfolio = PortfolioBackend<DefaultBackend>;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    /// Pigeonhole clauses: `pigeons` into `holes` (UNSAT iff pigeons > holes).
    fn pigeonhole<B: SatBackend>(backend: &mut B, pigeons: usize, holes: usize) {
        backend.reserve_vars(pigeons * holes);
        let var = |p: usize, h: usize| lit((p * holes + h + 1) as i64);
        for p in 0..pigeons {
            let row: Vec<Lit> = (0..holes).map(|h| var(p, h)).collect();
            backend.add_clause(&row);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    backend.add_clause(&[!var(p1, h), !var(p2, h)]);
                }
            }
        }
    }

    #[test]
    fn sat_and_unsat_answers_match_default_backend() {
        // SAT case with incremental reuse.
        let mut p = Portfolio::with_width(4);
        let a = ClauseSink::new_var(&mut p).positive();
        let b = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a, b]);
        SatBackend::add_clause(&mut p, &[!a]);
        let unlimited = ResourceBudget::unlimited();
        assert_eq!(p.solve_under_assumptions(&[], &unlimited), SolveResult::Sat);
        assert_eq!(p.model_value(b), Some(true));
        assert!(p.model()[b.var().index()]);
        assert_eq!(
            p.stats().last_winner,
            Some(p.wins().iter().position(|&w| w > 0).expect("a winner") as u32)
        );

        // Incremental: adding the blocking clause flips to UNSAT.
        SatBackend::add_clause(&mut p, &[!b]);
        assert_eq!(
            p.solve_under_assumptions(&[], &unlimited),
            SolveResult::Unsat
        );
    }

    #[test]
    fn unsat_core_flows_from_winner() {
        let mut p = Portfolio::with_width(4);
        let a = ClauseSink::new_var(&mut p).positive();
        let b = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a, b]);
        SatBackend::add_clause(&mut p, &[!a, b]);
        let r = p.solve_under_assumptions(&[!b], &ResourceBudget::unlimited());
        assert_eq!(r, SolveResult::Unsat);
        assert!(p.unsat_core().contains(&!b));
    }

    #[test]
    fn hard_unsat_instance_agrees_across_widths() {
        let mut single = Portfolio::with_width(1);
        pigeonhole(&mut single, 4, 3);
        assert_eq!(
            single.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
        let mut p = Portfolio::with_width(4);
        pigeonhole(&mut p, 4, 3);
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
        assert!(p.stats().conflicts >= single.stats().conflicts);
    }

    #[test]
    fn width_one_solves_inline_and_reports_winner() {
        let mut p = Portfolio::with_width(1);
        assert_eq!(p.num_workers(), 1);
        let a = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a]);
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
        assert_eq!(p.stats().last_winner, Some(0));
        assert_eq!(p.wins(), &[1]);
    }

    #[test]
    fn set_width_resizes_only_pristine_portfolios() {
        let mut p = Portfolio::with_width(2);
        p.set_portfolio_width(5);
        assert_eq!(p.num_workers(), 5, "pristine portfolio resizes");
        p.set_portfolio_width(0);
        assert_eq!(p.num_workers(), 1, "width clamps to at least 1");
        let a = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a]);
        p.set_portfolio_width(4);
        assert_eq!(p.num_workers(), 1, "loaded portfolio keeps its width");
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
    }

    #[test]
    fn default_is_serial_and_auto_width_is_machine_sized() {
        assert_eq!(Portfolio::default().num_workers(), 1);
        assert!((1..=MAX_AUTO_WIDTH).contains(&auto_width()));
        assert_eq!(auto_width_for_jobs(usize::MAX), 1);
        assert!(auto_width_for_jobs(1) >= auto_width_for_jobs(2));
    }

    #[test]
    fn expired_budget_returns_unknown_and_stays_usable() {
        let mut p = Portfolio::with_width(4);
        pigeonhole(&mut p, 9, 8);
        let r = p.solve_under_assumptions(&[], &ResourceBudget::with_time(Duration::ZERO).arm());
        assert_eq!(r, SolveResult::Unknown);
        // A subsequent unlimited call still answers definitively.
        let mut easy = Portfolio::with_width(4);
        let a = ClauseSink::new_var(&mut easy).positive();
        SatBackend::add_clause(&mut easy, &[a]);
        assert_eq!(
            easy.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
    }

    #[test]
    fn parent_cancellation_stops_all_workers_promptly() {
        let mut p = Portfolio::with_width(4);
        pigeonhole(&mut p, 10, 9); // hard: would run far longer than the test
        let (budget, token) = ResourceBudget::unlimited().cancellable();
        let started = std::time::Instant::now();
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(50));
                token.cancel();
            });
            let r = p.solve_under_assumptions(&[], &budget);
            assert_eq!(r, SolveResult::Unknown, "cancel must cut the race");
        });
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "workers outlived the cancelled parent budget"
        );
        // Effort spent before the kill is still charged.
        assert!(p.stats().decisions > 0 || p.stats().conflicts > 0);
    }

    #[test]
    fn merged_stats_cover_all_workers() {
        let mut p = Portfolio::with_width(4);
        pigeonhole(&mut p, 4, 3);
        p.solve_under_assumptions(&[], &ResourceBudget::unlimited());
        let merged = *p.stats();
        assert!(merged.conflicts > 0);
        assert_eq!(p.num_workers(), 4);
        assert_eq!(p.wins().iter().sum::<u64>(), 1);
    }
}

//! Diversified portfolio solving with clause sharing: runtime-sized
//! worker races on arena clones of the formula.
//!
//! [`PortfolioBackend<B>`] wraps a runtime-chosen number of instances of
//! any [`SatBackend`] and implements [`SatBackend`] itself, so it drops
//! into every generic consumer (the MaxSAT engine, the SATMAP routers, the
//! OLSQ baselines) without touching their call sites. All clause and
//! variable traffic lands in a single *primary* worker; the diversified
//! peers are materialized lazily at solve time by **cloning** the primary
//! — with the flat clause arena that is a `memcpy` of one buffer, not a
//! re-emission of every clause per worker. Each
//! `solve_under_assumptions` call races the workers on OS threads
//! ([`std::thread::scope`], no extra dependencies), takes the **first
//! definitive** `Sat`/`Unsat` answer, and cancels the peers through a
//! [`crate::CancelToken`] child of the caller's budget — so cancelling the
//! caller's budget still tears down every worker, and a worker can never
//! outlive the budget it descended from.
//!
//! During a race the workers *cooperate*: each exports learned clauses
//! with LBD at or below [`SharingConfig::lbd_max`] into its bounded
//! lock-free channel of the shared [`ClauseExchange`] and imports its
//! peers' clauses at restart boundaries (with dedup and per-drain caps).
//! Shared clauses are logical consequences of the common formula, so
//! answers are unchanged — only the wall-clock route to them shortens.
//! Sharing is on by default; [`PortfolioBackend::set_sharing`] disables it
//! and [`PortfolioBackend::set_sharing_config`] tunes the thresholds.
//! Small formulas skip the exchange entirely: below
//! [`SharingConfig::min_instance_size`] (variables + clauses) the
//! per-restart drain overhead costs more than the pruning pays, so the
//! workers race without cooperating. Set the knob to 0 to share always.
//!
//! **The exchange persists across solve calls.** One `ClauseExchange`
//! lives as long as the portfolio (rotated only on saturation or a width
//! change), and worker ports are taken back after each race with their
//! cursors and dedup state intact — so refutation lemmas published during
//! an earlier call are imported by later calls (`cross-call reuse`,
//! counted in [`crate::Stats::cross_call_imports`]). This is sound because
//! the loaded formula only ever grows: a lemma implied by yesterday's
//! clause set is implied by today's superset. Rebuilt peers resume from
//! the primary's cursors (their arena clone already contains everything
//! the primary imported).
//!
//! **Sharing thresholds adapt per instance.** The solver marks imported
//! clauses in the arena and credits the ones that later join a conflict
//! ([`crate::Stats::useful_imports`]); between races the portfolio feeds
//! that yield into [`SharingConfig::adapted`], tightening
//! `lbd_max`/`import_cap` when imports are dead weight and loosening them
//! when they pay — the throttling scheme of modern portfolio solvers.
//!
//! The worker count (*width*) is a runtime value, not a type parameter:
//! [`PortfolioBackend::with_width`] picks it explicitly (e.g.
//! `with_width(auto_width())` to size from the machine), and
//! [`SatBackend::set_portfolio_width`] resizes at any point — the peers
//! are rebuilt from the primary on the next race, so no clauses are lost
//! and a base [`SolverConfig`] installed by an earlier `configure` call
//! survives the resize. Width 1 solves inline on the calling thread — no
//! spawn, no race overhead.
//!
//! Workers are diversified deterministically via
//! [`SolverConfig::diversified`]: the primary (worker 0) always runs the
//! base configuration, so the portfolio's answers (and, for MaxSAT
//! consumers, its optimal costs) match the plain backend's — only the
//! wall-clock route to them differs.
//!
//! # Examples
//!
//! ```
//! use sat::{ClauseSink, PortfolioBackend, DefaultBackend, ResourceBudget, SatBackend, SolveResult};
//!
//! let mut portfolio = PortfolioBackend::<DefaultBackend>::with_width(4);
//! let a = portfolio.new_var().positive();
//! SatBackend::add_clause(&mut portfolio, &[a]);
//! let r = portfolio.solve_under_assumptions(&[], &ResourceBudget::unlimited());
//! assert_eq!(r, SolveResult::Sat);
//! assert_eq!(portfolio.model_value(a), Some(true));
//! assert!(portfolio.stats().last_winner.is_some());
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::backend::{ClauseSink, DefaultBackend, SatBackend};
use crate::budget::ResourceBudget;
use crate::config::SolverConfig;
use crate::exchange::{ClauseExchange, ExchangePort, SharingConfig};
use crate::lit::{Lit, Var};
use crate::solver::SolveResult;
use crate::stats::Stats;

/// Upper bound on the automatically chosen portfolio width: the solver
/// ships four diversification presets, and widths past twice that only
/// cycle presets with fresh seeds for rapidly diminishing returns.
pub const MAX_AUTO_WIDTH: usize = 8;

/// Automatic portfolio width when `jobs` solver-bearing tasks run
/// concurrently in this process: the available cores split across the
/// jobs, clamped to `1..=`[`MAX_AUTO_WIDTH`].
pub fn auto_width_for_jobs(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores / jobs.max(1)).clamp(1, MAX_AUTO_WIDTH)
}

/// Automatic portfolio width for this process:
/// [`std::thread::available_parallelism`] shrunk by the `SATMAP_JOBS`
/// worker count when an experiment sweep already saturates the cores
/// (closing the loop the suite runner opens with `--jobs`).
pub fn auto_width() -> usize {
    let jobs = std::env::var("SATMAP_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(1);
    auto_width_for_jobs(jobs)
}

/// Locks `m`, recovering the data if a panicking worker poisoned the
/// mutex — the portfolio's race bookkeeping must survive worker crashes.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The role a worker slot plays in a heterogeneous worker plan: instead
/// of assuming N clones of one strategy, each strategy *group* of the
/// plan carries its own diversification seed (and optionally its own
/// sharing thresholds) so groups are distinguishable — by the
/// diversified presets they derive, by fault-injection tags, and in
/// diagnostics.
///
/// Applied through [`crate::SatBackend::set_worker_role`]; the default
/// implementation folds the seed into the backend's configuration, and
/// [`PortfolioBackend`] additionally installs the sharing override.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkerRole {
    /// Stable label of the group (e.g. `"linear"`, `"core-guided"`) for
    /// diagnostics.
    pub label: &'static str,
    /// Diversification seed the group's workers derive their presets
    /// from (seed 0 keeps the historical base configuration).
    pub seed: u64,
    /// Sharing thresholds for the group's internal exchange; `None`
    /// keeps the backend's current configuration.
    pub sharing: Option<SharingConfig>,
}

/// A portfolio of diversified [`SatBackend`] workers racing — and sharing
/// learned clauses — per call.
///
/// Formula loading targets one primary worker; peers are arena clones
/// taken at solve time, so the width can be changed at any point via
/// [`SatBackend::set_portfolio_width`] without losing loaded clauses or a
/// previously applied base configuration.
#[derive(Debug)]
pub struct PortfolioBackend<B: SatBackend = DefaultBackend> {
    /// The worker that receives all variable/clause traffic and runs the
    /// base (undiversified) configuration in races.
    primary: B,
    /// Diversified clones of the primary, rebuilt lazily when the formula
    /// or the width changed since they were materialized.
    peers: Vec<B>,
    /// Stats snapshot of each peer at clone time, so only the work peers
    /// did *themselves* is merged (not the history inherited from the
    /// primary).
    peer_base: Vec<Stats>,
    /// Effort of peers discarded by a rebuild, kept so merged totals stay
    /// monotone across resyncs.
    retired: Stats,
    /// Target worker count for the next race.
    width: usize,
    /// True while `peers` mirror the primary's current formula.
    peers_synced: bool,
    /// Base configuration applied to the primary; peers derive their
    /// diversified presets from its seed. Survives width changes.
    base_config: SolverConfig,
    /// Whether workers exchange learned clauses during races.
    sharing_enabled: bool,
    /// Base thresholds and capacities of the clause exchange (what
    /// [`PortfolioBackend::set_sharing_config`] installed).
    sharing: SharingConfig,
    /// Effective thresholds after per-instance adaptation (reset to
    /// `sharing` whenever the base config is replaced).
    tuned: SharingConfig,
    /// `(clauses_imported, useful_imports)` totals at the last adaptation,
    /// so each adaptation judges only the traffic since the previous one.
    adapt_mark: (u64, u64),
    /// The exchange persisted across races (rotated on saturation or a
    /// width change), and the worker ports taken back after each race.
    exchange: Option<Arc<ClauseExchange>>,
    ports: Vec<ExchangePort>,
    /// A port handed to this portfolio from the *outside* (e.g. the MaxSAT
    /// strategy race wiring two backends together). Attached to the
    /// primary around width-1 solves; parked while an internal race runs,
    /// since a worker can hold only one port and the internal exchange
    /// takes precedence.
    external: Option<ExchangePort>,
    /// Per-worker counters merged after every race, plus the last winner.
    merged: Stats,
    /// Index of the worker whose model/core answer the accessors serve.
    winner: usize,
    /// Count of races won per worker (diagnostic; survives across calls).
    wins: Vec<u64>,
    /// True once the primary panicked with no clean survivor to promote:
    /// its internal state can no longer be trusted, so solves answer
    /// `Unknown` (always sound) and snapshots are refused. Callers recover
    /// by rebuilding (the routing supervisor re-encodes on retry).
    poisoned: bool,
}

impl<B: SatBackend + Default> Default for PortfolioBackend<B> {
    /// A width-1 portfolio (serial, zero racing overhead). Generic
    /// consumers construct backends via `B::default()` and then apply the
    /// caller's width through [`SatBackend::set_portfolio_width`], so the
    /// default stays cheap instead of eagerly building [`auto_width`]
    /// workers that an explicit width would immediately discard.
    fn default() -> Self {
        Self::with_width(1)
    }
}

impl<B: SatBackend + Default> PortfolioBackend<B> {
    /// A portfolio of `width` diversified workers (clamped to at least 1).
    pub fn with_width(width: usize) -> Self {
        let width = width.max(1);
        PortfolioBackend {
            primary: B::default(),
            peers: Vec::new(),
            peer_base: Vec::new(),
            retired: Stats::default(),
            width,
            peers_synced: false,
            base_config: SolverConfig::default(),
            sharing_enabled: true,
            sharing: SharingConfig::default(),
            tuned: SharingConfig::default(),
            adapt_mark: (0, 0),
            exchange: None,
            ports: Vec::new(),
            external: None,
            merged: Stats::default(),
            winner: 0,
            wins: vec![0; width],
            poisoned: false,
        }
    }
}

impl<B: SatBackend> PortfolioBackend<B> {
    /// Number of workers the next race will run.
    pub fn num_workers(&self) -> usize {
        self.width
    }

    /// How many races each worker has won so far.
    pub fn wins(&self) -> &[u64] {
        &self.wins
    }

    /// The base configuration peers are diversified from (what an earlier
    /// [`SatBackend::configure`] call installed; preserved across
    /// [`SatBackend::set_portfolio_width`] resizes).
    pub fn base_config(&self) -> &SolverConfig {
        &self.base_config
    }

    /// The worker all clause/variable traffic is loaded into.
    pub fn primary(&self) -> &B {
        &self.primary
    }

    /// Enables or disables learned-clause sharing between racing workers
    /// (enabled by default). Answers are identical either way; sharing
    /// only changes how fast the race converges.
    pub fn set_sharing(&mut self, enabled: bool) {
        self.sharing_enabled = enabled;
    }

    /// Whether racing workers exchange learned clauses.
    pub fn sharing(&self) -> bool {
        self.sharing_enabled
    }

    /// Replaces the clause-sharing thresholds (LBD/length filters, queue
    /// capacity, per-restart import cap). Resets any per-instance adaptive
    /// tuning and retires the current exchange (capacity is baked into its
    /// queues), so the next race starts fresh under the new config.
    pub fn set_sharing_config(&mut self, config: SharingConfig) {
        self.sharing = config;
        self.tuned = config;
        self.exchange = None;
        self.ports.clear();
    }

    /// The base clause-sharing thresholds (as installed; see
    /// [`PortfolioBackend::tuned_sharing_config`] for the adapted values).
    pub fn sharing_config(&self) -> &SharingConfig {
        &self.sharing
    }

    /// The thresholds currently in force after per-instance adaptation
    /// ([`SharingConfig::adapted`] applied to the observed import yield).
    pub fn tuned_sharing_config(&self) -> &SharingConfig {
        &self.tuned
    }

    /// The worker whose model/core the accessors currently serve.
    fn winner_worker(&self) -> &B {
        if self.winner == 0 {
            &self.primary
        } else {
            &self.peers[self.winner - 1]
        }
    }

    /// Recomputes the merged statistics: retired peers' effort, the
    /// primary's lifetime counters, and each live peer's counters since it
    /// was cloned (the inherited history would otherwise double-count).
    fn refresh_stats(&mut self, last_winner: Option<u32>) {
        let mut merged = self.retired;
        merged.arena_bytes = 0;
        merged.last_winner = None;
        merged.merge(self.primary.stats());
        for (peer, base) in self.peers.iter().zip(&self.peer_base) {
            let mut delta = peer.stats().delta_since(base);
            delta.last_winner = None;
            merged.merge(&delta);
        }
        merged.last_winner = last_winner.or(self.merged.last_winner);
        self.merged = merged;
    }

    /// Folds one worker's effort since `base` into `retired` (the
    /// arena-memory gauge and winner marker never travel with retirements).
    fn retire_delta(retired: &mut Stats, current: &Stats, base: &Stats) {
        let mut delta = current.delta_since(base);
        delta.arena_bytes = 0;
        delta.last_winner = None;
        retired.merge(&delta);
    }

    /// Retires the workers that panicked during a race, keeping merged
    /// statistics monotone and the process alive. Returns `decided` with
    /// its worker index remapped to the post-retirement layout.
    ///
    /// * Peers that crashed are dropped (their effort folds into
    ///   `retired`); the next race rebuilds the missing clones from the
    ///   primary.
    /// * If the *primary* crashed, a surviving peer — preferentially the
    ///   race winner, so its model stays readable — is promoted to primary
    ///   and reconfigured onto the base config. Its inherited history is
    ///   compensated by retiring the old primary's counters *since that
    ///   peer's clone base*, so totals neither drop nor double-count.
    /// * If every worker crashed, the portfolio is poisoned: no state can
    ///   be trusted, so later solves answer `Unknown` until the caller
    ///   rebuilds.
    fn retire_crashed(
        &mut self,
        crashed: &[usize],
        decided: Option<(usize, SolveResult)>,
    ) -> Option<(usize, SolveResult)> {
        self.retired.worker_panics += crashed.len() as u64;
        // Crashed workers may have died holding their exchange port; the
        // next race starts a fresh exchange rather than guess at cursors.
        self.ports.clear();
        self.exchange = None;
        if crashed.contains(&0) {
            let keep = match decided {
                Some((i, _)) if i > 0 => Some(i),
                _ => (1..self.width).find(|i| !crashed.contains(i)),
            };
            let Some(k) = keep else {
                for (peer, base) in self.peers.iter().zip(&self.peer_base) {
                    Self::retire_delta(&mut self.retired, peer.stats(), base);
                }
                self.peers.clear();
                self.peer_base.clear();
                self.peers_synced = false;
                self.winner = 0;
                self.poisoned = true;
                return None;
            };
            // The promoted peer's lifetime counters include the history it
            // inherited when cloned (its base); retire the old primary's
            // counters beyond that base so the merged total is unchanged.
            Self::retire_delta(
                &mut self.retired,
                self.primary.stats(),
                &self.peer_base[k - 1],
            );
            for (j, (peer, base)) in self.peers.iter().zip(&self.peer_base).enumerate() {
                if j + 1 != k {
                    Self::retire_delta(&mut self.retired, peer.stats(), base);
                }
            }
            self.primary = self.peers.swap_remove(k - 1);
            self.primary.configure(&self.base_config);
            self.peers.clear();
            self.peer_base.clear();
            self.peers_synced = false;
            self.winner = 0;
            return decided.map(|(_, r)| (0, r));
        }
        // Only peers crashed: drop them in descending index order so the
        // earlier removals don't shift the later targets.
        let mut dead: Vec<usize> = crashed.to_vec();
        dead.sort_unstable();
        for &d in dead.iter().rev() {
            let peer = self.peers.remove(d - 1);
            let base = self.peer_base.remove(d - 1);
            Self::retire_delta(&mut self.retired, peer.stats(), &base);
        }
        self.peers_synced = false;
        decided.map(|(i, r)| (i - dead.iter().filter(|&&d| d < i).count(), r))
    }
}

impl<B: SatBackend + Default + Clone> PortfolioBackend<B> {
    /// Materializes the diversified peers from the primary if the formula
    /// or the width changed since the last race. For the bundled solver
    /// the clone is a flat-buffer `memcpy` per peer — the whole point of
    /// the arena — instead of re-emitting every clause `width - 1` times.
    /// Returns `true` when the peers were actually rebuilt (their exchange
    /// ports must then be re-derived from the primary's).
    fn sync_peers(&mut self) -> bool {
        let target = self.width - 1;
        if self.peers_synced && self.peers.len() == target {
            return false;
        }
        // Retire outgoing peers' own effort so merged totals stay
        // monotone (their arena memory is gone, so the gauge resets).
        for (peer, base) in self.peers.iter().zip(&self.peer_base) {
            let mut delta = peer.stats().delta_since(base);
            delta.arena_bytes = 0;
            delta.last_winner = None;
            self.retired.merge(&delta);
        }
        self.peers.clear();
        self.peer_base.clear();
        // The worker that produced the last definitive answer is gone;
        // from here the primary (which shares its formula) is the only
        // worker whose accessors can be served.
        self.winner = 0;
        for i in 1..self.width {
            let mut peer = self.primary.clone();
            let mut config = SolverConfig::diversified(i);
            config.seed ^= self.base_config.seed;
            peer.configure(&config);
            self.peer_base.push(*peer.stats());
            self.peers.push(peer);
        }
        self.peers_synced = true;
        true
    }

    /// Ensures a live exchange and one port per worker before a sharing
    /// race: adapts the thresholds from the import yield observed so far,
    /// rotates the exchange when it is saturated (or the width changed),
    /// and re-derives rebuilt peers' ports from the primary's cursors.
    fn prepare_ports(&mut self, peers_rebuilt: bool) {
        // Per-instance adaptation: judge the traffic since the last mark.
        let imported = self.merged.clauses_imported;
        let useful = self.merged.useful_imports;
        let (mark_imported, mark_useful) = self.adapt_mark;
        if imported - mark_imported >= SharingConfig::ADAPT_SAMPLE {
            self.tuned = self
                .tuned
                .adapted(imported - mark_imported, useful - mark_useful);
            self.adapt_mark = (imported, useful);
        }

        let rebuild = match &self.exchange {
            Some(ex) => {
                ex.num_workers() != self.width
                    || self.ports.len() != self.width
                    || ex.is_saturated()
            }
            None => true,
        };
        if rebuild {
            let ex = Arc::new(ClauseExchange::new(self.width, self.sharing));
            // Keep the primary's dedup knowledge across the rotation so
            // already-imported clauses are not taken twice.
            let template = self.ports.first().cloned();
            self.ports = (0..self.width)
                .map(|i| match &template {
                    Some(t) => t.rebind(ex.clone(), i),
                    None => ExchangePort::new(ex.clone(), i),
                })
                .collect();
            self.exchange = Some(ex);
        } else if peers_rebuilt {
            // Rebuilt peers are clones of the primary: they already hold
            // everything it imported, so they resume from its cursors.
            let primary_port = self.ports[0].clone();
            for i in 1..self.width {
                self.ports[i] = primary_port.for_worker(i);
            }
        }
        for port in &mut self.ports {
            port.retune(self.tuned);
            // One boundary for the whole race, taken before any worker
            // starts: workers then classify cross-call imports against the
            // same cut instead of each snapshotting mid-race (which would
            // count a faster peer's same-call exports as carried).
            port.mark_call_boundary();
        }
    }
}

impl<B: SatBackend> ClauseSink for PortfolioBackend<B> {
    fn new_var(&mut self) -> Var {
        self.peers_synced = false;
        self.primary.new_var()
    }

    fn emit(&mut self, lits: &[Lit]) {
        self.peers_synced = false;
        self.primary.emit(lits);
    }
}

impl<B: SatBackend + Send + Default + Clone> SatBackend for PortfolioBackend<B> {
    fn backend_name(&self) -> &'static str {
        "portfolio"
    }

    fn configure(&mut self, config: &SolverConfig) {
        // The primary runs the base config itself; peers re-derive their
        // diversified presets (seeded off the base) at the next sync.
        self.base_config = *config;
        self.primary.configure(config);
        self.peers_synced = false;
    }

    fn set_worker_role(&mut self, role: &WorkerRole) {
        // Rebase only the seed: the caller's other configuration knobs
        // (restart/polarity/phase presets) survive the role assignment,
        // and a zero seed leaves the historical base behaviour
        // bit-identical.
        let config = SolverConfig {
            seed: role.seed,
            ..self.base_config
        };
        self.configure(&config);
        if let Some(sharing) = role.sharing {
            self.set_sharing_config(sharing);
        }
    }

    fn set_clause_exchange(&mut self, port: Option<ExchangePort>) {
        self.external = port;
    }

    fn take_clause_exchange(&mut self) -> Option<ExchangePort> {
        self.external.take()
    }

    fn set_portfolio_width(&mut self, width: usize) {
        let width = width.max(1);
        if width == self.width {
            return;
        }
        // Peers are clones of the primary, so resizing at any point —
        // before or after clauses were loaded, before or after a
        // `configure` call — loses neither; they are rebuilt on the next
        // race from the primary and the preserved base config.
        self.width = width;
        self.wins.resize(width.max(self.wins.len()), 0);
        self.peers_synced = false;
        // `winner` is deliberately left alone: the winning worker's
        // model/core stay readable until the peers are actually rebuilt
        // (`sync_peers` resets it when they are dropped).
    }

    fn num_vars(&self) -> usize {
        self.primary.num_vars()
    }

    fn num_clauses(&self) -> usize {
        self.primary.num_clauses()
    }

    fn snapshot(&self) -> Option<Self> {
        // A snapshot keeps only the primary (peers are rebuilt lazily from
        // it on the next race, exactly as after a resize). Outgoing peers'
        // own effort is folded into `retired` first so the snapshot's
        // merged totals stay monotone with the original's. A poisoned
        // portfolio refuses: its primary's state is untrusted, so warm
        // starts must fall back to a cold re-encode.
        if self.poisoned {
            return None;
        }
        let primary = self.primary.snapshot()?;
        let mut retired = self.retired;
        for (peer, base) in self.peers.iter().zip(&self.peer_base) {
            let mut delta = peer.stats().delta_since(base);
            delta.arena_bytes = 0;
            delta.last_winner = None;
            retired.merge(&delta);
        }
        let mut merged = retired;
        merged.arena_bytes = 0;
        merged.last_winner = None;
        merged.merge(primary.stats());
        Some(PortfolioBackend {
            primary,
            peers: Vec::new(),
            peer_base: Vec::new(),
            retired,
            width: self.width,
            peers_synced: false,
            base_config: self.base_config,
            sharing_enabled: self.sharing_enabled,
            sharing: self.sharing,
            tuned: self.tuned,
            adapt_mark: self.adapt_mark,
            exchange: None,
            ports: Vec::new(),
            external: None,
            merged,
            winner: 0,
            wins: vec![0; self.width],
            poisoned: false,
        })
    }

    fn reserve_vars(&mut self, n: usize) {
        self.peers_synced = false;
        self.primary.reserve_vars(n);
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.peers_synced = false;
        self.primary.add_clause(lits)
    }

    fn solve_under_assumptions(
        &mut self,
        assumptions: &[Lit],
        budget: &ResourceBudget,
    ) -> SolveResult {
        // A poisoned portfolio (primary panicked, nothing to promote) has
        // no trustworthy state left: `Unknown` is the only sound answer.
        if self.poisoned {
            self.refresh_stats(None);
            return SolveResult::Unknown;
        }

        // Width 1: no race to run — solve inline on the calling thread.
        // An externally provided port (a strategy race wiring backends
        // together) rides on the primary for the call, cursors preserved.
        // The panic guard degrades a crashing worker to `Unknown` and
        // poisons the portfolio (there is no peer to promote).
        if self.width == 1 {
            if let Some(port) = self.external.take() {
                self.primary.set_clause_exchange(Some(port));
            }
            let primary = &mut self.primary;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                primary.solve_under_assumptions(assumptions, budget)
            }));
            let Ok(result) = outcome else {
                self.retired.worker_panics += 1;
                self.poisoned = true;
                self.external = None;
                self.refresh_stats(None);
                return SolveResult::Unknown;
            };
            self.external = self.primary.take_clause_exchange();
            if matches!(result, SolveResult::Sat | SolveResult::Unsat) {
                self.winner = 0;
                self.wins[0] += 1;
                self.refresh_stats(Some(0));
            } else {
                self.refresh_stats(None);
            }
            return result;
        }

        let peers_rebuilt = self.sync_peers();
        // The exchange outlives the race: ports keep their cursors and
        // dedup state between calls, so lemmas published during an earlier
        // solve call are imported by this one (cross-call reuse). Small
        // instances skip it: on them the drain overhead exceeds the
        // pruning benefit, so the workers race without cooperating.
        let instance_size = self.primary.num_vars() + self.primary.num_clauses();
        let share = self.sharing_enabled && instance_size >= self.sharing.min_instance_size;
        if share {
            self.prepare_ports(peers_rebuilt);
            let mut ports = std::mem::take(&mut self.ports).into_iter();
            self.primary.set_clause_exchange(ports.next());
            for peer in self.peers.iter_mut() {
                peer.set_clause_exchange(ports.next());
            }
        }

        // Arm once so every worker shares the same absolute deadline, then
        // derive the race token as a child of any inherited token: the
        // caller cancelling its budget still stops all workers.
        let armed = budget.arm();
        let (worker_budget, race) = armed.cancellable();

        // First definitive (Sat/Unsat) answer wins; losers are cancelled.
        // Every worker runs behind a panic guard: a crashing racer is
        // recorded for retirement and the race continues on the survivors
        // instead of unwinding through the scope and killing the process.
        let first: Mutex<Option<(usize, SolveResult)>> = Mutex::new(None);
        let crashed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let workers = std::iter::once(&mut self.primary).chain(self.peers.iter_mut());
            for (i, worker) in workers.enumerate() {
                let wb = worker_budget.clone();
                let race = &race;
                let first = &first;
                let crashed = &crashed;
                scope.spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        worker.solve_under_assumptions(assumptions, &wb)
                    }));
                    match outcome {
                        Ok(result) if matches!(result, SolveResult::Sat | SolveResult::Unsat) => {
                            let mut slot = lock_or_recover(first);
                            if slot.is_none() {
                                *slot = Some((i, result));
                                race.cancel();
                            }
                        }
                        Ok(_) => {}
                        Err(_) => lock_or_recover(crashed).push(i),
                    }
                });
            }
        });

        // Take the ports back with their read positions intact; the next
        // race re-attaches them so the exchange spans calls. A backend
        // that cannot return its port (the trait default) retires the
        // exchange — the next race simply starts a fresh one.
        if share {
            let mut ports = Vec::with_capacity(self.width);
            let workers = std::iter::once(&mut self.primary).chain(self.peers.iter_mut());
            for worker in workers {
                match worker.take_clause_exchange() {
                    Some(port) => ports.push(port),
                    None => break,
                }
            }
            if ports.len() == self.width {
                self.ports = ports;
            } else {
                self.ports.clear();
                self.exchange = None;
            }
        }

        let mut decided = first
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let crashed = crashed
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if !crashed.is_empty() {
            decided = self.retire_crashed(&crashed, decided);
        }
        match decided {
            Some((i, result)) => {
                self.winner = i;
                self.wins[i] += 1;
                self.refresh_stats(Some(i as u32));
                result
            }
            None => {
                // Budget expired (or the caller cancelled) before anyone
                // finished. Note the workers have still entered a new solve
                // (clearing any prior model), so — exactly like the plain
                // solver — model/core accessors reflect only the *last*
                // definitive answer's state, not earlier races.
                self.refresh_stats(None);
                SolveResult::Unknown
            }
        }
    }

    fn model_value(&self, l: Lit) -> Option<bool> {
        self.winner_worker().model_value(l)
    }

    fn model(&self) -> Vec<bool> {
        self.winner_worker().model()
    }

    fn unsat_core(&self) -> &[Lit] {
        self.winner_worker().unsat_core()
    }

    fn stats(&self) -> &Stats {
        &self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PhaseInit;
    use std::time::Duration;

    type Portfolio = PortfolioBackend<DefaultBackend>;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    /// Drops the small-instance gate so the pigeonhole tests (all far
    /// below the default threshold) exercise the exchange machinery.
    fn share_always(p: &mut Portfolio) {
        p.set_sharing_config(SharingConfig {
            min_instance_size: 0,
            ..SharingConfig::default()
        });
    }

    /// Pigeonhole clauses: `pigeons` into `holes` (UNSAT iff pigeons > holes).
    fn pigeonhole<B: SatBackend>(backend: &mut B, pigeons: usize, holes: usize) {
        backend.reserve_vars(pigeons * holes);
        let var = |p: usize, h: usize| lit((p * holes + h + 1) as i64);
        for p in 0..pigeons {
            let row: Vec<Lit> = (0..holes).map(|h| var(p, h)).collect();
            backend.add_clause(&row);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    backend.add_clause(&[!var(p1, h), !var(p2, h)]);
                }
            }
        }
    }

    #[test]
    fn sat_and_unsat_answers_match_default_backend() {
        // SAT case with incremental reuse.
        let mut p = Portfolio::with_width(4);
        let a = ClauseSink::new_var(&mut p).positive();
        let b = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a, b]);
        SatBackend::add_clause(&mut p, &[!a]);
        let unlimited = ResourceBudget::unlimited();
        assert_eq!(p.solve_under_assumptions(&[], &unlimited), SolveResult::Sat);
        assert_eq!(p.model_value(b), Some(true));
        assert!(p.model()[b.var().index()]);
        assert_eq!(
            p.stats().last_winner,
            Some(p.wins().iter().position(|&w| w > 0).expect("a winner") as u32)
        );

        // Incremental: adding the blocking clause flips to UNSAT.
        SatBackend::add_clause(&mut p, &[!b]);
        assert_eq!(
            p.solve_under_assumptions(&[], &unlimited),
            SolveResult::Unsat
        );
    }

    #[test]
    fn unsat_core_flows_from_winner() {
        let mut p = Portfolio::with_width(4);
        let a = ClauseSink::new_var(&mut p).positive();
        let b = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a, b]);
        SatBackend::add_clause(&mut p, &[!a, b]);
        let r = p.solve_under_assumptions(&[!b], &ResourceBudget::unlimited());
        assert_eq!(r, SolveResult::Unsat);
        assert!(p.unsat_core().contains(&!b));
    }

    #[test]
    fn hard_unsat_instance_agrees_across_widths() {
        let mut single = Portfolio::with_width(1);
        pigeonhole(&mut single, 4, 3);
        assert_eq!(
            single.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
        let mut p = Portfolio::with_width(4);
        pigeonhole(&mut p, 4, 3);
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
    }

    #[test]
    fn sharing_on_and_off_agree_on_pigeonhole_family() {
        // Clause sharing must never change an answer, only (possibly) the
        // route to it — shared clauses are consequences of the formula.
        for pigeons in 3..=5usize {
            let mut on = Portfolio::with_width(4);
            assert!(on.sharing());
            share_always(&mut on);
            pigeonhole(&mut on, pigeons, pigeons - 1);
            let mut off = Portfolio::with_width(4);
            off.set_sharing(false);
            pigeonhole(&mut off, pigeons, pigeons - 1);
            let unlimited = ResourceBudget::unlimited();
            assert_eq!(
                on.solve_under_assumptions(&[], &unlimited),
                SolveResult::Unsat,
                "PHP({pigeons},{}) with sharing",
                pigeons - 1
            );
            assert_eq!(
                off.solve_under_assumptions(&[], &unlimited),
                SolveResult::Unsat,
                "PHP({pigeons},{}) without sharing",
                pigeons - 1
            );
            assert_eq!(
                off.stats().clauses_imported,
                0,
                "sharing off must not import"
            );
        }
        // And a satisfiable instance: both sides say SAT.
        let build = |p: &mut Portfolio| {
            let a = ClauseSink::new_var(p).positive();
            let b = ClauseSink::new_var(p).positive();
            SatBackend::add_clause(p, &[a, b]);
            SatBackend::add_clause(p, &[!a, b]);
        };
        let mut on = Portfolio::with_width(3);
        build(&mut on);
        let mut off = Portfolio::with_width(3);
        off.set_sharing(false);
        build(&mut off);
        let unlimited = ResourceBudget::unlimited();
        assert_eq!(
            on.solve_under_assumptions(&[], &unlimited),
            SolveResult::Sat
        );
        assert_eq!(
            off.solve_under_assumptions(&[], &unlimited),
            SolveResult::Sat
        );
    }

    #[test]
    fn pigeonhole_race_imports_shared_clauses() {
        // The cooperation signal itself: on a conflict-heavy UNSAT race
        // the workers must actually move clauses through the exchange.
        let mut p = Portfolio::with_width(4);
        share_always(&mut p);
        pigeonhole(&mut p, 7, 6);
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
        let stats = *p.stats();
        assert!(
            stats.clauses_exported > 0,
            "workers must export low-LBD clauses: {stats}"
        );
        assert!(
            stats.clauses_imported > 0,
            "workers must import peers' clauses: {stats}"
        );
    }

    #[test]
    fn exchange_persists_across_solve_calls() {
        // PHP(7,6) behind a selector: each assumption solve is a fresh
        // conflict-heavy race that leaves lemmas in the export queues, and
        // the next call's entry drain must pick the leftovers up as
        // cross-call imports (the exchange is no longer per-race).
        let mut p = Portfolio::with_width(4);
        share_always(&mut p);
        let pigeons = 7usize;
        let holes = 6usize;
        p.reserve_vars(pigeons * holes + 1);
        let s = lit((pigeons * holes + 1) as i64);
        let var = |pp: usize, h: usize| lit((pp * holes + h + 1) as i64);
        for pp in 0..pigeons {
            let mut row: Vec<Lit> = (0..holes).map(|h| var(pp, h)).collect();
            row.push(s); // selector keeps the formula satisfiable at root
            SatBackend::add_clause(&mut p, &row);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    SatBackend::add_clause(&mut p, &[!var(p1, h), !var(p2, h)]);
                }
            }
        }
        let unlimited = ResourceBudget::unlimited();
        for _ in 0..3 {
            assert_eq!(
                p.solve_under_assumptions(&[!s], &unlimited),
                SolveResult::Unsat
            );
        }
        let stats = *p.stats();
        assert!(stats.clauses_imported > 0, "{stats}");
        assert!(
            stats.cross_call_imports > 0,
            "a later call must import lemmas exported during an earlier \
             one through the persistent exchange: {stats}"
        );
        assert!(
            stats.useful_imports <= stats.clauses_imported,
            "usefulness counts each import at most once: {stats}"
        );
        // The satisfiable side still answers (imports are consequences).
        assert_eq!(
            p.solve_under_assumptions(&[s], &unlimited),
            SolveResult::Sat
        );
    }

    #[test]
    fn external_port_rides_on_width_one_portfolios() {
        // Two width-1 portfolios wired together from the outside (the
        // MaxSAT strategy race's shape): lemmas must flow between them
        // through the externally provided exchange.
        use crate::exchange::{ClauseExchange, ExchangePort};
        let exchange = Arc::new(ClauseExchange::new(2, SharingConfig::default()));
        let mut exporter = Portfolio::with_width(1);
        pigeonhole(&mut exporter, 5, 4);
        exporter.set_clause_exchange(Some(ExchangePort::new(exchange.clone(), 0)));
        assert_eq!(
            exporter.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
        assert!(
            exporter.stats().clauses_exported > 0,
            "width-1 portfolio must export through the external port: {}",
            exporter.stats()
        );
        let mut importer = Portfolio::with_width(1);
        pigeonhole(&mut importer, 5, 4);
        importer.set_clause_exchange(Some(ExchangePort::new(exchange, 1)));
        assert_eq!(
            importer.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
        assert!(
            importer.stats().clauses_imported > 0,
            "width-1 portfolio must import through the external port: {}",
            importer.stats()
        );
        // The port survives the call and can be taken back, cursors intact.
        assert!(importer.take_clause_exchange().is_some());
    }

    #[test]
    fn width_one_solves_inline_and_reports_winner() {
        let mut p = Portfolio::with_width(1);
        assert_eq!(p.num_workers(), 1);
        let a = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a]);
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
        assert_eq!(p.stats().last_winner, Some(0));
        assert_eq!(p.wins(), &[1]);
    }

    #[test]
    fn resize_after_loading_keeps_clauses() {
        // Regression for the old "only a pristine portfolio resizes"
        // behavior: peers are clones of the primary, so a resize after
        // loading simply rebuilds them at the next race.
        let mut p = Portfolio::with_width(2);
        p.set_portfolio_width(5);
        assert_eq!(p.num_workers(), 5);
        p.set_portfolio_width(0);
        assert_eq!(p.num_workers(), 1, "width clamps to at least 1");
        let a = ClauseSink::new_var(&mut p).positive();
        let b = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a, b]);
        SatBackend::add_clause(&mut p, &[!a]);
        p.set_portfolio_width(4);
        assert_eq!(p.num_workers(), 4, "loaded portfolios resize too");
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
        assert_eq!(p.model_value(b), Some(true), "clauses survive the resize");
    }

    #[test]
    fn configure_then_resize_preserves_base_config() {
        // Regression: `set_portfolio_width` used to rebuild the portfolio
        // from scratch, silently discarding a base `SolverConfig` applied
        // by an earlier `configure` call.
        let custom = SolverConfig {
            restart_multiplier: 3.0,
            random_polarity_freq: 0.25,
            phase_init: PhaseInit::Positive,
            seed: 77,
        };
        let mut p = Portfolio::with_width(2);
        SatBackend::configure(&mut p, &custom);
        p.set_portfolio_width(6);
        assert_eq!(
            *p.base_config(),
            custom,
            "resize must preserve the configured base"
        );
        assert_eq!(
            *p.primary().solver_config(),
            custom,
            "the primary keeps running the configured base"
        );
        // And the reverse order: configure after resize also sticks.
        let mut q = Portfolio::with_width(2);
        q.set_portfolio_width(3);
        SatBackend::configure(&mut q, &custom);
        assert_eq!(*q.base_config(), custom);
        let a = ClauseSink::new_var(&mut q).positive();
        SatBackend::add_clause(&mut q, &[a]);
        assert_eq!(
            q.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
    }

    #[test]
    fn resize_after_win_keeps_serving_the_winning_model() {
        // Regression (review finding): shrinking the width right after a
        // race must not discard a still-live winning peer's model — the
        // winner stays readable until the peers are actually rebuilt.
        let mut p = Portfolio::with_width(5);
        let a = ClauseSink::new_var(&mut p).positive();
        let b = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a, b]);
        SatBackend::add_clause(&mut p, &[!a]);
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
        p.set_portfolio_width(2);
        assert_eq!(
            p.model_value(b),
            Some(true),
            "the winning model must survive a post-race resize"
        );
        assert!(p.model()[b.var().index()]);
        // And the next race (which rebuilds the peers) still answers.
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
        assert_eq!(p.model_value(b), Some(true));
    }

    #[test]
    fn default_is_serial_and_auto_width_is_machine_sized() {
        assert_eq!(Portfolio::default().num_workers(), 1);
        assert!((1..=MAX_AUTO_WIDTH).contains(&auto_width()));
        assert_eq!(auto_width_for_jobs(usize::MAX), 1);
        assert!(auto_width_for_jobs(1) >= auto_width_for_jobs(2));
    }

    #[test]
    fn expired_budget_returns_unknown_and_stays_usable() {
        let mut p = Portfolio::with_width(4);
        pigeonhole(&mut p, 9, 8);
        let r = p.solve_under_assumptions(&[], &ResourceBudget::with_time(Duration::ZERO).arm());
        assert_eq!(r, SolveResult::Unknown);
        // A subsequent unlimited call still answers definitively.
        let mut easy = Portfolio::with_width(4);
        let a = ClauseSink::new_var(&mut easy).positive();
        SatBackend::add_clause(&mut easy, &[a]);
        assert_eq!(
            easy.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Sat
        );
    }

    #[test]
    fn parent_cancellation_stops_all_workers_promptly() {
        let mut p = Portfolio::with_width(4);
        pigeonhole(&mut p, 10, 9); // hard: would run far longer than the test
        let (budget, token) = ResourceBudget::unlimited().cancellable();
        let started = std::time::Instant::now();
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(50));
                token.cancel();
            });
            let r = p.solve_under_assumptions(&[], &budget);
            assert_eq!(r, SolveResult::Unknown, "cancel must cut the race");
        });
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "workers outlived the cancelled parent budget"
        );
        // Effort spent before the kill is still charged.
        assert!(p.stats().decisions > 0 || p.stats().conflicts > 0);
    }

    #[test]
    fn merged_stats_cover_all_workers_and_stay_monotone() {
        let mut p = Portfolio::with_width(4);
        pigeonhole(&mut p, 4, 3);
        p.solve_under_assumptions(&[], &ResourceBudget::unlimited());
        let first = *p.stats();
        assert!(first.conflicts > 0);
        assert!(first.arena_bytes > 0, "arena gauge flows into the merge");
        assert_eq!(p.num_workers(), 4);
        assert_eq!(p.wins().iter().sum::<u64>(), 1);
        // Add clauses (forcing a peer resync) and solve again: counters
        // must never go backwards even though the peers were rebuilt.
        let extra = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[extra]);
        p.solve_under_assumptions(&[], &ResourceBudget::unlimited());
        let second = *p.stats();
        assert!(
            second.conflicts >= first.conflicts,
            "retired peer effort must stay in the totals: {first} then {second}"
        );
        assert_eq!(p.wins().iter().sum::<u64>(), 2);
    }

    #[test]
    fn small_instances_skip_sharing_under_the_default_threshold() {
        // PHP(7,6) is ~175 vars+clauses — far below the default
        // `min_instance_size` — so a default-configured portfolio must
        // race it without moving a single clause through an exchange.
        let mut p = Portfolio::with_width(4);
        assert!(p.sharing(), "sharing stays enabled; the gate is size-based");
        pigeonhole(&mut p, 7, 6);
        assert!(
            SatBackend::num_vars(&p) + SatBackend::num_clauses(&p)
                < p.sharing_config().min_instance_size
        );
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
        let stats = *p.stats();
        assert_eq!(stats.clauses_imported, 0, "gated race must not import");
        assert_eq!(stats.clauses_exported, 0, "gated race must not export");
    }

    #[test]
    fn race_retires_a_panicking_peer_and_still_answers() {
        use crate::chaos::{install_plan, silence_panic_reports, ChaosBackend, FaultPlan};
        silence_panic_reports();
        // Target worker 1's diversified seed: with the default base config
        // the peer's effective seed is `diversified(1).seed ^ 0`.
        let tag = 0x9E37_79B9_7F4A_7C15u64;
        let previous = install_plan(Some(FaultPlan::seeded(13).panic_tag(tag)));
        let mut p = PortfolioBackend::<ChaosBackend<DefaultBackend>>::with_width(4);
        install_plan(previous);
        pigeonhole(&mut p, 5, 4);
        let before = *p.stats();
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat,
            "the race must complete on the surviving workers"
        );
        let stats = *p.stats();
        assert!(
            stats.worker_panics >= 1,
            "the retired racer must be counted: {stats:?}"
        );
        assert!(stats.conflicts >= before.conflicts, "totals stay monotone");
        // The next race rebuilds the missing peer and still answers.
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
    }

    #[test]
    fn primary_panic_promotes_a_survivor() {
        use crate::chaos::{install_plan, silence_panic_reports, ChaosBackend, FaultPlan};
        silence_panic_reports();
        // Tag 0 matches the unconfigured primary (peers run diversified
        // nonzero seeds), so exactly the primary dies each race.
        let previous = install_plan(Some(FaultPlan::seeded(29).panic_tag(0)));
        let mut p = PortfolioBackend::<ChaosBackend<DefaultBackend>>::with_width(3);
        install_plan(previous);
        pigeonhole(&mut p, 4, 3);
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat,
            "a surviving peer must be promoted and its answer served"
        );
        assert!(p.stats().worker_panics >= 1);
        assert!(
            p.stats().conflicts > 0,
            "the survivors' effort is still charged"
        );
    }

    #[test]
    fn all_workers_panicking_poisons_instead_of_crashing() {
        use crate::chaos::{install_plan, silence_panic_reports, ChaosBackend, FaultPlan};
        silence_panic_reports();
        let previous = install_plan(Some(FaultPlan::seeded(31).panic_prob(1.0)));
        let mut p = PortfolioBackend::<ChaosBackend<DefaultBackend>>::with_width(2);
        install_plan(previous);
        let a = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a]);
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unknown,
            "with no survivor the only sound answer is Unknown"
        );
        assert_eq!(p.stats().worker_panics, 2);
        // Poisoned: later solves keep degrading soundly, warm starts are
        // refused, and the panic counter does not re-fire.
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unknown
        );
        assert_eq!(p.stats().worker_panics, 2);
        assert!(SatBackend::snapshot(&p).is_none());
    }

    #[test]
    fn width_one_panic_degrades_to_unknown() {
        use crate::chaos::{install_plan, silence_panic_reports, ChaosBackend, FaultPlan};
        silence_panic_reports();
        let previous = install_plan(Some(FaultPlan::seeded(37).panic_tag(0)));
        let mut p = PortfolioBackend::<ChaosBackend<DefaultBackend>>::with_width(1);
        install_plan(previous);
        let a = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a]);
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unknown
        );
        assert_eq!(p.stats().worker_panics, 1);
    }

    #[test]
    fn snapshot_clones_the_formula_and_diverges_independently() {
        let mut p = Portfolio::with_width(2);
        let a = ClauseSink::new_var(&mut p).positive();
        let b = ClauseSink::new_var(&mut p).positive();
        SatBackend::add_clause(&mut p, &[a, b]);
        let unlimited = ResourceBudget::unlimited();
        assert_eq!(p.solve_under_assumptions(&[], &unlimited), SolveResult::Sat);
        let mut snap = SatBackend::snapshot(&p).expect("portfolio snapshots");
        assert_eq!(snap.num_workers(), p.num_workers());
        assert_eq!(SatBackend::num_vars(&snap), SatBackend::num_vars(&p));
        assert_eq!(SatBackend::num_clauses(&snap), SatBackend::num_clauses(&p));
        // The snapshot answers like the original and diverges cleanly.
        assert_eq!(
            snap.solve_under_assumptions(&[], &unlimited),
            SolveResult::Sat
        );
        SatBackend::add_clause(&mut snap, &[!a]);
        SatBackend::add_clause(&mut snap, &[!b]);
        assert_eq!(
            snap.solve_under_assumptions(&[], &unlimited),
            SolveResult::Unsat
        );
        assert_eq!(p.solve_under_assumptions(&[], &unlimited), SolveResult::Sat);
    }
}

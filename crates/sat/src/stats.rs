//! Solver statistics.

/// Counters accumulated across all solve calls of a [`crate::Solver`] (or
/// merged across the workers of a [`crate::PortfolioBackend`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned-clause database reductions.
    pub reductions: u64,
    /// Total literals across all learned clauses.
    pub learned_literals: u64,
    /// Total literals across all learned clauses *before* conflict-clause
    /// minimization ran (so `learned_literals <= premin_literals` witnesses
    /// that minimization never grows a clause).
    pub premin_literals: u64,
    /// Learned clauses exported to portfolio peers (clause sharing).
    pub clauses_exported: u64,
    /// Learned clauses imported from portfolio peers (clause sharing).
    pub clauses_imported: u64,
    /// Imported clauses that later participated in at least one conflict
    /// resolution (each import is counted useful at most once) — the yield
    /// signal the adaptive sharing thresholds tune on.
    pub useful_imports: u64,
    /// Imported clauses that were published during an *earlier* solve call
    /// (cross-call lemma reuse through a persistent clause exchange).
    pub cross_call_imports: u64,
    /// Garbage-collecting compactions of the flat clause arena.
    pub compactions: u64,
    /// Portfolio workers that panicked mid-race and were retired (the race
    /// continues on the survivors; see [`crate::PortfolioBackend`]).
    pub worker_panics: u64,
    /// Current clause-arena footprint in bytes (a gauge, not a counter;
    /// portfolios report the sum over their live workers).
    pub arena_bytes: u64,
    /// Portfolio backends only: index of the worker that produced the most
    /// recent definitive answer. Single-threaded backends leave it `None`.
    pub last_winner: Option<u32>,
}

impl Stats {
    /// Elementwise sum of the counters (winner taken from `other` when
    /// set) — how a portfolio merges per-worker statistics.
    pub fn merge(&mut self, other: &Stats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.reductions += other.reductions;
        self.learned_literals += other.learned_literals;
        self.premin_literals += other.premin_literals;
        self.clauses_exported += other.clauses_exported;
        self.clauses_imported += other.clauses_imported;
        self.useful_imports += other.useful_imports;
        self.cross_call_imports += other.cross_call_imports;
        self.compactions += other.compactions;
        self.worker_panics += other.worker_panics;
        self.arena_bytes += other.arena_bytes;
        if other.last_winner.is_some() {
            self.last_winner = other.last_winner;
        }
    }

    /// The work performed since `base` was snapshotted from the same
    /// solver: counters are subtracted, while the [`Stats::arena_bytes`]
    /// gauge and [`Stats::last_winner`] carry the *current* values. Used
    /// by the portfolio to account a cloned worker's effort without
    /// double-counting the history it inherited from its template.
    pub fn delta_since(&self, base: &Stats) -> Stats {
        Stats {
            conflicts: self.conflicts.saturating_sub(base.conflicts),
            decisions: self.decisions.saturating_sub(base.decisions),
            propagations: self.propagations.saturating_sub(base.propagations),
            restarts: self.restarts.saturating_sub(base.restarts),
            reductions: self.reductions.saturating_sub(base.reductions),
            learned_literals: self.learned_literals.saturating_sub(base.learned_literals),
            premin_literals: self.premin_literals.saturating_sub(base.premin_literals),
            clauses_exported: self.clauses_exported.saturating_sub(base.clauses_exported),
            clauses_imported: self.clauses_imported.saturating_sub(base.clauses_imported),
            useful_imports: self.useful_imports.saturating_sub(base.useful_imports),
            cross_call_imports: self
                .cross_call_imports
                .saturating_sub(base.cross_call_imports),
            compactions: self.compactions.saturating_sub(base.compactions),
            worker_panics: self.worker_panics.saturating_sub(base.worker_panics),
            arena_bytes: self.arena_bytes,
            last_winner: self.last_winner,
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conflicts={} decisions={} propagations={} restarts={} reductions={}",
            self.conflicts, self.decisions, self.propagations, self.restarts, self.reductions
        )?;
        if let Some(w) = self.last_winner {
            write!(f, " winner={w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_keeps_winner() {
        let mut a = Stats {
            conflicts: 3,
            restarts: 1,
            ..Stats::default()
        };
        let b = Stats {
            conflicts: 4,
            reductions: 2,
            last_winner: Some(2),
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.conflicts, 7);
        assert_eq!(a.restarts, 1);
        assert_eq!(a.reductions, 2);
        assert_eq!(a.last_winner, Some(2));
        assert_eq!(a.clauses_exported, 0);
        // Merging a winner-less record keeps the previous winner.
        a.merge(&Stats::default());
        assert_eq!(a.last_winner, Some(2));
    }

    #[test]
    fn delta_since_subtracts_counters_but_keeps_gauges() {
        let base = Stats {
            conflicts: 10,
            clauses_exported: 2,
            arena_bytes: 4096,
            ..Stats::default()
        };
        let now = Stats {
            conflicts: 15,
            clauses_exported: 5,
            compactions: 1,
            arena_bytes: 8192,
            last_winner: Some(1),
            ..Stats::default()
        };
        let d = now.delta_since(&base);
        assert_eq!(d.conflicts, 5);
        assert_eq!(d.clauses_exported, 3);
        assert_eq!(d.compactions, 1);
        assert_eq!(d.arena_bytes, 8192, "gauge carries the current value");
        assert_eq!(d.last_winner, Some(1));
    }

    #[test]
    fn display_includes_winner_when_set() {
        let s = Stats {
            last_winner: Some(1),
            ..Stats::default()
        };
        assert!(s.to_string().contains("winner=1"));
        assert!(!Stats::default().to_string().contains("winner"));
    }
}

//! Solver statistics.

/// Counters accumulated across all solve calls of a [`crate::Solver`] (or
/// merged across the workers of a [`crate::PortfolioBackend`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned-clause database reductions.
    pub reductions: u64,
    /// Total literals across all learned clauses.
    pub learned_literals: u64,
    /// Portfolio backends only: index of the worker that produced the most
    /// recent definitive answer. Single-threaded backends leave it `None`.
    pub last_winner: Option<u32>,
}

impl Stats {
    /// Elementwise sum of the counters (winner taken from `other` when
    /// set) — how a portfolio merges per-worker statistics.
    pub fn merge(&mut self, other: &Stats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.reductions += other.reductions;
        self.learned_literals += other.learned_literals;
        if other.last_winner.is_some() {
            self.last_winner = other.last_winner;
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conflicts={} decisions={} propagations={} restarts={} reductions={}",
            self.conflicts, self.decisions, self.propagations, self.restarts, self.reductions
        )?;
        if let Some(w) = self.last_winner {
            write!(f, " winner={w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_keeps_winner() {
        let mut a = Stats {
            conflicts: 3,
            restarts: 1,
            ..Stats::default()
        };
        let b = Stats {
            conflicts: 4,
            reductions: 2,
            last_winner: Some(2),
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.conflicts, 7);
        assert_eq!(a.restarts, 1);
        assert_eq!(a.reductions, 2);
        assert_eq!(a.last_winner, Some(2));
        // Merging a winner-less record keeps the previous winner.
        a.merge(&Stats::default());
        assert_eq!(a.last_winner, Some(2));
    }

    #[test]
    fn display_includes_winner_when_set() {
        let s = Stats {
            last_winner: Some(1),
            ..Stats::default()
        };
        assert!(s.to_string().contains("winner=1"));
        assert!(!Stats::default().to_string().contains("winner"));
    }
}

//! Solver statistics.

/// Counters accumulated across all solve calls of a [`crate::Solver`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned-clause database reductions.
    pub reductions: u64,
    /// Total literals across all learned clauses.
    pub learned_literals: u64,
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conflicts={} decisions={} propagations={} restarts={} reductions={}",
            self.conflicts, self.decisions, self.propagations, self.restarts, self.reductions
        )
    }
}

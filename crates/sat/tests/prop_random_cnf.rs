//! Property tests: the CDCL solver agrees with a brute-force reference on
//! random small CNF instances, and models it reports actually satisfy the
//! formula.

use proptest::prelude::*;
use sat::{Lit, SolveResult, Solver, Var};

/// Brute-force satisfiability check by enumerating all assignments.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<i64>]) -> bool {
    assert!(num_vars <= 20);
    'outer: for mask in 0u64..(1u64 << num_vars) {
        for clause in clauses {
            let satisfied = clause.iter().any(|&d| {
                let v = d.unsigned_abs() as usize - 1;
                let val = mask >> v & 1 == 1;
                if d > 0 {
                    val
                } else {
                    !val
                }
            });
            if !satisfied {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn model_satisfies(model: &[bool], clauses: &[Vec<i64>]) -> bool {
    clauses.iter().all(|clause| {
        clause.iter().any(|&d| {
            let v = d.unsigned_abs() as usize - 1;
            if d > 0 {
                model[v]
            } else {
                !model[v]
            }
        })
    })
}

fn clause_strategy(num_vars: i64) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(
        (1..=num_vars, prop::bool::ANY).prop_map(|(v, neg)| if neg { -v } else { v }),
        1..=4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cdcl_matches_brute_force(
        num_vars in 1usize..=8,
        seed_clauses in prop::collection::vec(clause_strategy(8), 0..40),
    ) {
        // Clamp literals to the chosen variable range.
        let clauses: Vec<Vec<i64>> = seed_clauses
            .into_iter()
            .map(|c| c.into_iter()
                .map(|d| {
                    let m = num_vars as i64;
                    let v = (d.abs() - 1) % m + 1;
                    if d > 0 { v } else { -v }
                })
                .collect())
            .collect();

        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().map(|&d| Lit::from_dimacs(d)));
        }
        let expected = brute_force_sat(num_vars, &clauses);
        match solver.solve() {
            SolveResult::Sat => {
                prop_assert!(expected, "solver said SAT but formula is UNSAT");
                let model = solver.model();
                prop_assert!(model_satisfies(&model, &clauses),
                    "reported model does not satisfy the formula");
            }
            SolveResult::Unsat => prop_assert!(!expected, "solver said UNSAT but formula is SAT"),
            SolveResult::Unknown => prop_assert!(false, "unlimited solve returned Unknown"),
        }
        // Recursive conflict-clause minimization may only ever *shrink*
        // learned clauses: the literals recorded after minimization never
        // exceed the pre-minimization count.
        let stats = solver.stats();
        prop_assert!(
            stats.learned_literals <= stats.premin_literals,
            "minimization grew a learned clause: {} kept of {} pre-minimization",
            stats.learned_literals,
            stats.premin_literals
        );
    }

    #[test]
    fn assumptions_agree_with_adding_units(
        num_vars in 2usize..=6,
        seed_clauses in prop::collection::vec(clause_strategy(6), 0..25),
        assumption in 1i64..=6,
        neg in prop::bool::ANY,
    ) {
        let m = num_vars as i64;
        let clauses: Vec<Vec<i64>> = seed_clauses
            .into_iter()
            .map(|c| c.into_iter()
                .map(|d| { let v = (d.abs() - 1) % m + 1; if d > 0 { v } else { -v } })
                .collect())
            .collect();
        let a = (assumption - 1) % m + 1;
        let a = if neg { -a } else { a };

        let mut s1 = Solver::new();
        s1.reserve_vars(num_vars);
        for clause in &clauses {
            s1.add_clause(clause.iter().map(|&d| Lit::from_dimacs(d)));
        }
        let via_assumption =
            s1.solve_under_assumptions(&[Lit::from_dimacs(a)], &sat::ResourceBudget::unlimited());

        let mut all = clauses.clone();
        all.push(vec![a]);
        let expected = brute_force_sat(num_vars, &all);
        match via_assumption {
            SolveResult::Sat => prop_assert!(expected),
            SolveResult::Unsat => prop_assert!(!expected),
            SolveResult::Unknown => prop_assert!(false),
        }
        // The solver must remain reusable afterwards, matching the formula
        // without the assumption.
        let expected_plain = brute_force_sat(num_vars, &clauses);
        match s1.solve() {
            SolveResult::Sat => prop_assert!(expected_plain),
            SolveResult::Unsat => prop_assert!(!expected_plain),
            SolveResult::Unknown => prop_assert!(false),
        }
    }

    #[test]
    fn unsat_core_is_sound(
        num_vars in 2usize..=5,
        seed_clauses in prop::collection::vec(clause_strategy(5), 0..15),
    ) {
        let m = num_vars as i64;
        let clauses: Vec<Vec<i64>> = seed_clauses
            .into_iter()
            .map(|c| c.into_iter()
                .map(|d| { let v = (d.abs() - 1) % m + 1; if d > 0 { v } else { -v } })
                .collect())
            .collect();
        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().map(|&d| Lit::from_dimacs(d)));
        }
        // Assume every variable true.
        let assumptions: Vec<Lit> = (0..num_vars).map(|v| Var::new(v).positive()).collect();
        if solver.solve_under_assumptions(&assumptions, &sat::ResourceBudget::unlimited())
            == SolveResult::Unsat
        {
            let core = solver.unsat_core().to_vec();
            // Core literals must come from the assumptions.
            for l in &core {
                prop_assert!(assumptions.contains(l), "core literal {l:?} not an assumption");
            }
            // The formula plus the core alone must be UNSAT.
            let mut all = clauses.clone();
            for l in &core {
                all.push(vec![l.to_dimacs()]);
            }
            prop_assert!(!brute_force_sat(num_vars, &all), "core is not actually conflicting");
        }
    }
}

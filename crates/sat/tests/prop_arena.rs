//! Property tests for the flat clause arena's garbage collector: random
//! *incremental* add/solve/reduce sequences must preserve SAT/UNSAT
//! answers, model validity, and unsat-core soundness across learned-clause
//! reductions and arena compactions (which move every clause and remap
//! watch lists and reason references).

use proptest::prelude::*;
use sat::{Lit, ResourceBudget, SolveResult, Solver, Var};

/// Brute-force satisfiability check by enumerating all assignments.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<i64>]) -> bool {
    assert!(num_vars <= 20);
    'outer: for mask in 0u64..(1u64 << num_vars) {
        for clause in clauses {
            let satisfied = clause.iter().any(|&d| {
                let v = d.unsigned_abs() as usize - 1;
                let val = mask >> v & 1 == 1;
                if d > 0 {
                    val
                } else {
                    !val
                }
            });
            if !satisfied {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn model_satisfies(model: &[bool], clauses: &[Vec<i64>]) -> bool {
    clauses.iter().all(|clause| {
        clause.iter().any(|&d| {
            let v = d.unsigned_abs() as usize - 1;
            if d > 0 {
                model[v]
            } else {
                !model[v]
            }
        })
    })
}

fn clause_strategy(num_vars: i64) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(
        (1..=num_vars, prop::bool::ANY).prop_map(|(v, neg)| if neg { -v } else { v }),
        1..=4,
    )
}

/// One step of an incremental session: add a batch of clauses, then
/// optionally force a learned-clause reduction and/or an arena
/// compaction before re-solving.
#[derive(Clone, Debug)]
struct Step {
    batch: Vec<Vec<i64>>,
    reduce: bool,
    compact: bool,
}

fn step_strategy(num_vars: i64) -> impl Strategy<Value = Step> {
    (
        prop::collection::vec(clause_strategy(num_vars), 0..8),
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(batch, reduce, compact)| Step {
            batch,
            reduce,
            compact,
        })
}

fn clamp_clauses(clauses: Vec<Vec<i64>>, num_vars: usize) -> Vec<Vec<i64>> {
    let m = num_vars as i64;
    clauses
        .into_iter()
        .map(|c| {
            c.into_iter()
                .map(|d| {
                    let v = (d.abs() - 1) % m + 1;
                    if d > 0 {
                        v
                    } else {
                        -v
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The core compaction property: an incrementally grown solver whose
    /// arena is reduced and compacted at arbitrary points between solves
    /// answers exactly like the brute-force reference at every step, and
    /// every SAT model it reports satisfies everything added so far.
    #[test]
    fn compaction_preserves_answers_and_models(
        num_vars in 2usize..=7,
        steps in prop::collection::vec(step_strategy(7), 1..6),
    ) {
        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        let mut all: Vec<Vec<i64>> = Vec::new();
        for step in steps {
            for clause in clamp_clauses(step.batch, num_vars) {
                solver.add_clause(clause.iter().map(|&d| Lit::from_dimacs(d)));
                all.push(clause);
            }
            if step.reduce {
                solver.force_reduce_db();
            }
            if step.compact {
                solver.force_compact();
            }
            let expected = brute_force_sat(num_vars, &all);
            match solver.solve() {
                SolveResult::Sat => {
                    prop_assert!(expected, "solver said SAT but formula is UNSAT");
                    let model = solver.model();
                    prop_assert!(
                        model_satisfies(&model, &all),
                        "post-compaction model does not satisfy the formula"
                    );
                }
                SolveResult::Unsat => {
                    prop_assert!(!expected, "solver said UNSAT but formula is SAT");
                }
                SolveResult::Unknown => prop_assert!(false, "unlimited solve returned Unknown"),
            }
            // Compacting *after* a solve must not corrupt the next one
            // either; exercise the solved-state remap path every step.
            solver.force_compact();
            // Arena churn must not break the minimization invariant:
            // learned clauses never grow past their pre-minimization size.
            let stats = solver.stats();
            prop_assert!(stats.learned_literals <= stats.premin_literals);
        }
    }

    /// Unsat cores stay sound when reductions/compactions run between the
    /// assumption solves that produce them.
    #[test]
    fn compaction_preserves_core_soundness(
        num_vars in 2usize..=5,
        seed_clauses in prop::collection::vec(clause_strategy(5), 0..15),
        churn in 0usize..4,
    ) {
        let clauses = clamp_clauses(seed_clauses, num_vars);
        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().map(|&d| Lit::from_dimacs(d)));
        }
        // Churn the arena: solve (learning clauses), then reduce+compact.
        for _ in 0..churn {
            let _ = solver.solve();
            solver.force_reduce_db();
            solver.force_compact();
        }
        let assumptions: Vec<Lit> = (0..num_vars).map(|v| Var::new(v).positive()).collect();
        if solver.solve_under_assumptions(&assumptions, &ResourceBudget::unlimited())
            == SolveResult::Unsat
        {
            let core = solver.unsat_core().to_vec();
            for l in &core {
                prop_assert!(assumptions.contains(l), "core literal {l:?} not an assumption");
            }
            let mut all = clauses.clone();
            for l in &core {
                all.push(vec![l.to_dimacs()]);
            }
            prop_assert!(
                !brute_force_sat(num_vars, &all),
                "core is not actually conflicting after arena churn"
            );
        }
        // The solver stays reusable without assumptions.
        let expected = brute_force_sat(num_vars, &clauses);
        prop_assert_eq!(solver.solve() == SolveResult::Sat, expected);
    }

    /// A compacted solver and an untouched twin loaded with the same
    /// clauses agree call-for-call across an incremental session.
    #[test]
    fn compacted_and_fresh_solvers_agree(
        num_vars in 2usize..=6,
        steps in prop::collection::vec(step_strategy(6), 1..5),
    ) {
        let mut churned = Solver::new();
        churned.reserve_vars(num_vars);
        let mut all: Vec<Vec<i64>> = Vec::new();
        for step in steps {
            for clause in clamp_clauses(step.batch, num_vars) {
                churned.add_clause(clause.iter().map(|&d| Lit::from_dimacs(d)));
                all.push(clause);
            }
            churned.force_reduce_db();
            churned.force_compact();
            // A fresh solver sees the same clause set with no history.
            let mut fresh = Solver::new();
            fresh.reserve_vars(num_vars);
            for clause in &all {
                fresh.add_clause(clause.iter().map(|&d| Lit::from_dimacs(d)));
            }
            prop_assert_eq!(churned.solve(), fresh.solve());
        }
    }
}
